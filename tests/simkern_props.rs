//! Property-based tests on the simulation kernel's core invariants.

use proptest::prelude::*;

use intelliqos::simkern::{CircularQueue, EventQueue, OnlineStats, SimDuration, SimTime, TimeSeries};

proptest! {
    /// Events always pop in (time, insertion-order) order regardless of
    /// the schedule order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_secs(), i));
        }
        prop_assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            let (t1, i1) = pair[0];
            let (t2, i2) = pair[1];
            prop_assert!(t1 < t2 || (t1 == t2 && i1 < i2), "order violated: {pair:?}");
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn event_queue_cancellation(
        times in proptest::collection::vec(0u64..1000, 1..100),
        cancel_mask in proptest::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_secs(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in tokens.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                prop_assert!(q.cancel(*tok));
                cancelled.insert(i);
            }
        }
        prop_assert_eq!(q.len(), times.len() - cancelled.len());
        while let Some((_, i)) = q.pop() {
            prop_assert!(!cancelled.contains(&i), "popped a cancelled event {i}");
        }
    }

    /// A circular queue retains exactly the last `cap` pushes, in order.
    #[test]
    fn circular_queue_retains_suffix(cap in 1usize..50, items in proptest::collection::vec(any::<u32>(), 0..200)) {
        let mut q = CircularQueue::new(cap);
        for &x in &items {
            q.push(x);
        }
        let expected: Vec<u32> = items
            .iter()
            .copied()
            .skip(items.len().saturating_sub(cap))
            .collect();
        prop_assert_eq!(q.iter().copied().collect::<Vec<_>>(), expected);
        prop_assert_eq!(q.evicted_count() as usize, items.len().saturating_sub(cap));
    }

    /// Merging partitioned statistics equals the whole (associativity of
    /// the Welford merge).
    #[test]
    fn stats_merge_is_partition_invariant(
        xs in proptest::collection::vec(-1e6f64..1e6, 1..300),
        split in 0usize..300,
    ) {
        let split = split.min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        prop_assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
    }

    /// Step interpolation returns the latest value at-or-before t.
    #[test]
    fn timeseries_value_at_is_latest_before(
        mut times in proptest::collection::vec(0u64..10_000, 1..100),
        probe in 0u64..12_000,
    ) {
        times.sort_unstable();
        let mut ts = TimeSeries::new();
        for (i, &t) in times.iter().enumerate() {
            ts.push(SimTime::from_secs(t), i as f64);
        }
        let got = ts.value_at(SimTime::from_secs(probe));
        // Reference implementation.
        let expected = times
            .iter()
            .enumerate()
            .filter(|(_, &t)| t <= probe)
            .map(|(i, _)| i as f64)
            .next_back();
        prop_assert_eq!(got, expected);
    }

    /// Resampling preserves the overall mean when buckets cover all data
    /// (conservation check on a simple case: equal timestamps weights).
    #[test]
    fn timeseries_window_stats_bounds(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let mut ts = TimeSeries::new();
        for &t in &sorted {
            ts.push(SimTime::from_secs(t), t as f64);
        }
        let all = ts.window_stats(SimTime::ZERO, SimTime::from_secs(1001));
        prop_assert_eq!(all.count() as usize, sorted.len());
        // Any sub-window holds a subset.
        let sub = ts.window_stats(SimTime::from_secs(250), SimTime::from_secs(750));
        prop_assert!(sub.count() <= all.count());
        if let (Some(lo), Some(hi)) = (sub.min(), sub.max()) {
            prop_assert!(lo >= 250.0 && hi < 750.0);
        }
    }

    /// Calendar arithmetic: day-of-week advances by one per day, hours
    /// wrap at 24.
    #[test]
    fn calendar_invariants(day in 0u64..3650, hour in 0u64..24) {
        let t = SimTime::from_days(day) + SimDuration::from_hours(hour);
        prop_assert_eq!(t.day_index(), day);
        prop_assert_eq!(t.hour_of_day() as u64, hour);
        prop_assert_eq!(t.day_of_week() as u64, day % 7);
        let next = t + SimDuration::from_days(1);
        prop_assert_eq!(next.day_of_week() as u64, (day + 1) % 7);
        // Business hours implies weekday.
        if t.is_business_hours() {
            prop_assert!(!t.is_weekend());
            prop_assert!((8..20).contains(&t.hour_of_day()));
        }
    }
}
