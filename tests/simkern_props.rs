//! Property-based tests on the simulation kernel's core invariants,
//! driven by the deterministic in-tree case generator (`common::cases`).

mod common;

use common::cases;

use intelliqos::simkern::{
    CircularQueue, EventQueue, OnlineStats, SimDuration, SimTime, TimeSeries,
};

/// Events always pop in (time, insertion-order) order regardless of
/// the schedule order.
#[test]
fn event_queue_is_a_stable_priority_queue() {
    cases(64, |g| {
        let times = g.vec_u64(1..200, 10_000);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_secs(t), i);
        }
        let mut popped = Vec::new();
        while let Some((t, i)) = q.pop() {
            popped.push((t.as_secs(), i));
        }
        assert_eq!(popped.len(), times.len());
        for pair in popped.windows(2) {
            let (t1, i1) = pair[0];
            let (t2, i2) = pair[1];
            assert!(t1 < t2 || (t1 == t2 && i1 < i2), "order violated: {pair:?}");
        }
    });
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn event_queue_cancellation() {
    cases(64, |g| {
        let times = g.vec_u64(1..100, 1000);
        let cancel_mask = g.vec_bool(1..100);
        let mut q = EventQueue::new();
        let tokens: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_secs(t), i))
            .collect();
        let mut cancelled = std::collections::HashSet::new();
        for (i, tok) in tokens.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                assert!(q.cancel(*tok));
                cancelled.insert(i);
            }
        }
        assert_eq!(q.len(), times.len() - cancelled.len());
        while let Some((_, i)) = q.pop() {
            assert!(!cancelled.contains(&i), "popped a cancelled event {i}");
        }
    });
}

/// Interleaving schedules, cancels (including double-cancels and bogus
/// tokens), and pops keeps `len()` exact and the pop order stable —
/// the O(1)-cancel tombstone bookkeeping must never drift.
#[test]
fn event_queue_len_is_exact_under_random_interleaving() {
    cases(64, |g| {
        let ops = g.usize_in(10, 400);
        let mut q: EventQueue<u64> = EventQueue::new();
        let mut live: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        let mut tokens = Vec::new();
        let mut next_payload = 0u64;
        let mut last_pop: Option<(u64, u64)> = None;
        for _ in 0..ops {
            match g.usize_in(0, 10) {
                // Schedule (weighted heavily so the queue grows).
                0..=4 => {
                    let at = q.now() + SimDuration::from_secs(g.u64_in(0, 1000));
                    let tok = q.schedule(at, next_payload);
                    live.insert(next_payload, at.as_secs());
                    tokens.push((tok, next_payload));
                    next_payload += 1;
                }
                // Cancel a random token (possibly already dead).
                5..=6 => {
                    if !tokens.is_empty() {
                        let k = g.usize_in(0, tokens.len());
                        let (tok, payload) = tokens[k];
                        let was_live = live.remove(&payload).is_some();
                        assert_eq!(q.cancel(tok), was_live, "cancel({payload})");
                    }
                }
                // Double-cancel pressure: cancel the same token twice.
                7 => {
                    if !tokens.is_empty() {
                        let k = g.usize_in(0, tokens.len());
                        let (tok, payload) = tokens[k];
                        let was_live = live.remove(&payload).is_some();
                        assert_eq!(q.cancel(tok), was_live);
                        assert!(!q.cancel(tok), "double cancel must return false");
                    }
                }
                // Pop.
                _ => {
                    let expect = live
                        .iter()
                        .map(|(&p, &t)| (t, p))
                        .min_by_key(|&(t, p)| (t, p));
                    match q.pop() {
                        Some((t, p)) => {
                            // FIFO at equal instants ⇒ the live event with
                            // the smallest (time, insertion-order) pops.
                            let (et, ep) = expect.expect("queue said Some, model says None");
                            assert_eq!((t.as_secs(), p), (et, ep));
                            live.remove(&p);
                            last_pop = Some((t.as_secs(), p));
                        }
                        None => assert!(expect.is_none(), "queue empty but model has {expect:?}"),
                    }
                }
            }
            assert_eq!(q.len(), live.len(), "len drifted after op");
            assert_eq!(q.is_empty(), live.is_empty());
        }
        let _ = last_pop;
    });
}

/// A circular queue retains exactly the last `cap` pushes, in order.
#[test]
fn circular_queue_retains_suffix() {
    cases(64, |g| {
        let cap = g.usize_in(1, 50);
        let items: Vec<u32> = (0..g.usize_in(0, 200))
            .map(|_| g.u32_in(0, u32::MAX))
            .collect();
        let mut q = CircularQueue::new(cap);
        for &x in &items {
            q.push(x);
        }
        let expected: Vec<u32> = items
            .iter()
            .copied()
            .skip(items.len().saturating_sub(cap))
            .collect();
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), expected);
        assert_eq!(q.evicted_count() as usize, items.len().saturating_sub(cap));
    });
}

/// Merging partitioned statistics equals the whole (associativity of
/// the Welford merge).
#[test]
fn stats_merge_is_partition_invariant() {
    cases(64, |g| {
        let xs: Vec<f64> = (0..g.usize_in(1, 300))
            .map(|_| g.f64_in(-1e6, 1e6))
            .collect();
        let split = g.usize_in(0, 300).min(xs.len());
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..split].iter().for_each(|&x| a.push(x));
        xs[split..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() <= 1e-6 * (1.0 + whole.mean().abs()));
        assert!((a.variance() - whole.variance()).abs() <= 1e-4 * (1.0 + whole.variance()));
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    });
}

/// Step interpolation returns the latest value at-or-before t.
#[test]
fn timeseries_value_at_is_latest_before() {
    cases(64, |g| {
        let mut times = g.vec_u64(1..100, 10_000);
        let probe = g.u64_in(0, 12_000);
        times.sort_unstable();
        let mut ts = TimeSeries::new();
        for (i, &t) in times.iter().enumerate() {
            ts.push(SimTime::from_secs(t), i as f64);
        }
        let got = ts.value_at(SimTime::from_secs(probe));
        // Reference implementation.
        let expected = times
            .iter()
            .enumerate()
            .filter(|(_, &t)| t <= probe)
            .map(|(i, _)| i as f64)
            .next_back();
        assert_eq!(got, expected);
    });
}

/// Window statistics cover exactly the pushed samples; sub-windows hold
/// subsets with in-window extrema.
#[test]
fn timeseries_window_stats_bounds() {
    cases(64, |g| {
        let mut sorted = g.vec_u64(1..100, 1000);
        sorted.sort_unstable();
        let mut ts = TimeSeries::new();
        for &t in &sorted {
            ts.push(SimTime::from_secs(t), t as f64);
        }
        let all = ts.window_stats(SimTime::ZERO, SimTime::from_secs(1001));
        assert_eq!(all.count() as usize, sorted.len());
        // Any sub-window holds a subset.
        let sub = ts.window_stats(SimTime::from_secs(250), SimTime::from_secs(750));
        assert!(sub.count() <= all.count());
        if let (Some(lo), Some(hi)) = (sub.min(), sub.max()) {
            assert!(lo >= 250.0 && hi < 750.0);
        }
    });
}

/// Calendar arithmetic: day-of-week advances by one per day, hours
/// wrap at 24.
#[test]
fn calendar_invariants() {
    cases(256, |g| {
        let day = g.u64_in(0, 3650);
        let hour = g.u64_in(0, 24);
        let t = SimTime::from_days(day) + SimDuration::from_hours(hour);
        assert_eq!(t.day_index(), day);
        assert_eq!(t.hour_of_day() as u64, hour);
        assert_eq!(t.day_of_week() as u64, day % 7);
        let next = t + SimDuration::from_days(1);
        assert_eq!(next.day_of_week() as u64, (day + 1) % 7);
        // Business hours implies weekday.
        if t.is_business_hours() {
            assert!(!t.is_weekend());
            assert!((8..20).contains(&t.hour_of_day()));
        }
    });
}
