//! Cross-thread fleet aggregation: N threads each run an independent
//! site simulation, their `MetricsRegistry` / `Profiler` instances are
//! merged into one fleet-wide profile, and the merged result must equal
//! the single-threaded sum — merging is associative, order-insensitive,
//! and loses nothing across thread boundaries.

use std::collections::BTreeMap;

use intelliqos::core::World;
use intelliqos::prelude::*;
use intelliqos::simkern::{MetricsRegistry, Profiler};
use intelliqos_simkern::SimDuration;

const SITE_SEEDS: [u64; 3] = [11, 23, 42];

fn run_site(seed: u64) -> World {
    let mut cfg = ScenarioConfig::small(seed, ManagementMode::Intelliagents);
    cfg.horizon = SimDuration::from_days(7);
    let mut world = World::build(cfg).enable_profile();
    world.run_to_end();
    world
}

fn counter_map(reg: &MetricsRegistry) -> BTreeMap<&'static str, u64> {
    reg.counters().collect()
}

fn span_counts(prof: &Profiler) -> BTreeMap<&'static str, u64> {
    prof.spans().map(|(name, h)| (name, h.count())).collect()
}

/// Merged-across-threads equals merged-sequentially equals the
/// element-wise sum: fleet counters are exact, not approximate.
#[test]
fn threaded_fleet_merge_equals_single_threaded_sum() {
    // Sequential reference: run each site on this thread and fold.
    let sequential: Vec<World> = SITE_SEEDS.iter().map(|&s| run_site(s)).collect();
    let mut seq_metrics = MetricsRegistry::enabled();
    let mut seq_profile = Profiler::enabled();
    for world in &sequential {
        seq_metrics.merge(&world.metrics);
        seq_profile.merge(&world.profiler);
    }

    // Threaded fleet: same sites, one thread each, merged on join.
    let threaded: Vec<World> = std::thread::scope(|s| {
        let handles: Vec<_> = SITE_SEEDS
            .iter()
            .map(|&seed| s.spawn(move || run_site(seed)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("site run"))
            .collect()
    });
    let mut fleet_metrics = MetricsRegistry::enabled();
    let mut fleet_profile = Profiler::enabled();
    for world in &threaded {
        fleet_metrics.merge(&world.metrics);
        fleet_profile.merge(&world.profiler);
    }

    // Counters are simulation-driven, hence identical across the two
    // execution shapes, and the merge is the exact element-wise sum.
    assert_eq!(counter_map(&fleet_metrics), counter_map(&seq_metrics));
    let mut expected: BTreeMap<&'static str, u64> = BTreeMap::new();
    for world in &threaded {
        for (name, v) in world.metrics.counters() {
            *expected.entry(name).or_insert(0) += v;
        }
    }
    assert_eq!(counter_map(&fleet_metrics), expected);
    assert!(
        fleet_metrics.counter("events.processed") > 0,
        "sites actually ran"
    );

    // Span *counts* are deterministic (wall-clock values are not): the
    // merged profiler holds exactly the per-site sums, on both shapes.
    assert_eq!(span_counts(&fleet_profile), span_counts(&seq_profile));
    let mut expected_spans: BTreeMap<&'static str, u64> = BTreeMap::new();
    for world in &threaded {
        for (name, h) in world.profiler.spans() {
            *expected_spans.entry(name).or_insert(0) += h.count();
        }
    }
    assert_eq!(span_counts(&fleet_profile), expected_spans);
    assert!(!expected_spans.is_empty(), "profiler recorded spans");

    // And the per-site simulations themselves are thread-invariant.
    for (a, b) in sequential.iter().zip(&threaded) {
        assert_eq!(a.ledger.to_json(), b.ledger.to_json());
    }
}
