//! Cross-crate integration tests: whole-datacenter scenarios exercising
//! the agents, the admin pair, the network fabric, and the batch tier
//! together.

use intelliqos::cluster::FaultCategory;
use intelliqos::core::World;
use intelliqos::prelude::*;
use intelliqos_simkern::{SimDuration, SimTime};

fn small(seed: u64, mode: ManagementMode) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(14);
    cfg
}

#[test]
fn paired_experiment_agents_win_across_seeds() {
    for seed in [1, 2, 3] {
        let before = run_scenario(small(seed, ManagementMode::ManualOps));
        let after = run_scenario(small(seed, ManagementMode::Intelliagents));
        assert!(
            before.total_downtime_hours > after.total_downtime_hours,
            "seed {seed}: manual {:.1}h vs agents {:.1}h",
            before.total_downtime_hours,
            after.total_downtime_hours
        );
        // Jobs complete at least as well with agents.
        assert!(after.lsf.completed >= before.lsf.completed * 95 / 100);
    }
}

#[test]
fn agents_automate_the_vast_majority_of_repairs() {
    let report = run_scenario(small(5, ManagementMode::Intelliagents));
    let total: u64 = report.categories.values().map(|t| t.incidents).sum();
    assert!(total > 0);
    // Every category the paper calls agent-healable heals automatically.
    // FW/NW and hardware stay manual ("our software was unable to take
    // care of firewall/network and hardware related errors"), and the
    // performance category contains obscure slowdowns agents only flag.
    for cat in [
        FaultCategory::MidJobDbCrash,
        FaultCategory::HumanError,
        FaultCategory::FrontEndError,
        FaultCategory::LsfError,
        FaultCategory::ServiceUnavailable,
    ] {
        if let Some(t) = report.categories.get(&cat) {
            assert_eq!(
                t.incidents, t.auto_repaired,
                "{cat}: {} incidents but only {} auto-repaired",
                t.incidents, t.auto_repaired
            );
        }
    }
}

#[test]
fn notifications_flow_to_humans_in_agent_mode() {
    let report = run_scenario(small(5, ManagementMode::Intelliagents));
    // Agents page on escalations and threshold breaches; two weeks of a
    // faulty datacenter produces at least some traffic.
    assert!(report.notifications > 0);
}

#[test]
fn dgspl_is_regenerated_and_fresh() {
    let cfg = small(5, ManagementMode::Intelliagents);
    let mut w = World::build(cfg);
    w.run_until(SimTime::from_days(1));
    let dgspl = w.admin.last_dgspl.as_ref().expect("DGSPL generated");
    // Regenerated within the last two periods (15 min each).
    let age = w.now().as_secs() - dgspl.generated_at_secs;
    assert!(age <= 2 * 15 * 60, "DGSPL age {age}s");
    // Every running database appears.
    assert!(!dgspl.entries.is_empty());
    assert!(dgspl
        .entries
        .iter()
        .any(|e| e.app_type == "db-oracle" || e.app_type == "db-sybase"));
}

#[test]
fn admin_shared_pool_holds_profiles_for_every_up_server() {
    let cfg = small(5, ManagementMode::Intelliagents);
    let mut w = World::build(cfg);
    w.run_until(SimTime::from_days(1));
    // 14 monitored servers (8 db + 3 tx + 3 fe); admins don't profile
    // themselves in this implementation.
    assert!(
        w.admin.dlsp_count() >= 10,
        "only {} DLSPs",
        w.admin.dlsp_count()
    );
    assert!(w.admin.shared_pool.list("/pool/dlsp").len() >= 10);
    assert!(w.admin.shared_pool.exists("/pool/dgspl/current.dgspl"));
}

#[test]
fn flags_exist_and_are_fresh_on_every_monitored_server() {
    let cfg = small(5, ManagementMode::Intelliagents);
    let mut w = World::build(cfg);
    w.run_until(SimTime::from_hours(6));
    let now = w.now();
    let mut checked = 0;
    for server in w.servers.values() {
        if !server.is_up() {
            continue;
        }
        let last = intelliqos::core::flags::last_run_secs(&server.fs, "intelliagent_service");
        if let Some(t) = last {
            // Fresh within X+5 minutes (the admin's own criterion).
            assert!(
                now.as_secs() - t <= 10 * 60,
                "stale flag on {}",
                server.hostname
            );
            checked += 1;
        }
    }
    assert!(checked >= 10, "flags found on only {checked} servers");
}

#[test]
fn manual_mode_runs_no_agents() {
    let cfg = small(5, ManagementMode::ManualOps);
    let mut w = World::build(cfg);
    w.run_until(SimTime::from_days(2));
    for server in w.servers.values() {
        assert!(
            intelliqos::core::flags::last_run_secs(&server.fs, "intelliagent_service").is_none(),
            "agent flag found in manual mode on {}",
            server.hostname
        );
    }
    assert!(w.admin.last_dgspl.is_none());
}

#[test]
fn year1_detection_is_slow_year2_detection_is_fast() {
    // Run longer so mid-crash incidents accumulate.
    let mut cfg = small(8, ManagementMode::ManualOps);
    cfg.horizon = SimDuration::from_days(28);
    let before = run_scenario(cfg);
    let mut cfg = small(8, ManagementMode::Intelliagents);
    cfg.horizon = SimDuration::from_days(28);
    let after = run_scenario(cfg);
    let b = before.mean_detection_hours(FaultCategory::MidJobDbCrash);
    let a = after.mean_detection_hours(FaultCategory::MidJobDbCrash);
    if before
        .categories
        .get(&FaultCategory::MidJobDbCrash)
        .map(|t| t.incidents)
        .unwrap_or(0)
        > 2
        && after
            .categories
            .get(&FaultCategory::MidJobDbCrash)
            .map(|t| t.incidents)
            .unwrap_or(0)
            > 2
    {
        assert!(b > 1.0, "manual detection {b:.2}h should be hours");
        assert!(a < 0.2, "agent detection {a:.2}h should be ≤ one sweep");
    }
}

#[test]
fn determinism_full_world_state() {
    let a = run_scenario(small(9, ManagementMode::Intelliagents));
    let b = run_scenario(small(9, ManagementMode::Intelliagents));
    assert_eq!(a.total_downtime_hours, b.total_downtime_hours);
    assert_eq!(a.incidents, b.incidents);
    assert_eq!(a.notifications, b.notifications);
    assert_eq!(a.lsf, b.lsf);
    assert_eq!(a.db_crashes, b.db_crashes);
}

#[test]
fn different_seeds_differ() {
    let a = run_scenario(small(10, ManagementMode::Intelliagents));
    let b = run_scenario(small(11, ManagementMode::Intelliagents));
    // Astronomically unlikely to coincide exactly.
    assert!(
        a.lsf.submitted != b.lsf.submitted
            || a.total_downtime_hours != b.total_downtime_hours
            || a.incidents != b.incidents
    );
}

#[test]
fn detect_only_agents_page_but_do_not_heal() {
    let mut cfg = small(12, ManagementMode::Intelliagents);
    cfg.agent_parts = intelliqos::core::AgentParts::detect_only();
    let report = run_scenario(cfg);
    let auto: u64 = report.categories.values().map(|t| t.auto_repaired).sum();
    // Healing disabled: nothing is auto-repaired by service/os agents.
    // (Admin-side crontab repair also counts as auto but requires the
    // healing path; accept a tiny number.)
    assert!(auto <= 2, "auto = {auto}");
    assert!(report.notifications > 0);
}

#[test]
fn resched_policies_are_all_runnable() {
    for policy in [
        ReschedPolicy::Dgspl,
        ReschedPolicy::Random,
        ReschedPolicy::ManualSticky,
    ] {
        let mut cfg = small(13, ManagementMode::Intelliagents);
        cfg.resched = policy;
        let report = run_scenario(cfg);
        assert!(report.lsf.completed > 0);
    }
}

#[test]
fn ontologies_installed_and_perf_agents_collect() {
    let cfg = small(5, ManagementMode::Intelliagents);
    let mut w = World::build(cfg);
    // SLKTs on every server's disk at install time.
    for server in w.servers.values() {
        let path = intelliqos::core::ontogen::slkt_path(&server.hostname);
        assert!(
            server.fs.exists(&path),
            "missing SLKT on {}",
            server.hostname
        );
    }
    // ISSL chunks in the admin pool (site fits one list).
    assert_eq!(w.admin.shared_pool.list("/pool/issl").len(), 1);
    // Performance agents produce circular measurement files + flags.
    w.run_until(SimTime::from_hours(6));
    let report = w.report(SimTime::from_hours(6));
    let mut perf_files = 0;
    for server in w.servers.values() {
        if server
            .fs
            .exists(&format!("/logs/perf/{}/os", server.hostname))
        {
            perf_files += 1;
        }
    }
    assert!(
        perf_files >= 10,
        "perf archives on only {perf_files} servers"
    );
    // Six hours of a faulty site typically breaches something, but at
    // minimum the counter plumbing must be alive (non-panicking).
    let _ = report.threshold_breaches;
}
