//! Minimal property-testing harness shared by the integration tests.
//!
//! The container this repo builds in is fully offline, so `proptest` is
//! not available; this module supplies the small slice of it the tests
//! need: deterministic random case generation over many seeded trials,
//! with the failing case's seed printed on panic so a failure is
//! reproducible by construction.

// Each integration-test binary compiles this module independently and
// uses a different subset of the generator helpers.
#![allow(dead_code)]

use intelliqos_simkern::SimRng;

/// Deterministic case generator: one per trial, derived from the trial
/// index so every run of the suite explores the same cases.
pub struct Gen {
    rng: SimRng,
}

impl Gen {
    /// Uniform `u64` in `[lo, hi)`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo);
        self.rng.uniform_u64(lo, hi - 1)
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        self.u64_in(lo as u64, hi as u64) as usize
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        self.u64_in(lo as u64, hi as u64) as u32
    }

    /// Uniform float in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.rng.uniform(lo, hi)
    }

    /// Fair coin.
    pub fn bool(&mut self) -> bool {
        self.rng.chance(0.5)
    }

    /// A `Vec<u64>` with length in `len` (half-open) and values in
    /// `[0, max_value)`.
    pub fn vec_u64(&mut self, len: std::ops::Range<usize>, max_value: u64) -> Vec<u64> {
        let n = self.usize_in(len.start, len.end);
        (0..n).map(|_| self.u64_in(0, max_value)).collect()
    }

    /// A `Vec<bool>` with length in `len` (half-open).
    pub fn vec_bool(&mut self, len: std::ops::Range<usize>) -> Vec<bool> {
        let n = self.usize_in(len.start, len.end);
        (0..n).map(|_| self.bool()).collect()
    }

    /// Printable-ASCII string (including `|`, `=`, newline and carriage
    /// return — every structural character a flat-ASCII codec must
    /// escape), length in `[0, max_len]`.
    pub fn ascii_value(&mut self, max_len: usize) -> String {
        let n = self.usize_in(0, max_len + 1);
        (0..n)
            .map(|_| {
                // Bias a little toward the structural characters.
                match self.usize_in(0, 10) {
                    0 => '|',
                    1 => '=',
                    2 => '\n',
                    3 => '\r',
                    _ => (self.u32_in(0x20, 0x7f) as u8) as char,
                }
            })
            .collect()
    }

    /// Identifier-ish name: `[A-Za-z][A-Za-z0-9_.-]{0,20}`.
    pub fn ident(&mut self) -> String {
        const HEAD: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz";
        const TAIL: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789_.-";
        let mut s = String::new();
        s.push(HEAD[self.usize_in(0, HEAD.len())] as char);
        let extra = self.usize_in(0, 21);
        for _ in 0..extra {
            s.push(TAIL[self.usize_in(0, TAIL.len())] as char);
        }
        s
    }

    /// Pick one element of a slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        self.rng.choose(items)
    }
}

/// Run `body` against `trials` generated cases. Panics (propagating the
/// assertion) with the trial number in the message context via a wrapped
/// catch, so failures name the reproducing trial.
pub fn cases(trials: u64, body: impl Fn(&mut Gen)) {
    for trial in 0..trials {
        let mut g = Gen {
            rng: SimRng::stream(trial, "prop-cases"),
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut g)));
        if let Err(payload) = result {
            eprintln!(
                "property failed at trial {trial} (rerun: SimRng::stream({trial}, \"prop-cases\"))"
            );
            std::panic::resume_unwind(payload);
        }
    }
}
