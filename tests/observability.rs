//! Observability-layer integration tests: the incident ledger, the
//! structured trace, the paired-run divergence finder, and the JSON run
//! export, all exercised through whole-datacenter scenarios.

use intelliqos::core::divergence::{first_divergence, Stream};
use intelliqos::core::run_export_json;
use intelliqos::prelude::*;
use intelliqos::simkern::Subsystem;

fn small(seed: u64, mode: ManagementMode) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(7);
    cfg
}

fn run_traced(seed: u64, mode: ManagementMode) -> (World, ScenarioReport) {
    let mut world = World::build(small(seed, mode)).enable_trace();
    let report = world.run_to_end();
    (world, report)
}

/// The report's category tables are *derived* from the ledger, so the
/// two can never disagree — asserted here so the wiring stays that way.
#[test]
fn report_totals_equal_ledger_totals() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, report) = run_traced(11, mode);
        assert_eq!(report.categories, world.ledger.totals());
        let incidents: u64 = world.ledger.totals().values().map(|t| t.incidents).sum();
        assert_eq!(report.incidents, incidents);
        assert!((report.total_downtime_hours - world.ledger.total_downtime_hours()).abs() < 1e-9);
        assert_eq!(report.open_incidents, world.ledger.open_incidents().len());
        assert_eq!(report.downtime_hours, world.ledger.figure2_rows());
    }
}

/// Every ledger record carries the full injected → detected → diagnosed
/// → repaired/escalated lifecycle, in order, with an actor and a repair
/// action on every closed incident.
#[test]
fn every_incident_has_a_complete_ordered_lifecycle() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, report) = run_traced(23, mode);
        assert!(report.incidents > 0, "scenario must produce incidents");
        let violations = world.ledger.lifecycle_violations();
        assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        for inc in world.ledger.incidents() {
            if inc.restored.is_some() {
                assert!(
                    inc.repaired_by().is_some(),
                    "{}: closed without actor",
                    inc.id
                );
                assert!(
                    inc.repair_action().is_some_and(|a| !a.is_empty()),
                    "{}: closed without action",
                    inc.id
                );
                assert!(
                    !inc.attempts().is_empty(),
                    "{}: closed without an attempt history",
                    inc.id
                );
            }
        }
        // In manual mode, humans get paged for everything and repair
        // everything; nothing closes automatically.
        if mode == ManagementMode::ManualOps {
            for t in world.ledger.totals().values() {
                assert_eq!(t.auto_repaired, 0);
                assert_eq!(t.escalated, t.incidents);
            }
        }
    }
}

/// Every fault on the exogenous tape that fires within the horizon shows
/// up exactly once as a Fault-subsystem `inject` trace event, in tape
/// order — the injection stream is complete and not duplicated.
#[test]
fn trace_records_each_injected_fault_exactly_once() {
    let (world, _report) = run_traced(23, ManagementMode::Intelliagents);
    let horizon = SimTime::ZERO + world.cfg.horizon;
    let expected: Vec<_> = world
        .fault_tape()
        .iter()
        .filter(|f| f.at <= horizon)
        .collect();
    let injects: Vec<_> = world
        .trace
        .events()
        .filter(|e| e.subsystem == Subsystem::Fault && e.code == "inject")
        .collect();
    assert_eq!(
        world.trace.evicted(),
        0,
        "ring must not have dropped events"
    );
    assert_eq!(injects.len(), expected.len());
    for (ev, fault) in injects.iter().zip(&expected) {
        assert_eq!(ev.at, fault.at);
        assert!(ev.detail.contains(&format!("{:?}", fault.mechanism)));
    }
    // And the ledger + repair machinery left their own marks.
    assert!(world.trace.count(Subsystem::Fault) >= injects.len() as u64);
    assert!(world.trace.count(Subsystem::Agent) > 0);
    assert!(world.trace.count(Subsystem::Workload) > 0);
    assert!(world.trace.count(Subsystem::Lsf) > 0);
    assert!(world.trace.count(Subsystem::Kernel) >= 2); // run-start + run-end
}

/// The paired-run invariant, checked by the divergence finder itself:
/// same seed, different management mode → identical exogenous streams,
/// even after both worlds have fully run.
#[test]
fn paired_runs_share_identical_tapes() {
    let (manual, _) = run_traced(42, ManagementMode::ManualOps);
    let (agents, _) = run_traced(42, ManagementMode::Intelliagents);
    assert_eq!(first_divergence(&manual, &agents), None);
}

/// Different seeds must diverge, and the finder pinpoints the *first*
/// differing event with both renderings.
#[test]
fn divergence_finder_pinpoints_first_difference() {
    let (a, _) = run_traced(42, ManagementMode::ManualOps);
    let (b, _) = run_traced(43, ManagementMode::ManualOps);
    let d = first_divergence(&a, &b).expect("different seeds diverge");
    assert_ne!(d.left, d.right);
    match d.stream {
        Stream::FaultTape => {
            assert_eq!(a.fault_tape()[..d.index], b.fault_tape()[..d.index]);
            assert_ne!(a.fault_tape().get(d.index), b.fault_tape().get(d.index));
        }
        Stream::WorkloadTape => {
            assert_eq!(a.workload_tape()[..d.index], b.workload_tape()[..d.index]);
        }
    }
}

/// The JSON export carries both layers and matches the live objects.
#[test]
fn json_export_reflects_ledger_and_trace() {
    let (world, report) = run_traced(11, ManagementMode::Intelliagents);
    let json = run_export_json(&world);
    assert!(json.contains("\"seed\": 11"));
    assert!(json.contains("\"mode\": \"Intelliagents\""));
    assert!(json.contains(&format!("\"open_incidents\": {}", report.open_incidents)));
    for (tag, n) in world.trace.counters() {
        assert!(json.contains(&format!("\"{tag}\": {n}")));
    }
    // One incident object per ledger record.
    assert_eq!(
        json.matches("\"category\": ").count(),
        world.ledger.incidents().count()
    );
}

/// A world run with tracing left at the default (disabled) must record
/// nothing — the zero-cost path — while producing the same report.
#[test]
fn disabled_trace_records_nothing_and_changes_nothing() {
    let mut silent = World::build(small(11, ManagementMode::Intelliagents));
    let report_silent = silent.run_to_end();
    let (traced, report_traced) = run_traced(11, ManagementMode::Intelliagents);
    assert_eq!(silent.trace.total(), 0);
    assert!(traced.trace.total() > 0);
    assert_eq!(report_silent, report_traced);
}
