//! Observability-layer integration tests: the incident ledger, the
//! structured trace, the paired-run divergence finder, and the JSON run
//! export, all exercised through whole-datacenter scenarios.

use std::path::PathBuf;

use intelliqos::core::divergence::{first_divergence, Stream};
use intelliqos::core::{run_export_json, validate_spill_dir, IncidentId};
use intelliqos::prelude::*;
use intelliqos::simkern::{SpillConfig, Subsystem, TraceOptions};

fn small(seed: u64, mode: ManagementMode) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(7);
    cfg
}

fn run_traced(seed: u64, mode: ManagementMode) -> (World, ScenarioReport) {
    let mut world = World::build(small(seed, mode)).enable_trace();
    let report = world.run_to_end();
    (world, report)
}

/// The report's category tables are *derived* from the ledger, so the
/// two can never disagree — asserted here so the wiring stays that way.
#[test]
fn report_totals_equal_ledger_totals() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, report) = run_traced(11, mode);
        assert_eq!(report.categories, world.ledger.totals());
        let incidents: u64 = world.ledger.totals().values().map(|t| t.incidents).sum();
        assert_eq!(report.incidents, incidents);
        assert!((report.total_downtime_hours - world.ledger.total_downtime_hours()).abs() < 1e-9);
        assert_eq!(report.open_incidents, world.ledger.open_incidents().len());
        assert_eq!(report.downtime_hours, world.ledger.figure2_rows());
    }
}

/// Every ledger record carries the full injected → detected → diagnosed
/// → repaired/escalated lifecycle, in order, with an actor and a repair
/// action on every closed incident.
#[test]
fn every_incident_has_a_complete_ordered_lifecycle() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, report) = run_traced(23, mode);
        assert!(report.incidents > 0, "scenario must produce incidents");
        let violations = world.ledger.lifecycle_violations();
        assert!(violations.is_empty(), "{mode:?}: {violations:?}");
        for inc in world.ledger.incidents() {
            if inc.restored.is_some() {
                assert!(
                    inc.repaired_by().is_some(),
                    "{}: closed without actor",
                    inc.id
                );
                assert!(
                    inc.repair_action().is_some_and(|a| !a.is_empty()),
                    "{}: closed without action",
                    inc.id
                );
                assert!(
                    !inc.attempts().is_empty(),
                    "{}: closed without an attempt history",
                    inc.id
                );
            }
        }
        // In manual mode, humans get paged for everything and repair
        // everything; nothing closes automatically.
        if mode == ManagementMode::ManualOps {
            for t in world.ledger.totals().values() {
                assert_eq!(t.auto_repaired, 0);
                assert_eq!(t.escalated, t.incidents);
            }
        }
    }
}

/// Every fault on the exogenous tape that fires within the horizon shows
/// up exactly once as a Fault-subsystem `inject` trace event, in tape
/// order — the injection stream is complete and not duplicated.
#[test]
fn trace_records_each_injected_fault_exactly_once() {
    let (world, _report) = run_traced(23, ManagementMode::Intelliagents);
    let horizon = SimTime::ZERO + world.cfg.horizon;
    let expected: Vec<_> = world
        .fault_tape()
        .iter()
        .filter(|f| f.at <= horizon)
        .collect();
    let injects: Vec<_> = world
        .trace
        .events()
        .into_iter()
        .filter(|e| e.subsystem == Subsystem::Fault && e.code == "inject")
        .collect();
    assert_eq!(
        world.trace.evicted(),
        0,
        "ring must not have dropped events"
    );
    assert_eq!(injects.len(), expected.len());
    for (ev, fault) in injects.iter().zip(&expected) {
        assert_eq!(ev.at, fault.at);
        assert!(ev.detail.contains(&format!("{:?}", fault.mechanism)));
    }
    // And the ledger + repair machinery left their own marks.
    assert!(world.trace.count(Subsystem::Fault) >= injects.len() as u64);
    assert!(world.trace.count(Subsystem::Agent) > 0);
    assert!(world.trace.count(Subsystem::Workload) > 0);
    assert!(world.trace.count(Subsystem::Lsf) > 0);
    assert!(world.trace.count(Subsystem::Kernel) >= 2); // run-start + run-end
}

/// The paired-run invariant, checked by the divergence finder itself:
/// same seed, different management mode → identical exogenous streams,
/// even after both worlds have fully run.
#[test]
fn paired_runs_share_identical_tapes() {
    let (manual, _) = run_traced(42, ManagementMode::ManualOps);
    let (agents, _) = run_traced(42, ManagementMode::Intelliagents);
    assert_eq!(first_divergence(&manual, &agents), None);
}

/// Different seeds must diverge, and the finder pinpoints the *first*
/// differing event with both renderings.
#[test]
fn divergence_finder_pinpoints_first_difference() {
    let (a, _) = run_traced(42, ManagementMode::ManualOps);
    let (b, _) = run_traced(43, ManagementMode::ManualOps);
    let d = first_divergence(&a, &b).expect("different seeds diverge");
    assert_ne!(d.left, d.right);
    match d.stream {
        Stream::FaultTape => {
            assert_eq!(a.fault_tape()[..d.index], b.fault_tape()[..d.index]);
            assert_ne!(a.fault_tape().get(d.index), b.fault_tape().get(d.index));
        }
        Stream::WorkloadTape => {
            assert_eq!(a.workload_tape()[..d.index], b.workload_tape()[..d.index]);
        }
    }
}

/// The JSON export carries both layers and matches the live objects.
#[test]
fn json_export_reflects_ledger_and_trace() {
    let (world, report) = run_traced(11, ManagementMode::Intelliagents);
    let json = run_export_json(&world);
    assert!(json.contains("\"seed\": 11"));
    assert!(json.contains("\"mode\": \"Intelliagents\""));
    assert!(json.contains(&format!("\"open_incidents\": {}", report.open_incidents)));
    for (tag, n) in world.trace.counters() {
        assert!(json.contains(&format!("\"{tag}\": {n}")));
    }
    // One incident object per ledger record.
    assert_eq!(
        json.matches("\"category\": ").count(),
        world.ledger.incidents().count()
    );
}

/// Every correlation id on a trace event resolves to a ledger incident
/// (no orphaned ids, no events emitted for an unknown — e.g. already
/// dropped — incident), the correlated story always starts at the
/// injection, and nothing is emitted for an incident after it closed.
#[test]
fn correlation_ids_reference_known_incidents_and_respect_close() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, _) = run_traced(23, mode);
        let mut correlated = 0usize;
        for ev in world.trace.events() {
            let Some(corr) = ev.corr else { continue };
            correlated += 1;
            let rec = world
                .ledger
                .get(IncidentId(corr))
                .unwrap_or_else(|| panic!("{mode:?}: event {} has unknown corr {corr}", ev.seq));
            if let Some(restored) = rec.restored {
                assert!(
                    ev.at <= restored,
                    "{mode:?}: {} event for incident {corr} at {} after close {}",
                    ev.code,
                    ev.at.as_secs(),
                    restored.as_secs()
                );
            }
        }
        assert!(correlated > 0, "{mode:?}: no correlated events at all");
        // Every incident's timeline is complete: it begins with the
        // injection ("inject" or "db-crash") and, when the incident
        // closed, ends with a closing event.
        for rec in world.ledger.incidents() {
            let timeline: Vec<_> = world
                .trace
                .events()
                .into_iter()
                .filter(|e| e.corr == Some(rec.id.0))
                .collect();
            assert!(
                !timeline.is_empty(),
                "{mode:?}: incident {} has no correlated events",
                rec.id
            );
            assert!(
                matches!(timeline[0].code, "inject" | "db-crash"),
                "{mode:?}: incident {} timeline starts with {:?}",
                rec.id,
                timeline[0].code
            );
            if rec.restored.is_some() {
                let closes = timeline.iter().any(|e| {
                    matches!(
                        e.code,
                        "restore" | "local-heal" | "cron-repair" | "burn-alert"
                    )
                });
                assert!(
                    closes,
                    "{mode:?}: closed incident {} has no closing event",
                    rec.id
                );
            }
        }
    }
}

/// The SLO observatory's online accounting agrees with the ledger: the
/// total downtime equals the sum over closed incidents, and every
/// service row's incident count matches the ledger's records.
#[test]
fn slo_report_is_consistent_with_the_ledger() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, _) = run_traced(23, mode);
        let report = world.slo.report(world.cfg.horizon);
        let closed: Vec<_> = world
            .ledger
            .incidents()
            .filter(|i| i.restored.is_some())
            .collect();
        let expected_downtime: u64 = closed
            .iter()
            .map(|i| i.restored.expect("closed").since(i.onset).as_secs())
            .sum();
        assert_eq!(report.total_downtime_secs(), expected_downtime, "{mode:?}");
        let expected_incidents = closed.len() as u64;
        let reported: u64 = report.services.iter().map(|s| s.incidents).sum();
        assert_eq!(reported, expected_incidents, "{mode:?}");
        for row in &report.services {
            let in_ledger = closed.iter().filter(|i| i.service == row.service).count() as u64;
            assert_eq!(row.incidents, in_ledger, "{mode:?} service {}", row.service);
        }
        // Manual hours-long repairs must burn budget faster than agent
        // repairs; the export is schema-valid JSON either way.
        let json = report.to_json_with_run(world.cfg.seed, &format!("{mode:?}"));
        let doc = intelliqos::core::jsonv::parse(&json).expect("slo export parses");
        assert_eq!(
            doc.get("report").and_then(|v| v.as_str()),
            Some("slo"),
            "{mode:?}"
        );
        assert_eq!(
            doc.get("alerts").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(world.slo.alerts().len()),
            "{mode:?}"
        );
    }
}

/// The actionable-failure taxonomy is consistent across all three
/// layers: every ledger incident classifies deterministically from its
/// own fields, the scoped ledger/SLO columns close exactly
/// (`all == service + client + abort`), and the observatory emits one
/// `classified` trace event per closed incident.
#[test]
fn failure_taxonomy_is_consistent_across_ledger_slo_and_trace() {
    use intelliqos::core::downtime::{classify_failure, FailureClass};
    use intelliqos::core::slo::SloScope;
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let (world, _) = run_traced(23, mode);

        // Classification is a pure function of the incident record, so
        // evidence backfill can never disagree with the live run.
        let mut class_counts = [0u64; 3];
        for inc in world.ledger.incidents() {
            let rederived = classify_failure(
                inc.category.label(),
                inc.repaired_by().map(|a| a.label()),
                inc.escalated,
            );
            assert_eq!(inc.failure_class(), rederived, "{mode:?} {}", inc.id);
            assert_eq!(
                inc.is_actionable(),
                inc.failure_class() == FailureClass::ServiceFault,
                "{mode:?} {}",
                inc.id
            );
            if inc.restored.is_some() {
                class_counts[inc.failure_class().index()] += 1;
            }
        }

        // Per-category scoped totals close: the all-scope column equals
        // the sum of the three class columns, per integer field.
        let all = world.ledger.totals_scoped(SloScope::All);
        let by_class = [
            world.ledger.totals_scoped(SloScope::Service),
            world.ledger.totals_scoped(SloScope::Client),
            world.ledger.totals_scoped(SloScope::Abort),
        ];
        for (cat, t) in &all {
            let parts: u64 = by_class
                .iter()
                .map(|m| m.get(cat).map(|t| t.incidents).unwrap_or(0))
                .sum();
            assert_eq!(
                t.incidents, parts,
                "{mode:?} {cat:?} incidents do not close"
            );
        }
        assert_eq!(all, world.ledger.totals(), "totals() is the all-scope view");

        // The SLO report's fleet-wide scope split closes the same way,
        // and every service row carries a meaningful target.
        let report = world.slo.report(world.cfg.horizon);
        let parts = report.scope_downtime_secs(SloScope::Service)
            + report.scope_downtime_secs(SloScope::Client)
            + report.scope_downtime_secs(SloScope::Abort);
        assert_eq!(report.scope_downtime_secs(SloScope::All), parts, "{mode:?}");
        for row in &report.services {
            assert!(
                row.target > 0.0 && row.target < 1.0,
                "{mode:?} {}: target {}",
                row.service,
                row.target
            );
        }

        // One `classified` trace event per closed incident, each naming
        // a closed-world class label.
        let classified: Vec<_> = world
            .trace
            .events()
            .into_iter()
            .filter(|e| e.code == "classified")
            .collect();
        let closed: u64 = class_counts.iter().sum();
        assert_eq!(classified.len() as u64, closed, "{mode:?}");
        for ev in &classified {
            assert!(
                FailureClass::ALL
                    .iter()
                    .any(|c| ev.detail.contains(&format!("class={c}"))),
                "{mode:?}: unlabelled classification event: {}",
                ev.detail
            );
        }
        assert!(closed > 0, "{mode:?}: scenario must close incidents");
    }
}

fn spill_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("intelliqos-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run_spilled(seed: u64, dir: PathBuf, chunk_records: usize) -> (World, ScenarioReport) {
    let mut spill = SpillConfig::new(dir);
    spill.chunk_records = chunk_records;
    let opts = TraceOptions {
        spill: Some(spill),
        ..TraceOptions::default()
    };
    let mut world =
        World::build(small(seed, ManagementMode::Intelliagents)).enable_trace_with(opts);
    let report = world.run_to_end();
    (world, report)
}

/// Flight-recorder mode: the spill sink persists *every* emitted event
/// (zero drops), rotates chunks at the configured size, the validator
/// finds the directory complete, and the recorded stream is identical
/// to what a ring-sink run of the same scenario retains.
#[test]
fn spill_sink_persists_every_event_and_matches_the_ring() {
    let dir = spill_dir("full");
    let (spilled, report_spilled) = run_spilled(11, dir.clone(), 500);
    let (ringed, report_ringed) = run_traced(11, ManagementMode::Intelliagents);
    assert_eq!(report_spilled, report_ringed, "sink choice changes nothing");

    // Nothing dropped, everything on disk.
    assert_eq!(spilled.trace.dropped(), 0);
    assert_eq!(spilled.trace.sink_kind(), "spill");
    let findings = validate_spill_dir(&dir);
    assert!(findings.is_empty(), "{findings:?}");

    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest");
    let doc = intelliqos::core::jsonv::parse(&manifest).expect("manifest parses");
    assert_eq!(
        doc.get("total").and_then(|v| v.as_u64()),
        Some(spilled.trace.total()),
        "every emitted event is a disk record"
    );
    let chunks = doc.get("chunks").and_then(|v| v.as_arr()).expect("chunks");
    let expected_chunks = (spilled.trace.total() as usize).div_ceil(500);
    assert_eq!(
        chunks.len(),
        expected_chunks,
        "chunks rotate at 500 records"
    );

    // Same scenario, same stream: the spill's totals and per-subsystem
    // counters match the ring run exactly.
    assert_eq!(spilled.trace.total(), ringed.trace.total());
    let (a, b): (Vec<_>, Vec<_>) = (spilled.trace.counters(), ringed.trace.counters());
    assert_eq!(a, b);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing a run mid-write leaves a truncated final chunk; the
/// validator must say so rather than bless the spill.
#[test]
fn truncated_spill_chunk_is_detected() {
    let dir = spill_dir("trunc");
    let (_world, _) = run_spilled(7, dir.clone(), 1000);
    assert!(validate_spill_dir(&dir).is_empty());

    // Chop the final chunk mid-record.
    let doc = intelliqos::core::jsonv::parse(
        &std::fs::read_to_string(dir.join("manifest.json")).expect("manifest"),
    )
    .expect("parses");
    let chunks = doc.get("chunks").and_then(|v| v.as_arr()).expect("chunks");
    let last = chunks
        .last()
        .and_then(|c| c.get("file"))
        .and_then(|v| v.as_str())
        .expect("last chunk name");
    let path = dir.join(last);
    let text = std::fs::read_to_string(&path).expect("chunk");
    std::fs::write(&path, &text[..text.len() - 20]).expect("truncate");

    let findings = validate_spill_dir(&dir);
    assert!(!findings.is_empty(), "truncated chunk must fail validation");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A world run with tracing left at the default (disabled) must record
/// nothing — the zero-cost path — while producing the same report.
#[test]
fn disabled_trace_records_nothing_and_changes_nothing() {
    let mut silent = World::build(small(11, ManagementMode::Intelliagents));
    let report_silent = silent.run_to_end();
    let (traced, report_traced) = run_traced(11, ManagementMode::Intelliagents);
    assert_eq!(silent.trace.total(), 0);
    assert!(traced.trace.total() > 0);
    assert_eq!(report_silent, report_traced);
}
