//! Property-based tests on the ontology layer: the flat-ASCII codec and
//! every ontology document type must round-trip losslessly through
//! their on-disk form, for arbitrary content. Driven by the in-tree
//! deterministic case generator (`common::cases`).

mod common;

use common::{cases, Gen};

use intelliqos::ontology::dlsp::DlspService;
use intelliqos::ontology::slkt::{Slkt, SlktApp, SlktHardware};
use intelliqos::ontology::{
    flat::{escape, unescape, FlatDoc, FlatRecord},
    Bounds, ConstraintStore, Dgspl, DgsplEntry, Dlsp, Issl, IsslEntry,
};

fn fields(g: &mut Gen, len: std::ops::Range<usize>) -> Vec<(String, String)> {
    let n = g.usize_in(len.start, len.end);
    (0..n).map(|_| (g.ident(), g.ascii_value(40))).collect()
}

#[test]
fn escape_roundtrips() {
    cases(256, |g| {
        let s = g.ascii_value(40);
        let esc = escape(&s);
        // Escaped form has no structural characters.
        assert!(!esc.contains('|') && !esc.contains('=') && !esc.contains('\n'));
        assert_eq!(unescape(&esc).unwrap(), s);
    });
}

#[test]
fn record_roundtrips() {
    cases(128, |g| {
        let fs = fields(g, 1..8);
        let mut rec = FlatRecord::new();
        for (k, v) in &fs {
            rec = rec.set(k.clone(), v.clone());
        }
        let line = rec.to_line();
        let back = FlatRecord::from_line(&line, 0).unwrap();
        assert_eq!(back, rec);
    });
}

#[test]
fn doc_roundtrips() {
    cases(64, |g| {
        let kind = g.ident();
        let version = g.u32_in(1, 99);
        let mut doc = FlatDoc::new(kind, version);
        for _ in 0..g.usize_in(0, 4) {
            let name = g.ident();
            let recs = (0..g.usize_in(0, 4))
                .map(|_| {
                    let mut r = FlatRecord::new();
                    for (k, v) in fields(g, 1..5) {
                        r = r.set(k, v);
                    }
                    r
                })
                .collect();
            doc = doc.with_section(name, recs);
        }
        let text = doc.to_text();
        let back = FlatDoc::parse_text(&text).unwrap();
        assert_eq!(back, doc);
    });
}

#[test]
fn issl_roundtrips() {
    cases(64, |g| {
        let mut issl = Issl::new();
        for _ in 0..g.usize_in(0, 20) {
            let entry = IsslEntry {
                hostname: g.ident(),
                ip: g.ident(),
                services: (0..g.usize_in(0, 4)).map(|_| g.ident()).collect(),
            };
            issl.add(entry).unwrap();
        }
        let text = issl.to_doc().to_text();
        assert_eq!(Issl::parse_text(&text).unwrap(), issl);
    });
}

#[test]
fn dlsp_roundtrips() {
    cases(64, |g| {
        let statuses = ["running", "refused", "timeout", "query-error"];
        let dlsp = Dlsp {
            hostname: g.ident(),
            generated_at_secs: g.u64_in(0, 100_000_000),
            model: "Sun-E4500".into(),
            os: "Solaris".into(),
            cpus: 8,
            ram_gb: 8,
            // Quantise to the codec's 4-decimal float formatting.
            load_score: (g.f64_in(0.0, 1.5) * 10_000.0).round() / 10_000.0,
            free_mem_mb: 1024.0,
            cpu_idle_pct: 50.0,
            users: g.u32_in(0, 500),
            location: "London".into(),
            site: "LDN".into(),
            services: (0..g.usize_in(0, 6))
                .map(|_| DlspService {
                    name: g.ident(),
                    app_type: "db-oracle".into(),
                    version: g.ident(),
                    status: g.choose(&statuses).to_string(),
                    latency_ms: None,
                })
                .collect(),
        };
        let text = dlsp.to_doc().to_text();
        assert_eq!(Dlsp::parse_text(&text).unwrap(), dlsp);
    });
}

#[test]
fn slkt_roundtrips() {
    cases(64, |g| {
        let slkt = Slkt {
            hostname: g.ident(),
            ip: "10.0.0.1".into(),
            hardware: SlktHardware {
                model: "Sun-E10000".into(),
                cpus: 32,
                ram_gb: 32,
                disks: 12,
            },
            apps: (0..g.usize_in(0, 4))
                .map(|_| SlktApp {
                    name: g.ident(),
                    app_type: "db-oracle".into(),
                    version: "8.1.7".into(),
                    binary_path: "/apps/db/bin".into(),
                    port: 1521,
                    processes: (0..g.usize_in(1, 4))
                        .map(|_| (g.ident(), g.u32_in(1, 9)))
                        .collect(),
                    startup_sequence: vec!["listener".into(), "instance".into()],
                    depends_on: vec![],
                    mounts: vec!["/apps".into()],
                    connect_timeout_secs: 30,
                })
                .collect(),
        };
        let text = slkt.to_doc().to_text();
        assert_eq!(Slkt::parse_text(&text).unwrap(), slkt);
    });
}

#[test]
fn dgspl_roundtrips_and_shortlist_is_sorted() {
    cases(64, |g| {
        let dgspl = Dgspl {
            generated_at_secs: 900,
            entries: (0..g.usize_in(0, 20))
                .map(|_| {
                    let cpus = g.u32_in(1, 64);
                    DgsplEntry {
                        hostname: g.ident(),
                        server_type: "Sun-E4500".into(),
                        os: "Solaris".into(),
                        ram_gb: g.u32_in(1, 64),
                        cpus,
                        // Quantise to the codec's 4-decimal precision.
                        compute_power: (cpus as f64 * 0.9 * 10_000.0).round() / 10_000.0,
                        app_type: "db-oracle".into(),
                        version: "8.1.7".into(),
                        load: (g.f64_in(0.0, 1.5) * 10_000.0).round() / 10_000.0,
                        users: 0,
                        location: "London".into(),
                        site: "LDN".into(),
                        service: "svc".into(),
                    }
                })
                .collect(),
        };
        let text = dgspl.to_doc().to_text();
        assert_eq!(&Dgspl::parse_text(&text).unwrap(), &dgspl);
        // Shortlist invariant: "best choice always first" — load is
        // non-decreasing along the shortlist.
        let shortlist = dgspl.shortlist("db-oracle");
        for pair in shortlist.windows(2) {
            assert!(pair[0].load <= pair[1].load + 1e-9);
        }
        // Replacement shortlist never includes under-powered hosts.
        for e in dgspl.replacement_shortlist("db-oracle", "Sun-E4500", 10.0, 16) {
            assert!(e.compute_power >= 10.0 && e.ram_gb >= 16);
        }
    });
}

#[test]
fn constraints_roundtrip_and_relax_widens() {
    cases(64, |g| {
        let vars: Vec<(String, f64, f64)> = (0..g.usize_in(1, 10))
            .map(|_| (g.ident(), g.f64_in(0.0, 1e6), g.f64_in(0.0, 1e6)))
            .collect();
        let factor = g.f64_in(1.01, 3.0);
        let mut store = ConstraintStore::new();
        for (name, a, b) in &vars {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            // Quantise to survive the 4-decimal codec.
            let lo = (lo * 100.0).round() / 100.0;
            let hi = (hi * 100.0).round() / 100.0;
            store.set(name.clone(), Bounds::between(lo, hi));
        }
        let text = store.to_doc().to_text();
        let back = ConstraintStore::from_doc(&FlatDoc::parse_text(&text).unwrap()).unwrap();
        assert_eq!(&back, &store);
        // Relaxing never tightens.
        let (name, _, _) = &vars[0];
        let before = store.get(name).unwrap();
        let after = store.relax(name, factor).unwrap();
        assert!(after.max.unwrap() >= before.max.unwrap());
        assert!(after.min.unwrap() <= before.min.unwrap());
    });
}
