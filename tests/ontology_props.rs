//! Property-based tests on the ontology layer: the flat-ASCII codec and
//! every ontology document type must round-trip losslessly through
//! their on-disk form, for arbitrary content.

use proptest::prelude::*;

use intelliqos::ontology::{
    flat::{escape, unescape, FlatDoc, FlatRecord},
    Bounds, ConstraintStore, Dgspl, DgsplEntry, Dlsp, Issl, IsslEntry,
};
use intelliqos::ontology::dlsp::DlspService;
use intelliqos::ontology::slkt::{Slkt, SlktApp, SlktHardware};

/// Printable-ASCII strings including every structural character the
/// codec must escape.
fn ascii_value() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[ -~\n\r]{0,40}").expect("valid regex")
}

/// Identifier-ish names (keys must be nonempty).
fn ident() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[A-Za-z][A-Za-z0-9_.-]{0,20}").expect("valid regex")
}

proptest! {
    #[test]
    fn escape_roundtrips(s in ascii_value()) {
        let esc = escape(&s);
        // Escaped form has no structural characters.
        prop_assert!(!esc.contains('|') && !esc.contains('=') && !esc.contains('\n'));
        prop_assert_eq!(unescape(&esc).unwrap(), s);
    }

    #[test]
    fn record_roundtrips(fields in proptest::collection::vec((ident(), ascii_value()), 1..8)) {
        let mut rec = FlatRecord::new();
        for (k, v) in &fields {
            rec = rec.set(k.clone(), v.clone());
        }
        let line = rec.to_line();
        let back = FlatRecord::from_line(&line, 0).unwrap();
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn doc_roundtrips(
        kind in ident(),
        version in 1u32..99,
        sections in proptest::collection::vec(
            (ident(), proptest::collection::vec(
                proptest::collection::vec((ident(), ascii_value()), 1..5), 0..4)),
            0..4,
        )
    ) {
        let mut doc = FlatDoc::new(kind, version);
        for (name, records) in &sections {
            let recs = records
                .iter()
                .map(|fields| {
                    let mut r = FlatRecord::new();
                    for (k, v) in fields {
                        r = r.set(k.clone(), v.clone());
                    }
                    r
                })
                .collect();
            doc = doc.with_section(name.clone(), recs);
        }
        let text = doc.to_text();
        let back = FlatDoc::parse_text(&text).unwrap();
        prop_assert_eq!(back, doc);
    }

    #[test]
    fn issl_roundtrips(
        entries in proptest::collection::vec(
            (ident(), ident(), proptest::collection::vec(ident(), 0..4)),
            0..20,
        )
    ) {
        let mut issl = Issl::new();
        for (host, ip, services) in entries {
            issl.add(IsslEntry { hostname: host, ip, services }).unwrap();
        }
        let text = issl.to_doc().to_text();
        prop_assert_eq!(Issl::parse_text(&text).unwrap(), issl);
    }

    #[test]
    fn dlsp_roundtrips(
        hostname in ident(),
        at in 0u64..100_000_000,
        load in 0.0f64..1.5,
        users in 0u32..500,
        services in proptest::collection::vec(
            (ident(), ident(), prop_oneof!(
                Just("running".to_string()),
                Just("refused".to_string()),
                Just("timeout".to_string()),
                Just("query-error".to_string()),
            )),
            0..6,
        ),
    ) {
        let dlsp = Dlsp {
            hostname,
            generated_at_secs: at,
            model: "Sun-E4500".into(),
            os: "Solaris".into(),
            cpus: 8,
            ram_gb: 8,
            // Quantise to the codec's 4-decimal float formatting.
            load_score: (load * 10_000.0).round() / 10_000.0,
            free_mem_mb: 1024.0,
            cpu_idle_pct: 50.0,
            users,
            location: "London".into(),
            site: "LDN".into(),
            services: services
                .into_iter()
                .map(|(name, version, status)| DlspService {
                    name,
                    app_type: "db-oracle".into(),
                    version,
                    status,
                    latency_ms: None,
                })
                .collect(),
        };
        let text = dlsp.to_doc().to_text();
        prop_assert_eq!(Dlsp::parse_text(&text).unwrap(), dlsp);
    }

    #[test]
    fn slkt_roundtrips(
        hostname in ident(),
        apps in proptest::collection::vec(
            (ident(), proptest::collection::vec((ident(), 1u32..9), 1..4)),
            0..4,
        ),
    ) {
        let slkt = Slkt {
            hostname,
            ip: "10.0.0.1".into(),
            hardware: SlktHardware { model: "Sun-E10000".into(), cpus: 32, ram_gb: 32, disks: 12 },
            apps: apps
                .into_iter()
                .map(|(name, processes)| SlktApp {
                    name,
                    app_type: "db-oracle".into(),
                    version: "8.1.7".into(),
                    binary_path: "/apps/db/bin".into(),
                    port: 1521,
                    processes,
                    startup_sequence: vec!["listener".into(), "instance".into()],
                    depends_on: vec![],
                    mounts: vec!["/apps".into()],
                    connect_timeout_secs: 30,
                })
                .collect(),
        };
        let text = slkt.to_doc().to_text();
        prop_assert_eq!(Slkt::parse_text(&text).unwrap(), slkt);
    }

    #[test]
    fn dgspl_roundtrips_and_shortlist_is_sorted(
        entries in proptest::collection::vec(
            (ident(), 0.0f64..1.5, 1u32..64, 1u32..64),
            0..20,
        )
    ) {
        let dgspl = Dgspl {
            generated_at_secs: 900,
            entries: entries
                .into_iter()
                .map(|(host, load, cpus, ram)| DgsplEntry {
                    hostname: host,
                    server_type: "Sun-E4500".into(),
                    os: "Solaris".into(),
                    ram_gb: ram,
                    cpus,
                    // Quantise to the codec's 4-decimal precision.
                    compute_power: (cpus as f64 * 0.9 * 10_000.0).round() / 10_000.0,
                    app_type: "db-oracle".into(),
                    version: "8.1.7".into(),
                    load: (load * 10_000.0).round() / 10_000.0,
                    users: 0,
                    location: "London".into(),
                    site: "LDN".into(),
                    service: "svc".into(),
                })
                .collect(),
        };
        let text = dgspl.to_doc().to_text();
        prop_assert_eq!(&Dgspl::parse_text(&text).unwrap(), &dgspl);
        // Shortlist invariant: "best choice always first" — load is
        // non-decreasing along the shortlist.
        let shortlist = dgspl.shortlist("db-oracle");
        for pair in shortlist.windows(2) {
            prop_assert!(pair[0].load <= pair[1].load + 1e-9);
        }
        // Replacement shortlist never includes under-powered hosts.
        for e in dgspl.replacement_shortlist("db-oracle", "Sun-E4500", 10.0, 16) {
            prop_assert!(e.compute_power >= 10.0 && e.ram_gb >= 16);
        }
    }

    #[test]
    fn constraints_roundtrip_and_relax_widens(
        vars in proptest::collection::vec((ident(), 0.0f64..1e6, 0.0f64..1e6), 1..10),
        factor in 1.01f64..3.0,
    ) {
        let mut store = ConstraintStore::new();
        for (name, a, b) in &vars {
            let (lo, hi) = if a <= b { (*a, *b) } else { (*b, *a) };
            // Quantise to survive the 4-decimal codec.
            let lo = (lo * 100.0).round() / 100.0;
            let hi = (hi * 100.0).round() / 100.0;
            store.set(name.clone(), Bounds::between(lo, hi));
        }
        let text = store.to_doc().to_text();
        let back = ConstraintStore::from_doc(&FlatDoc::parse_text(&text).unwrap()).unwrap();
        prop_assert_eq!(&back, &store);
        // Relaxing never tightens.
        let (name, _, _) = &vars[0];
        let before = store.get(name).unwrap();
        let after = store.relax(name, factor).unwrap();
        prop_assert!(after.max.unwrap() >= before.max.unwrap());
        prop_assert!(after.min.unwrap() <= before.min.unwrap());
    }
}
