//! The runtime half of the closed-world trace ontology: whole-scenario
//! smoke runs in both management modes, through both sinks (ring and
//! spill), asserting that every `(subsystem, code)` pair that actually
//! reaches a sink is declared in `TRACE_REGISTRY` — and that the
//! evidence store's operator-facing queries reject anything outside
//! that world instead of answering emptily. The static half lives in
//! qoslint's trace ontology rules; both consume the same registry.

use std::path::PathBuf;

use intelliqos::core::run_export_json;
use intelliqos::evdb::{Query, Store};
use intelliqos::prelude::*;
use intelliqos::simkern::trace::{read_spill_chunks, registry_lookup, SpillConfig, TraceOptions};

fn small(seed: u64, mode: ManagementMode) -> ScenarioConfig {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(7);
    cfg
}

fn tmp_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("intelliqos-ontology-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Ring sink, both modes: the full event stream a scenario retains is
/// inside the registry. A category that never got declared cannot even
/// be emitted (`Trace::emit` panics), so this asserts the sink side:
/// what was retained is exactly what was vocabulary-checked.
#[test]
fn every_ring_event_is_registered() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let mut world = World::build(small(23, mode)).enable_trace();
        let report = world.run_to_end();
        assert!(report.incidents > 0, "scenario must produce incidents");
        let events = world.trace.events();
        assert!(!events.is_empty(), "{mode:?}: trace must retain events");
        for ev in events {
            assert!(
                registry_lookup(ev.subsystem, ev.code).is_some(),
                "{mode:?}: unregistered category ({:?}, {:?}) reached the ring",
                ev.subsystem,
                ev.code
            );
        }
    }
}

/// Spill sink: every event read back from the chunk files — the
/// flight-recorder evidence later runs triage from — is registered.
#[test]
fn every_spilled_event_is_registered() {
    let dir = tmp_dir("spill");
    let opts = TraceOptions {
        spill: Some(SpillConfig::new(dir.clone())),
        ..TraceOptions::default()
    };
    let mut world = World::build(small(23, ManagementMode::Intelliagents)).enable_trace_with(opts);
    world.run_to_end();
    world.trace.flush().expect("spill flush");
    let (records, warnings) = read_spill_chunks(&dir).expect("spill readable");
    assert!(warnings.is_empty(), "{warnings:?}");
    assert!(!records.is_empty(), "spill must hold events");
    for rec in records {
        assert!(
            registry_lookup(rec.subsystem, &rec.code).is_some(),
            "unregistered category ({:?}, {:?}) reached the spill",
            rec.subsystem,
            rec.code
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The evidence store speaks the same vocabulary: real run evidence
/// ingests cleanly, a registered code query answers, and the CLI-side
/// validation rejects unknown categories (with a near-miss suggestion)
/// and unknown subsystem tags.
#[test]
fn evdb_queries_are_held_to_the_registry() {
    let dir = tmp_dir("evdb");
    let evidence = dir.join("evidence");
    std::fs::create_dir_all(&evidence).expect("mkdir");
    let mut world = World::build(small(23, ManagementMode::Intelliagents)).enable_trace();
    world.run_to_end();
    std::fs::write(evidence.join("smoke.json"), run_export_json(&world)).expect("export");

    let store_dir = dir.join("store");
    Store::build(&evidence, &store_dir).expect("ingest");
    let store = Store::open(&store_dir).expect("open");

    let q = Query {
        category: Some("inject".to_string()),
        ..Query::default()
    };
    q.validate().expect("registered code is accepted");
    let (recs, _) = store.query(&q).expect("query");
    assert!(!recs.is_empty(), "fault injections must be queryable");

    let q = Query {
        subsystem: Some("fault".to_string()),
        ..Query::default()
    };
    q.validate().expect("registered tag is accepted");
    let (by_sub, _) = store.query(&q).expect("query");
    assert!(by_sub.len() >= recs.len(), "subsystem is the wider filter");

    let typo = Query {
        category: Some("db-carsh".to_string()),
        ..Query::default()
    };
    let err = typo.validate().expect_err("typo must be rejected");
    assert!(err.contains("db-crash"), "suggests the near miss: {err}");

    let bad_tag = Query {
        subsystem: Some("faults".to_string()),
        ..Query::default()
    };
    assert!(bad_tag.validate().is_err(), "unknown tag must be rejected");
    let _ = std::fs::remove_dir_all(&dir);
}
