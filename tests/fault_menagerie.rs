//! The full fault menagerie, end-to-end: inject each mechanism into a
//! live world and verify the agent layer detects, heals (or escalates),
//! and accounts it under the right Figure 2 category.
//!
//! These tests drive the public `World` API only: they disable the
//! random exogenous tape (zero rates) so each test owns its fault.

use intelliqos::cluster::{FaultCategory, FaultRates};
use intelliqos::core::World;
use intelliqos::prelude::*;
use intelliqos_cluster::hardware::{ComponentHealth, HardwareComponent};
use intelliqos_cluster::ids::ServerId;
use intelliqos_simkern::{SimDuration, SimTime};

/// A quiet world: no exogenous faults, light workload, agents on.
fn quiet_world(seed: u64) -> World {
    let mut cfg = ScenarioConfig::small(seed, ManagementMode::Intelliagents);
    cfg.horizon = SimDuration::from_days(3);
    cfg.fault_rates = FaultRates {
        human_per_year: 0.0,
        performance_per_year: 0.0,
        front_end_per_year: 0.0,
        lsf_per_year: 0.0,
        firewall_network_per_year: 0.0,
        service_unavailable_per_year: 0.0,
        hardware_per_year: 0.0,
        latent_fraction: 0.0,
        complex_fraction: 0.0,
    };
    cfg.workload.day_rate_per_hour = 0.5;
    cfg.workload.night_rate_per_hour = 0.5;
    cfg.workload.weekend_rate_per_hour = 0.5;
    let mut w = World::build(cfg);
    // Let everything come up.
    w.run_until(SimTime::from_hours(1));
    w
}

#[test]
fn crashed_database_is_restarted_within_one_sweep_plus_recovery() {
    let mut w = quiet_world(1);
    let db_server = ServerId(0);
    let svc = w.registry.ids_on_server(db_server)[0];
    {
        let server = w.servers.get_mut(&db_server).unwrap();
        w.registry.get_mut(svc).unwrap().crash(server);
    }
    let crash_time = w.now();
    w.run_until(crash_time + SimDuration::from_hours(2));
    assert!(
        w.registry.get(svc).unwrap().status.is_serving(),
        "database not restarted: {:?}",
        w.registry.get(svc).unwrap().status
    );
    // Restart count incremented (initial start + agent restart).
    assert!(w.registry.get(svc).unwrap().restarts >= 2);
}

#[test]
fn hung_front_end_is_bounced() {
    let mut w = quiet_world(2);
    // Find a front-end service.
    let fe = w
        .registry
        .iter()
        .find(|s| s.spec.kind == ServiceKind::FrontEnd)
        .map(|s| s.id)
        .expect("front end deployed");
    w.registry.get_mut(fe).unwrap().hang();
    let t = w.now();
    w.run_until(t + SimDuration::from_mins(30));
    assert!(w.registry.get(fe).unwrap().status.is_serving());
}

#[test]
fn degraded_cpu_is_offlined_proactively() {
    let mut w = quiet_world(3);
    let sid = ServerId(1);
    w.servers.get_mut(&sid).unwrap().set_component_health(
        HardwareComponent::Cpu,
        0,
        ComponentHealth::Degraded,
    );
    let t = w.now();
    w.run_until(t + SimDuration::from_mins(15));
    let server = &w.servers[&sid];
    assert_eq!(
        server.degraded_count(HardwareComponent::Cpu),
        0,
        "CPU still degraded"
    );
    assert_eq!(
        server.failed_count(HardwareComponent::Cpu),
        1,
        "CPU not offlined"
    );
    assert!(server.effective_spec().cpus < server.spec.cpus);
}

#[test]
fn runaway_process_is_killed_by_os_agent() {
    let mut w = quiet_world(4);
    let sid = ServerId(2);
    {
        let server = w.servers.get_mut(&sid).unwrap();
        let cap = server.effective_spec().compute_power();
        server.procs.spawn(
            "runaway",
            "spin",
            "app",
            cap * 1.3,
            64.0,
            0.0,
            SimTime::from_hours(1),
        );
    }
    let t = w.now();
    w.run_until(t + SimDuration::from_mins(15));
    assert_eq!(w.servers[&sid].procs.live_count("runaway"), 0);
}

#[test]
fn private_network_outage_reroutes_agent_traffic() {
    let mut w = quiet_world(5);
    let private = w
        .fabric
        .segments_of(intelliqos::cluster::SegmentKind::PrivateAgent)[0];
    w.fabric.set_segment_up(private, false);
    let t = w.now();
    // DLSPs keep flowing (over the public LAN) — the DGSPL stays fresh.
    w.run_until(t + SimDuration::from_hours(1));
    let dgspl = w.admin.last_dgspl.as_ref().expect("DGSPL still generated");
    assert!(
        w.now().as_secs() - dgspl.generated_at_secs <= 2 * 15 * 60,
        "DGSPL stale during private-LAN outage"
    );
    // Public segments carried the traffic.
    let public_util: f64 = w
        .fabric
        .segments_of(intelliqos::cluster::SegmentKind::Public)
        .iter()
        .map(|&s| w.fabric.segment(s).unwrap().mean_utilization())
        .sum();
    assert!(public_util > 0.0);
}

#[test]
fn lsf_master_crash_stops_dispatch_until_agent_restart() {
    let mut w = quiet_world(6);
    let master = w
        .registry
        .iter()
        .find(|s| s.spec.kind == ServiceKind::LsfMaster)
        .map(|s| (s.id, s.server))
        .expect("master deployed");
    {
        let server = w.servers.get_mut(&master.1).unwrap();
        w.registry.get_mut(master.0).unwrap().crash(server);
    }
    w.lsf.master_up = false;
    let t = w.now();
    w.run_until(t + SimDuration::from_mins(30));
    // Agent restarted the master and the world resynced the flag.
    assert!(w.registry.get(master.0).unwrap().status.is_serving());
    assert!(w.lsf.master_up);
}

#[test]
fn whole_run_accounts_under_correct_categories() {
    // Use the ordinary faulty world and check category consistency: no
    // incident lands in MidJobDbCrash unless db crashes happened, etc.
    let mut cfg = ScenarioConfig::small(7, ManagementMode::Intelliagents);
    cfg.horizon = SimDuration::from_days(21);
    let report = run_scenario(cfg);
    let mid = report.categories.get(&FaultCategory::MidJobDbCrash);
    if let Some(t) = mid {
        assert!(report.db_crashes >= t.incidents);
    }
    // Downtime rows cover all eight categories, Figure 2 order.
    assert_eq!(report.downtime_hours.len(), 8);
    assert_eq!(report.downtime_hours[0].0, FaultCategory::MidJobDbCrash);
    assert_eq!(report.downtime_hours[7].0, FaultCategory::Hardware);
}
