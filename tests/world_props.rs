//! Property tests over the world loop: random scenario shapes (seed,
//! management mode, horizon) must all settle cleanly.
//!
//! Each trial builds a small site with a freshly generated fault tape,
//! runs past the horizon by a grace window long enough for the slowest
//! human pipeline (weekend detection ~25 h, latent escalation, paging,
//! complex multi-expert repair ~4 h — days, not weeks), and asserts the
//! two ledger invariants that every figure in the paper rests on:
//!
//! * no incident violates its injected → detected → diagnosed →
//!   repaired/escalated lifecycle (including the attempt-history
//!   ordering rules), and
//! * no incident leaks: everything opened during the horizon is closed
//!   once the grace window has elapsed.

mod common;

use common::cases;
use intelliqos_core::{ManagementMode, ScenarioConfig, World};
use intelliqos_simkern::{SimDuration, SimTime};

/// Grace past the horizon for pending human pipelines to finish. The
/// worst case is a latent weekend fault (~25 h detection) plus
/// escalation, paging, and a complex repair — under three days; a week
/// leaves margin for pile-ups.
const GRACE: SimDuration = SimDuration::from_days(7);

#[test]
fn random_fault_tapes_settle_without_violations_or_leaks() {
    cases(8, |g| {
        let seed = g.u64_in(0, 1 << 40);
        let mode = *g.choose(&[ManagementMode::ManualOps, ManagementMode::Intelliagents]);
        let days = g.u64_in(2, 6);
        let mut cfg = ScenarioConfig::small(seed, mode);
        cfg.horizon = SimDuration::from_days(days);
        let horizon = SimTime::ZERO + cfg.horizon;

        let mut world = World::build(cfg);
        world.run_until(horizon + GRACE);

        let violations = world.ledger.lifecycle_violations();
        assert!(
            violations.is_empty(),
            "seed={seed} mode={mode:?} days={days}: {violations:?}"
        );
        let open = world.ledger.open_incidents();
        assert!(
            open.is_empty(),
            "seed={seed} mode={mode:?} days={days}: {} incidents still open \
             {GRACE:?} past the horizon: {:?}",
            open.len(),
            open.iter().map(|i| i.id).collect::<Vec<_>>()
        );
        // Closed incidents all carry a non-empty attempt history ending
        // in the resolving attempt.
        for inc in world.ledger.incidents() {
            assert!(
                inc.attempts().last().is_some_and(|a| a.resolved),
                "seed={seed}: {} closed without a resolving attempt",
                inc.id
            );
        }
    });
}
