//! # intelliqos
//!
//! A production-quality Rust reproduction of **Corsava & Getov,
//! "Improving Quality of Service in Application Clusters" (IPDPS 2003)**:
//! a self-healing, intelligent-agent QoS-management layer for Unix
//! application clusters, together with every substrate the paper's
//! evaluation depends on — a deterministic datacenter simulator
//! (servers, OS metrics, processes, filesystems, networks), service
//! state machines with health probes, an LSF-like batch scheduler,
//! flat-ASCII ontologies (ISSL/DLSP/SLKT/DGSPL) with a causal rule
//! engine, telemetry collection, and the BMC-Patrol-like notify-only
//! baseline with a manual-operations repair model.
//!
//! ## Quickstart
//!
//! Run the paper's headline experiment — one simulated year of the
//! customer's financial datacenter, before and after deploying
//! intelliagents — at reduced scale:
//!
//! ```
//! use intelliqos::prelude::*;
//!
//! let before = run_scenario(ScenarioConfig::small(42, ManagementMode::ManualOps));
//! let after = run_scenario(ScenarioConfig::small(42, ManagementMode::Intelliagents));
//! // The fault/workload tapes are identical (same seed); only the
//! // management layer differs — and it wins decisively.
//! assert!(before.total_downtime_hours > after.total_downtime_hours * 2.0);
//! ```
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`simkern`] | discrete-event kernel: time, events, RNG streams, stats |
//! | [`cluster`] | servers, hardware, OS observables, fs, cron, networks, faults |
//! | [`services`] | service specs/state machines, probes, registry, distributed apps |
//! | [`lsf`] | batch jobs, queues, selection policies, crash hazard, workload |
//! | [`ontology`] | ISSL/DLSP/SLKT/DGSPL, flat-ASCII codec, constraints, rules |
//! | [`telemetry`] | metric groups, collectors, circular logs, reports, footprints |
//! | [`baseline`] | BMC-Patrol-like monitor + human detection/repair models |
//! | [`core`] | the intelliagents themselves, admin servers, scenarios, the world |
//! | [`evdb`] | indexed evidence store: queryable incidents, traces, SLO samples |

#![warn(missing_docs)]

pub use intelliqos_baseline as baseline;
pub use intelliqos_cluster as cluster;
pub use intelliqos_core as core;
pub use intelliqos_evdb as evdb;
pub use intelliqos_lsf as lsf;
pub use intelliqos_ontology as ontology;
pub use intelliqos_services as services;
pub use intelliqos_simkern as simkern;
pub use intelliqos_telemetry as telemetry;

/// The names most programs need.
pub mod prelude {
    pub use intelliqos_baseline::{
        HumanDetectionModel, ManualRepairModel, ResidentMonitorFootprint,
    };
    pub use intelliqos_cluster::{
        FaultCategory, FaultMechanism, FaultRates, HardwareSpec, Server, ServerId, ServerModel,
    };
    pub use intelliqos_core::{
        run_scenario, AgentKind, AgentParts, ManagementMode, ReschedPolicy, ScenarioConfig,
        ScenarioReport, World,
    };
    pub use intelliqos_lsf::{JobKind, JobSpec, LsfCluster, WorkloadConfig};
    pub use intelliqos_ontology::{Dgspl, Dlsp, FactBase, Issl, RuleEngine, Slkt};
    pub use intelliqos_services::{DbEngine, ServiceKind, ServiceRegistry, ServiceSpec};
    pub use intelliqos_simkern::{SimDuration, SimRng, SimTime};
    pub use intelliqos_telemetry::{AgentFootprint, MetricGroup, PerfCollector};
}
