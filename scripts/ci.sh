#!/usr/bin/env bash
# The full local gate: formatting, lints as errors, build, tests.
# Run before every push; CI runs exactly this.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== qoslint (determinism lint, findings are errors)"
cargo run -q --release -p intelliqos-qoslint --bin qoslint

echo "== qoslint self-test (seeded-bad fixtures must fail the gate)"
if cargo run -q --release -p intelliqos-qoslint --bin qoslint crates/qoslint/fixtures/bad > /dev/null; then
    echo "qoslint self-test FAILED: bad fixtures scanned clean" >&2
    exit 1
fi

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== evidence smoke (fig2_downtime --profile --trace, ontology_check)"
rm -rf results/evidence
./target/release/fig2_downtime --seed 11 --days 2 --profile --trace > /dev/null
test -s results/evidence/fig2_downtime_manual.json
test -s results/evidence/fig2_downtime_agents.json
test -s results/evidence/fig2_downtime_manual_slo.json
test -s results/evidence/fig2_downtime_agents_slo.json
./target/release/ontology_check
test -s results/evidence/ontology_check_site.json
./target/release/evidence_check

echo "== flight-recorder smoke (traced spill run, validated)"
./target/release/fig2_downtime --seed 11 --days 2 --profile --trace-file results/evidence/fig2_spill > /dev/null
test -s results/evidence/fig2_spill/manualops/manifest.json
test -s results/evidence/fig2_spill/intelliagents/manifest.json
./target/release/evidence_check results/evidence/fig2_spill

echo "== triage --incident smoke (correlated timeline renders)"
# Plain grep (not -q) so the reader drains triage's full output; -q would
# close the pipe early and kill the writer with SIGPIPE.
./target/release/triage --incident 0 --seed 11 --days 3 | grep "timeline" > /dev/null

echo "CI gate passed."
