#!/usr/bin/env bash
# The full local gate: formatting, lints as errors, build, tests.
# Run before every push; CI runs exactly this.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== evidence smoke (fig2_downtime --profile --trace)"
rm -rf results/evidence
./target/release/fig2_downtime --seed 11 --days 2 --profile --trace > /dev/null
test -s results/evidence/fig2_downtime_manual.json
test -s results/evidence/fig2_downtime_agents.json
./target/release/evidence_check

echo "CI gate passed."
