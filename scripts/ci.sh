#!/usr/bin/env bash
# The full local gate: formatting, lints as errors, build, tests.
# Run before every push; CI runs exactly this.
#
#   scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== qoslint (workspace scan, findings beyond the committed baseline are errors)"
cargo run -q --release -p intelliqos-qoslint --bin qoslint -- \
    --workspace --format json --diff-baseline crates/qoslint/baseline.json

echo "== qoslint self-test (seeded-bad fixtures must fail the gate)"
# One bad fixture per rule — token rules and the item-graph analyses
# (trace ontology, lifecycle order, flow-aware unordered iteration).
if cargo run -q --release -p intelliqos-qoslint --bin qoslint crates/qoslint/fixtures/bad > /dev/null; then
    echo "qoslint self-test FAILED: bad fixtures scanned clean" >&2
    exit 1
fi
cargo run -q --release -p intelliqos-qoslint --bin qoslint crates/qoslint/fixtures/clean \
    crates/qoslint/fixtures/suppressed > /dev/null

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test -q --workspace

echo "== evidence smoke (fig2_downtime --profile --trace, ontology_check)"
rm -rf results/evidence
# The committed results/BENCH_fig2.json comes from a 30-day profile
# run (both failure classes populated); the 2-day smoke writes its own
# copy, which is checked below and then the committed one is restored.
cp results/BENCH_fig2.json target/BENCH_fig2.committed
./target/release/fig2_downtime --seed 11 --days 2 --profile --trace > /dev/null
test -s results/evidence/fig2_downtime_manual.json
test -s results/evidence/fig2_downtime_agents.json
test -s results/evidence/fig2_downtime_manual_slo.json
test -s results/evidence/fig2_downtime_agents_slo.json
test -s results/BENCH_fig2.json
# Taxonomy-era exports: every incident classified, per-scope SLO
# columns close (all == service + client + abort) — evidence_check
# enforces both.
grep '"taxonomy": 1' results/evidence/fig2_downtime_manual.json > /dev/null
grep '"burn_scope": "service"' results/evidence/fig2_downtime_manual_slo.json > /dev/null
./target/release/ontology_check
test -s results/evidence/ontology_check_site.json
./target/release/evidence_check

echo "== flight-recorder smoke (traced spill run, validated)"
./target/release/fig2_downtime --seed 11 --days 2 --profile --trace-file results/evidence/fig2_spill > /dev/null
test -s results/evidence/fig2_spill/manualops/manifest.json
test -s results/evidence/fig2_spill/intelliagents/manifest.json
./target/release/evidence_check results/evidence/fig2_spill
mv target/BENCH_fig2.committed results/BENCH_fig2.json

echo "== triage --incident smoke (correlated timeline renders)"
# Plain grep (not -q) so the reader drains triage's full output; -q would
# close the pipe early and kill the writer with SIGPIPE.
./target/release/triage --incident 0 --seed 11 --days 3 | grep "timeline" > /dev/null

echo "== evdb smoke (ingest, one query per index, report, diff)"
rm -rf results/evdb
./target/release/evdb ingest results/evidence --store results/evdb
test -s results/evdb/manifest.json
# One query per secondary index; each must answer without touching the
# raw evidence (source_files_read stays 0 in the query report).
./target/release/evdb query --store results/evdb --corr 0 --stats > /dev/null
./target/release/evdb query --store results/evdb --service db003 --stats > /dev/null
./target/release/evdb query --store results/evdb --category inject --stats > /dev/null
./target/release/evdb query --store results/evdb --subsystem fault --stats > /dev/null
./target/release/evdb query --store results/evdb --run fig2_downtime_manual --stats > /dev/null
./target/release/evdb query --store results/evdb --window 0..86400 --stats > /dev/null
grep '"source_files_read": 0' results/evdb/query_report.json > /dev/null
# Closed-world rejection: a typo'd category must error, not answer emptily.
if ./target/release/evdb query --store results/evdb --category db-carsh > /dev/null 2>&1; then
    echo "evdb closed-world FAILED: typo'd category was accepted" >&2
    exit 1
fi
./target/release/evdb diff fig2_downtime_manual fig2_downtime_agents --store results/evdb > /dev/null

echo "== evdb failure-class round-trip (index == scan, typo'd class rejected)"
# The 2-day fig2 smoke horizon sits before the first injected fault,
# so these class queries must answer byte-identically *empty*; the
# 3-day triage evidence below repeats the round-trip with real rows.
./target/release/evdb query --store results/evdb --class service-fault --stats > target/evdb_class_store.out
./target/release/evdb query --scan results/evidence --class service-fault > target/evdb_class_scan.out
diff target/evdb_class_store.out target/evdb_class_scan.out
./target/release/evdb query --store results/evdb --actionable false --stats > /dev/null
grep '"source_files_read": 0' results/evdb/query_report.json > /dev/null
if ./target/release/evdb query --store results/evdb --class servce-fault > /dev/null 2>&1; then
    echo "evdb closed-world FAILED: typo'd failure class was accepted" >&2
    exit 1
fi

echo "== evdb incremental re-ingest (nothing re-parses, bytes unchanged)"
cp results/evdb/manifest.json target/evdb_manifest.before
./target/release/evdb ingest results/evidence --store results/evdb | grep -E "\(0 parsed, [0-9]+ reused" > /dev/null
diff results/evdb/manifest.json target/evdb_manifest.before

echo "== indexed triage byte-identity (evdb answer == linear scan answer)"
# The plain triage run exports two full run ledgers (small config, 3
# days — the horizon where incident 0 exists) under target/triage/;
# both evidence backends must answer --incident 0 byte-identically.
# Running it with --scope service also smokes the burn-scope toggle:
# the observatory must report the configured scope and its scoped vs
# all-class downtime split.
./target/release/triage --seed 11 --days 3 --scope service > target/triage_scope.out
grep "burn scope service" target/triage_scope.out > /dev/null
grep "scope service: downtime" target/triage_scope.out > /dev/null
rm -rf target/triage_evdb
./target/release/evdb ingest target/triage --store target/triage_evdb > /dev/null
./target/release/triage --incident 0 --evdb target/triage_evdb > target/triage_evdb.out 2> /dev/null
./target/release/triage --incident 0 --evidence target/triage > target/triage_scan.out 2> /dev/null
diff target/triage_evdb.out target/triage_scan.out
grep "timeline" target/triage_evdb.out > /dev/null
# Failure-class round-trip over evidence that actually has incidents:
# the indexed answer must match the linear scan byte for byte AND be
# non-empty (every 3-day incident is a classified row).
./target/release/evdb query --store target/triage_evdb --class client-workload --stats > target/evdb_class_store2.out
./target/release/evdb query --scan target/triage --class client-workload > target/evdb_class_scan2.out
diff target/evdb_class_store2.out target/evdb_class_scan2.out
grep "class=client-workload" target/evdb_class_store2.out > /dev/null
grep '"source_files_read": 0' target/triage_evdb/query_report.json > /dev/null

echo "== evidence_check --evdb (store validates against its sources)"
./target/release/evidence_check --evdb results/evdb > /dev/null

echo "CI gate passed."
