#!/usr/bin/env bash
# Paired-run triage: run the same scenario under ManualOps and
# Intelliagents with structured tracing and the profiler on, check the
# paired-run invariant (identical fault/workload tapes), the replay
# determinism of the handler streams, and the incident-ledger
# lifecycle; print the per-subsystem time-share profile; and export
# ledger+trace+profile JSON for both runs.
#
#   scripts/triage.sh [--seed N] [--days N]
#
# Exits non-zero if the tapes diverge, a replay diverges mid-run, or
# any incident record is lifecycle-incomplete. JSON output lands in
# target/triage/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p intelliqos-bench --bin triage
./target/release/triage "$@"

echo
echo "JSON exports:"
ls -l target/triage/*.json
