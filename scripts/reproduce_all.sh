#!/usr/bin/env bash
# Regenerate every figure/table of the paper's evaluation into results/.
#
# Full fidelity (year-long runs, ~1 CPU-hour on one core):
#   scripts/reproduce_all.sh --full
# Quick pass (default horizons, minutes):
#   scripts/reproduce_all.sh
set -euo pipefail
cd "$(dirname "$0")/.."

EXTRA=()
if [[ "${1:-}" == "--full" ]]; then
    EXTRA=(--full)
fi

cargo build --release --workspace
mkdir -p results

run() {
    local bin="$1"; shift
    echo "== $bin $*"
    "./target/release/$bin" "$@" | tee "results/$bin.txt"
}

run fig2_downtime "${EXTRA[@]}"
run fig3_cpu_overhead
run fig4_mem_overhead
run tbl_detection_latency "${EXTRA[@]}"
run tbl_mttr "${EXTRA[@]}"
run tbl_reschedule_policy "${EXTRA[@]}"
run abl_frequency_sweep "${EXTRA[@]}"
run abl_private_network
run abl_agent_parts "${EXTRA[@]}"

echo "all results under results/"
