//! # intelliqos-cluster
//!
//! The datacenter substrate for the `intelliqos` reproduction of Corsava
//! & Getov (IPDPS 2003): simulated Unix servers with hardware models,
//! OS-metric dynamics, process tables with microstate accounting,
//! capacity-limited filesystems, cron, the private-agent/public network
//! fabric, and the exogenous fault injector.
//!
//! Intelliagents (in `intelliqos-core`) only ever interact with this
//! substrate the way the paper's shell agents interacted with real
//! machines: by reading tool observables ([`os::OsObservables`]),
//! listing process tables, reading/writing ASCII files, and sending
//! traffic over the fabric.

#![warn(missing_docs)]

pub mod cron;
pub mod faults;
pub mod fs;
pub mod hardware;
pub mod ids;
pub mod net;
pub mod os;
pub mod process;
pub mod server;

pub use cron::{CronEntry, Crontab};
pub use faults::{
    Complexity, FaultCategory, FaultEvent, FaultInjector, FaultMechanism, FaultRates, TargetClass,
};
pub use fs::{FsError, SimFile, SimFs};
pub use hardware::{ComponentHealth, HardwareComponent, HardwareSpec, OsKind, ServerModel};
pub use ids::{DiskId, IpAddr, NicId, Pid, SegmentId, ServerId, Site};
pub use net::{Delivery, Fabric, NetError, Segment, SegmentKind, FAST_ETHERNET_BPS};
pub use os::{LoadVector, OsObservables, OS_BASELINE_MEM_GB};
pub use process::{Microstates, ProcState, Process, ProcessTable};
pub use server::{Server, ServerState, REBOOT_DURATION};
