//! Simulated Unix filesystem.
//!
//! Everything the paper's agents persist is "flat ASCII files generated
//! by I/O Unix pipes": flags in `/logs/intelliagents/<agent>`, circular
//! measurement logs, ontology files, application error logs. This module
//! provides a per-server filesystem of line-oriented ASCII files under
//! mount points with finite capacity — so a full `/logs` filesystem is a
//! *real* fault the resource agents must detect (from a failed write)
//! and heal (by rotating old logs).

use std::collections::BTreeMap;

use intelliqos_simkern::SimTime;

/// Errors from filesystem operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No mount point covers the path.
    NoSuchMount(String),
    /// The covering filesystem has no space left.
    NoSpace(String),
    /// The path does not exist.
    NotFound(String),
    /// The covering filesystem is not mounted (e.g. NFS server down).
    NotMounted(String),
}

impl std::fmt::Display for FsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsError::NoSuchMount(p) => write!(f, "no filesystem covers {p}"),
            FsError::NoSpace(p) => write!(f, "no space left on device: {p}"),
            FsError::NotFound(p) => write!(f, "no such file: {p}"),
            FsError::NotMounted(p) => write!(f, "filesystem not mounted: {p}"),
        }
    }
}

impl std::error::Error for FsError {}

/// One ASCII file.
#[derive(Debug, Clone)]
pub struct SimFile {
    /// File body as lines (no trailing newlines stored).
    pub lines: Vec<String>,
    /// Creation time.
    pub created_at: SimTime,
    /// Last modification time.
    pub modified_at: SimTime,
}

impl SimFile {
    /// Total size in bytes (each line plus one newline).
    pub fn size_bytes(&self) -> u64 {
        self.lines.iter().map(|l| l.len() as u64 + 1).sum()
    }
}

/// A mounted filesystem with finite capacity.
#[derive(Debug, Clone)]
struct Mount {
    capacity_bytes: u64,
    used_bytes: u64,
    mounted: bool,
}

/// A per-server tree of ASCII files under capacity-limited mounts.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    /// Mount point path → mount state. Longest-prefix match wins.
    mounts: BTreeMap<String, Mount>,
    files: BTreeMap<String, SimFile>,
}

impl SimFs {
    /// Empty filesystem with no mounts.
    pub fn new() -> Self {
        SimFs::default()
    }

    /// A filesystem with the standard layout the paper assumes:
    /// `/` (2 GB), `/apps` (4 GB, agent binaries live in
    /// `/apps/intelliagents`), `/logs` (1 GB, flags and measurements).
    pub fn with_standard_layout() -> Self {
        let mut fs = SimFs::new();
        fs.add_mount("/", 2 * 1024 * 1024 * 1024);
        fs.add_mount("/apps", 4 * 1024 * 1024 * 1024);
        fs.add_mount("/logs", 1024 * 1024 * 1024);
        fs
    }

    /// Register a mount point with the given capacity.
    pub fn add_mount(&mut self, path: impl Into<String>, capacity_bytes: u64) {
        self.mounts.insert(
            normalize(path.into()),
            Mount {
                capacity_bytes,
                used_bytes: 0,
                mounted: true,
            },
        );
    }

    /// Unmount (NFS outage, device failure). Files are preserved but
    /// inaccessible until remounted.
    pub fn set_mounted(&mut self, mount: &str, mounted: bool) -> bool {
        if let Some(m) = self.mounts.get_mut(&normalize(mount.to_string())) {
            m.mounted = mounted;
            true
        } else {
            false
        }
    }

    /// Is the given mount point currently mounted?
    pub fn is_mounted(&self, mount: &str) -> bool {
        self.mounts
            .get(&normalize(mount.to_string()))
            .map(|m| m.mounted)
            .unwrap_or(false)
    }

    /// Find the longest mount-point prefix covering `path`.
    fn mount_for(&self, path: &str) -> Option<(&str, &Mount)> {
        self.mounts
            .iter()
            .filter(|(mp, _)| covers(mp, path))
            .max_by_key(|(mp, _)| mp.len())
            .map(|(mp, m)| (mp.as_str(), m))
    }

    fn mount_for_mut(&mut self, path: &str) -> Option<(String, &mut Mount)> {
        let key = self
            .mounts
            .keys()
            .filter(|mp| covers(mp, path))
            .max_by_key(|mp| mp.len())
            .cloned()?;
        let m = self.mounts.get_mut(&key)?;
        Some((key, m))
    }

    /// Usage fraction (0–1) of the filesystem covering `path`.
    pub fn usage_fraction(&self, path: &str) -> Option<f64> {
        self.mount_for(path)
            .map(|(_, m)| m.used_bytes as f64 / m.capacity_bytes.max(1) as f64)
    }

    /// Create or truncate a file with the given lines.
    pub fn write(
        &mut self,
        path: impl Into<String>,
        lines: Vec<String>,
        now: SimTime,
    ) -> Result<(), FsError> {
        let path = normalize(path.into());
        let new_size: u64 = lines.iter().map(|l| l.len() as u64 + 1).sum();
        let old_size = self.files.get(&path).map(|f| f.size_bytes()).unwrap_or(0);
        let (_, mount) = self
            .mount_for_mut(&path)
            .ok_or_else(|| FsError::NoSuchMount(path.clone()))?;
        if !mount.mounted {
            return Err(FsError::NotMounted(path));
        }
        let projected = mount.used_bytes - old_size + new_size;
        if projected > mount.capacity_bytes {
            return Err(FsError::NoSpace(path));
        }
        mount.used_bytes = projected;
        let created_at = self.files.get(&path).map(|f| f.created_at).unwrap_or(now);
        self.files.insert(
            path,
            SimFile {
                lines,
                created_at,
                modified_at: now,
            },
        );
        Ok(())
    }

    /// Append one line to a file, creating it if missing.
    pub fn append(
        &mut self,
        path: impl Into<String>,
        line: impl Into<String>,
        now: SimTime,
    ) -> Result<(), FsError> {
        let path = normalize(path.into());
        let line = line.into();
        let add = line.len() as u64 + 1;
        let (_, mount) = self
            .mount_for_mut(&path)
            .ok_or_else(|| FsError::NoSuchMount(path.clone()))?;
        if !mount.mounted {
            return Err(FsError::NotMounted(path));
        }
        if mount.used_bytes + add > mount.capacity_bytes {
            return Err(FsError::NoSpace(path));
        }
        mount.used_bytes += add;
        let entry = self.files.entry(path).or_insert_with(|| SimFile {
            lines: Vec::new(),
            created_at: now,
            modified_at: now,
        });
        entry.lines.push(line);
        entry.modified_at = now;
        Ok(())
    }

    /// Read a file.
    pub fn read(&self, path: &str) -> Result<&SimFile, FsError> {
        let path = normalize(path.to_string());
        if let Some((_, m)) = self.mount_for(&path) {
            if !m.mounted {
                return Err(FsError::NotMounted(path));
            }
        }
        self.files.get(&path).ok_or(FsError::NotFound(path))
    }

    /// Does the path exist (and its filesystem is mounted)?
    pub fn exists(&self, path: &str) -> bool {
        self.read(path).is_ok()
    }

    /// Remove a file, freeing its space. Returns the removed file.
    pub fn remove(&mut self, path: &str) -> Result<SimFile, FsError> {
        let path = normalize(path.to_string());
        let file = self
            .files
            .remove(&path)
            .ok_or_else(|| FsError::NotFound(path.clone()))?;
        if let Some((_, m)) = self.mount_for_mut(&path) {
            m.used_bytes = m.used_bytes.saturating_sub(file.size_bytes());
        }
        Ok(file)
    }

    /// List paths under a directory prefix (recursive), sorted.
    pub fn list(&self, dir: &str) -> Vec<&str> {
        let dir = normalize(dir.to_string());
        self.files
            .keys()
            .filter(|p| covers(&dir, p))
            .map(|s| s.as_str())
            .collect()
    }

    /// Remove every file under a directory prefix; returns the count.
    /// This is the agents' self-maintenance "remove flags from previous
    /// runs and old local dynamic service profiles".
    pub fn remove_dir(&mut self, dir: &str) -> usize {
        let paths: Vec<String> = self.list(dir).iter().map(|s| s.to_string()).collect();
        for p in &paths {
            let _ = self.remove(p);
        }
        paths.len()
    }

    /// Total bytes used on the filesystem covering `path`.
    pub fn used_bytes(&self, path: &str) -> Option<u64> {
        self.mount_for(path).map(|(_, m)| m.used_bytes)
    }
}

/// Normalise: ensure a single leading slash, strip any trailing slash
/// (except for the root itself).
fn normalize(mut p: String) -> String {
    if !p.starts_with('/') {
        p.insert(0, '/');
    }
    while p.len() > 1 && p.ends_with('/') {
        p.pop();
    }
    p
}

/// Does directory/mount `prefix` cover `path`? (Allocation-free: this
/// sits on the hot path of every agent flag write.)
fn covers(prefix: &str, path: &str) -> bool {
    if prefix == "/" {
        return true;
    }
    match path.strip_prefix(prefix) {
        Some("") => true,
        Some(rest) => rest.starts_with('/'),
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t0() -> SimTime {
        SimTime::ZERO
    }

    #[test]
    fn write_read_roundtrip() {
        let mut fs = SimFs::with_standard_layout();
        fs.write("/logs/a.log", vec!["one".into(), "two".into()], t0())
            .unwrap();
        let f = fs.read("/logs/a.log").unwrap();
        assert_eq!(f.lines, vec!["one", "two"]);
        assert_eq!(f.size_bytes(), 8);
    }

    #[test]
    fn append_creates_and_grows() {
        let mut fs = SimFs::with_standard_layout();
        fs.append("/logs/x", "hello", t0()).unwrap();
        fs.append("/logs/x", "world", SimTime::from_secs(5))
            .unwrap();
        let f = fs.read("/logs/x").unwrap();
        assert_eq!(f.lines.len(), 2);
        assert_eq!(f.created_at, t0());
        assert_eq!(f.modified_at, SimTime::from_secs(5));
    }

    #[test]
    fn longest_prefix_mount_wins() {
        let mut fs = SimFs::new();
        fs.add_mount("/", 1000);
        fs.add_mount("/logs", 10);
        // A 20-byte file fits on / but not /logs.
        let big = vec!["x".repeat(19)];
        assert!(matches!(
            fs.write("/logs/big", big.clone(), t0()),
            Err(FsError::NoSpace(_))
        ));
        fs.write("/big", big, t0()).unwrap();
    }

    #[test]
    fn no_mount_is_an_error() {
        let mut fs = SimFs::new();
        assert!(matches!(
            fs.write("/x", vec![], t0()),
            Err(FsError::NoSuchMount(_))
        ));
    }

    #[test]
    fn disk_full_then_rotation_frees_space() {
        let mut fs = SimFs::new();
        fs.add_mount("/logs", 30);
        fs.append("/logs/old", "x".repeat(19), t0()).unwrap(); // 20 bytes
        assert!(matches!(
            fs.append("/logs/new", "y".repeat(19), t0()),
            Err(FsError::NoSpace(_))
        ));
        // The resource agent's repair: rotate (remove) old logs.
        fs.remove("/logs/old").unwrap();
        fs.append("/logs/new", "y".repeat(19), t0()).unwrap();
        assert!(fs.exists("/logs/new"));
    }

    #[test]
    fn usage_fraction_tracks_writes() {
        let mut fs = SimFs::new();
        fs.add_mount("/logs", 100);
        assert_eq!(fs.usage_fraction("/logs/a"), Some(0.0));
        fs.append("/logs/a", "x".repeat(49), t0()).unwrap(); // 50 bytes
        assert_eq!(fs.usage_fraction("/logs/a"), Some(0.5));
    }

    #[test]
    fn overwrite_reuses_space() {
        let mut fs = SimFs::new();
        fs.add_mount("/d", 25);
        fs.write("/d/f", vec!["x".repeat(19)], t0()).unwrap(); // 20 bytes
                                                               // Overwriting with the same size must succeed (not count double).
        fs.write("/d/f", vec!["y".repeat(19)], t0()).unwrap();
        assert_eq!(fs.read("/d/f").unwrap().lines[0], "y".repeat(19));
    }

    #[test]
    fn unmounted_filesystem_rejects_io_but_keeps_files() {
        let mut fs = SimFs::with_standard_layout();
        fs.write("/logs/f", vec!["data".into()], t0()).unwrap();
        assert!(fs.set_mounted("/logs", false));
        assert!(matches!(fs.read("/logs/f"), Err(FsError::NotMounted(_))));
        assert!(matches!(
            fs.append("/logs/f", "more", t0()),
            Err(FsError::NotMounted(_))
        ));
        assert!(!fs.exists("/logs/f"));
        fs.set_mounted("/logs", true);
        assert_eq!(fs.read("/logs/f").unwrap().lines, vec!["data"]);
    }

    #[test]
    fn list_and_remove_dir() {
        let mut fs = SimFs::with_standard_layout();
        fs.append("/logs/intelliagents/cpu/flag1", "ok", t0())
            .unwrap();
        fs.append("/logs/intelliagents/cpu/flag2", "ok", t0())
            .unwrap();
        fs.append("/logs/intelliagents/net/flag1", "ok", t0())
            .unwrap();
        assert_eq!(fs.list("/logs/intelliagents/cpu").len(), 2);
        assert_eq!(fs.list("/logs/intelliagents").len(), 3);
        // Sibling prefix must not match (cpu vs cpu2).
        fs.append("/logs/intelliagents/cpu2/flag", "ok", t0())
            .unwrap();
        assert_eq!(fs.list("/logs/intelliagents/cpu").len(), 2);
        assert_eq!(fs.remove_dir("/logs/intelliagents/cpu"), 2);
        assert_eq!(fs.list("/logs/intelliagents").len(), 2);
    }

    #[test]
    fn normalize_paths() {
        let mut fs = SimFs::with_standard_layout();
        fs.append("logs/a/", "x", t0()).unwrap();
        assert!(fs.exists("/logs/a"));
    }

    #[test]
    fn remove_missing_is_not_found() {
        let mut fs = SimFs::with_standard_layout();
        assert!(matches!(
            fs.remove("/logs/ghost"),
            Err(FsError::NotFound(_))
        ));
    }
}
