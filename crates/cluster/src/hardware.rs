//! Server hardware models.
//!
//! The paper's customer site mixed Sun Enterprise 4500s and E10Ks
//! (databases), E10K/Ultra 10/Linux/E450/E220R/HP K- and T-class
//! transaction servers, and IBM SP2 front-ends. The SLKT-driven
//! rescheduler selects replacement servers "of equal or higher power …
//! prefer first a server of the same model with more CPUs and memory",
//! so the model catalogue and a power ordering are load-bearing.

use std::fmt;

/// Hardware platform families present at the customer site (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ServerModel {
    /// Sun Enterprise 10000 "Starfire" — the big database irons.
    SunE10k,
    /// Sun Enterprise 4500.
    SunE4500,
    /// Sun Enterprise 450.
    SunE450,
    /// Sun Enterprise 220R.
    SunE220r,
    /// Sun Ultra 10 workstation-class server.
    SunUltra10,
    /// HP 9000 K-class.
    HpKClass,
    /// HP 9000 T-class.
    HpTClass,
    /// IBM RS/6000 SP2 node (front-end applications).
    IbmSp2,
    /// Commodity Linux box.
    LinuxBox,
}

/// Operating systems, as reported in DLSP/DGSPL entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OsKind {
    /// Sun Solaris.
    Solaris,
    /// HP-UX.
    Hpux,
    /// IBM AIX.
    Aix,
    /// Linux.
    Linux,
}

impl ServerModel {
    /// All known models.
    pub const ALL: [ServerModel; 9] = [
        ServerModel::SunE10k,
        ServerModel::SunE4500,
        ServerModel::SunE450,
        ServerModel::SunE220r,
        ServerModel::SunUltra10,
        ServerModel::HpKClass,
        ServerModel::HpTClass,
        ServerModel::IbmSp2,
        ServerModel::LinuxBox,
    ];

    /// Native operating system for the platform.
    pub fn os(self) -> OsKind {
        match self {
            ServerModel::SunE10k
            | ServerModel::SunE4500
            | ServerModel::SunE450
            | ServerModel::SunE220r
            | ServerModel::SunUltra10 => OsKind::Solaris,
            ServerModel::HpKClass | ServerModel::HpTClass => OsKind::Hpux,
            ServerModel::IbmSp2 => OsKind::Aix,
            ServerModel::LinuxBox => OsKind::Linux,
        }
    }

    /// Default hardware specification for a mid-range configuration of
    /// this model (period-plausible values; scenarios may override CPU
    /// and RAM counts per server).
    pub fn default_spec(self) -> HardwareSpec {
        match self {
            ServerModel::SunE10k => HardwareSpec::new(self, 32, 32, 12),
            ServerModel::SunE4500 => HardwareSpec::new(self, 8, 8, 6),
            ServerModel::SunE450 => HardwareSpec::new(self, 4, 4, 4),
            ServerModel::SunE220r => HardwareSpec::new(self, 2, 2, 2),
            ServerModel::SunUltra10 => HardwareSpec::new(self, 1, 1, 1),
            ServerModel::HpKClass => HardwareSpec::new(self, 4, 4, 4),
            ServerModel::HpTClass => HardwareSpec::new(self, 8, 8, 6),
            ServerModel::IbmSp2 => HardwareSpec::new(self, 4, 2, 2),
            ServerModel::LinuxBox => HardwareSpec::new(self, 2, 1, 2),
        }
    }

    /// Per-CPU relative compute power (dimensionless; an E10K CPU is the
    /// unit). Used by the SLKT power ordering and the load model.
    pub fn cpu_power(self) -> f64 {
        match self {
            ServerModel::SunE10k => 1.0,
            ServerModel::SunE4500 => 0.9,
            ServerModel::SunE450 => 0.8,
            ServerModel::SunE220r => 0.75,
            ServerModel::SunUltra10 => 0.6,
            ServerModel::HpKClass => 0.85,
            ServerModel::HpTClass => 0.95,
            ServerModel::IbmSp2 => 0.8,
            ServerModel::LinuxBox => 0.7,
        }
    }
}

impl fmt::Display for ServerModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServerModel::SunE10k => "Sun-E10000",
            ServerModel::SunE4500 => "Sun-E4500",
            ServerModel::SunE450 => "Sun-E450",
            ServerModel::SunE220r => "Sun-E220R",
            ServerModel::SunUltra10 => "Sun-Ultra10",
            ServerModel::HpKClass => "HP-K-class",
            ServerModel::HpTClass => "HP-T-class",
            ServerModel::IbmSp2 => "IBM-SP2",
            ServerModel::LinuxBox => "Linux-x86",
        };
        f.write_str(s)
    }
}

impl fmt::Display for OsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsKind::Solaris => "Solaris",
            OsKind::Hpux => "HP-UX",
            OsKind::Aix => "AIX",
            OsKind::Linux => "Linux",
        };
        f.write_str(s)
    }
}

/// Concrete hardware configuration of one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HardwareSpec {
    /// Platform family.
    pub model: ServerModel,
    /// Number of CPUs.
    pub cpus: u32,
    /// RAM in gigabytes.
    pub ram_gb: u32,
    /// Number of locally attached disks (all data lives on local disks
    /// at the customer site).
    pub disks: u32,
}

impl HardwareSpec {
    /// Build a spec.
    pub fn new(model: ServerModel, cpus: u32, ram_gb: u32, disks: u32) -> Self {
        HardwareSpec {
            model,
            cpus,
            ram_gb,
            disks,
        }
    }

    /// Total compute power: CPUs × per-CPU relative power.
    pub fn compute_power(&self) -> f64 {
        self.cpus as f64 * self.model.cpu_power()
    }

    /// SLKT "equal or higher power" comparison: `other` can replace
    /// `self` iff it has at least as much compute power **and** at least
    /// as much RAM.
    pub fn can_be_replaced_by(&self, other: &HardwareSpec) -> bool {
        other.compute_power() >= self.compute_power() && other.ram_gb >= self.ram_gb
    }
}

/// Classes of physical components a hardware intelliagent looks after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum HardwareComponent {
    /// A CPU (or CPU board).
    Cpu,
    /// A memory bank.
    Memory,
    /// A system board.
    Board,
    /// A locally attached disk.
    Disk,
    /// A network interface card.
    Nic,
    /// A power supply unit.
    PowerSupply,
}

impl HardwareComponent {
    /// All component classes.
    pub const ALL: [HardwareComponent; 6] = [
        HardwareComponent::Cpu,
        HardwareComponent::Memory,
        HardwareComponent::Board,
        HardwareComponent::Disk,
        HardwareComponent::Nic,
        HardwareComponent::PowerSupply,
    ];

    /// Whether a failure of this component class can be repaired without
    /// a field engineer, i.e. the OS can offline/failover around it
    /// (CPU offlining, disk mirror detach, NIC failover). Board and PSU
    /// failures always need hands-on work in the paper's account —
    /// "our software was unable to take care of … hardware related
    /// errors".
    pub fn software_recoverable(self) -> bool {
        matches!(
            self,
            HardwareComponent::Cpu | HardwareComponent::Disk | HardwareComponent::Nic
        )
    }
}

impl fmt::Display for HardwareComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HardwareComponent::Cpu => "cpu",
            HardwareComponent::Memory => "memory",
            HardwareComponent::Board => "board",
            HardwareComponent::Disk => "disk",
            HardwareComponent::Nic => "nic",
            HardwareComponent::PowerSupply => "psu",
        };
        f.write_str(s)
    }
}

/// Health of one hardware component instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ComponentHealth {
    /// Operating normally.
    #[default]
    Healthy,
    /// Producing correctable errors — a latent fault a hardware agent
    /// can catch in logs before it becomes fatal.
    Degraded,
    /// Failed and offlined.
    Failed,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn os_mapping() {
        assert_eq!(ServerModel::SunE10k.os(), OsKind::Solaris);
        assert_eq!(ServerModel::HpKClass.os(), OsKind::Hpux);
        assert_eq!(ServerModel::IbmSp2.os(), OsKind::Aix);
        assert_eq!(ServerModel::LinuxBox.os(), OsKind::Linux);
    }

    #[test]
    fn e10k_outranks_everything_default() {
        let e10k = ServerModel::SunE10k.default_spec();
        for m in ServerModel::ALL {
            let spec = m.default_spec();
            assert!(
                spec.can_be_replaced_by(&e10k),
                "{m} default spec should be replaceable by an E10K"
            );
        }
    }

    #[test]
    fn replacement_requires_power_and_ram() {
        let small = HardwareSpec::new(ServerModel::SunE450, 4, 4, 4);
        let more_cpu_less_ram = HardwareSpec::new(ServerModel::SunE450, 8, 2, 4);
        let more_both = HardwareSpec::new(ServerModel::SunE450, 8, 8, 4);
        assert!(!small.can_be_replaced_by(&more_cpu_less_ram));
        assert!(small.can_be_replaced_by(&more_both));
        assert!(small.can_be_replaced_by(&small)); // equal power is allowed
    }

    #[test]
    fn compute_power_scales_with_cpus() {
        let one = HardwareSpec::new(ServerModel::SunE10k, 1, 4, 1);
        let four = HardwareSpec::new(ServerModel::SunE10k, 4, 4, 1);
        assert!((four.compute_power() - 4.0 * one.compute_power()).abs() < 1e-12);
    }

    #[test]
    fn cross_model_power_comparison() {
        // 2 E10K CPUs (2.0) vs 3 Ultra10 CPUs (1.8): the E10K pair wins.
        let a = HardwareSpec::new(ServerModel::SunE10k, 2, 4, 1);
        let b = HardwareSpec::new(ServerModel::SunUltra10, 3, 4, 1);
        assert!(b.can_be_replaced_by(&a));
        assert!(!a.can_be_replaced_by(&b));
    }

    #[test]
    fn recoverability_split() {
        assert!(HardwareComponent::Cpu.software_recoverable());
        assert!(HardwareComponent::Disk.software_recoverable());
        assert!(HardwareComponent::Nic.software_recoverable());
        assert!(!HardwareComponent::Board.software_recoverable());
        assert!(!HardwareComponent::PowerSupply.software_recoverable());
        assert!(!HardwareComponent::Memory.software_recoverable());
    }

    #[test]
    fn display_names_are_stable() {
        // These strings end up in ontology files; they must not drift.
        assert_eq!(ServerModel::SunE10k.to_string(), "Sun-E10000");
        assert_eq!(OsKind::Solaris.to_string(), "Solaris");
        assert_eq!(HardwareComponent::PowerSupply.to_string(), "psu");
    }
}
