//! Fault taxonomy and the exogenous fault-arrival generator.
//!
//! Figure 2 of the paper breaks downtime into eight error categories.
//! One of them — databases crashing in the middle of a job — is
//! **endogenous** in our reproduction: it emerges from job placement and
//! server overload in the `lsf`/`services` layers (that is precisely the
//! mechanism the DGSPL-guided rescheduler improves). The other seven are
//! **exogenous** and arrive as independent Poisson processes from the
//! [`FaultInjector`] defined here.
//!
//! The injector yields abstract [`FaultEvent`]s: a concrete *mechanism*
//! ([`FaultMechanism`]) plus a *target class*; the scenario layer (in
//! `intelliqos-core`) resolves the target to an actual server/service.
//! Keeping target resolution out of this crate lets the same fault tape
//! drive both the "before" and "after" years — arrival times and
//! mechanisms are identical; only what the management layer does about
//! them differs.

use std::fmt;

use intelliqos_simkern::{SimDuration, SimRng, SimTime};

use crate::hardware::HardwareComponent;

/// The eight downtime categories of Figure 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultCategory {
    /// Databases crashing in the middle of a job ("Mid-crash").
    MidJobDbCrash,
    /// Human errors (misconfiguration, wrong permissions, killed
    /// daemons, disabled crontabs).
    HumanError,
    /// Performance-related errors (runaway processes, leaks, full
    /// filesystems).
    PerformanceError,
    /// Front-end user application downtime.
    FrontEndError,
    /// LSF scheduler errors.
    LsfError,
    /// Firewall configuration / network errors.
    FirewallNetwork,
    /// Services completely unavailable (corruptions, bugs).
    ServiceUnavailable,
    /// Hardware errors of all types.
    Hardware,
}

impl FaultCategory {
    /// All categories, Figure 2 order.
    pub const ALL: [FaultCategory; 8] = [
        FaultCategory::MidJobDbCrash,
        FaultCategory::HumanError,
        FaultCategory::PerformanceError,
        FaultCategory::FrontEndError,
        FaultCategory::LsfError,
        FaultCategory::FirewallNetwork,
        FaultCategory::ServiceUnavailable,
        FaultCategory::Hardware,
    ];

    /// Label used in reports (matches the figure legend).
    pub fn label(self) -> &'static str {
        match self {
            FaultCategory::MidJobDbCrash => "Mid-crash",
            FaultCategory::HumanError => "Human",
            FaultCategory::PerformanceError => "Performance",
            FaultCategory::FrontEndError => "Front-End",
            FaultCategory::LsfError => "LSF",
            FaultCategory::FirewallNetwork => "FW/NW",
            FaultCategory::ServiceUnavailable => "Completely Down",
            FaultCategory::Hardware => "Hardware",
        }
    }
}

impl fmt::Display for FaultCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What kind of machine a fault wants to land on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetClass {
    /// One of the database servers.
    DbServer,
    /// One of the transaction-processing servers.
    TxServer,
    /// One of the front-end application servers.
    FrontEndServer,
    /// The server currently running the LSF master.
    LsfMaster,
    /// Any server in the datacentre.
    AnyServer,
    /// A network segment rather than a server.
    Network,
}

/// Concrete failure mechanisms, each mapped to effects by the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMechanism {
    // -- performance ----------------------------------------------------
    /// A process starts consuming unbounded CPU.
    RunawayProcess,
    /// A process leaks memory until the page scanner thrashes.
    MemoryLeak,
    /// Log growth fills a filesystem.
    DiskFill,
    /// A diffuse slowdown with no single guilty process — the paper's
    /// agents could only "suggest what may be wrong" for these.
    ObscureSlowdown,
    // -- human ----------------------------------------------------------
    /// An operator kills the wrong daemon.
    DaemonKilled,
    /// A bad configuration edit breaks a service until restored.
    ConfigCorrupted,
    /// The agent/monitoring crontab gets disabled by mistake.
    CrontabDisabled,
    /// NTP misconfiguration breaks time sync on a host.
    NtpBroken,
    // -- front-end -------------------------------------------------------
    /// The GUI/application front end hangs (accepts no connections).
    FrontEndHang,
    /// The front-end process crashes outright.
    FrontEndCrash,
    // -- LSF ---------------------------------------------------------------
    /// The LSF master daemon crashes ("very often they would crash").
    LsfMasterCrash,
    /// The LSF queue wedges: jobs stop being dispatched.
    LsfQueueStuck,
    // -- firewall / network ----------------------------------------------
    /// A firewall rule change cuts a host off a segment.
    FirewallMisrule,
    /// A whole network segment goes down.
    SegmentOutage,
    // -- complete service unavailability -----------------------------------
    /// On-disk corruption; needs restore before restart helps.
    ServiceCorruption,
    /// A software bug wedges the service until patched/restarted.
    ServiceBug,
    // -- hardware -----------------------------------------------------------
    /// A component starts throwing correctable errors (latent).
    ComponentDegrade(HardwareComponent),
    /// A component fails hard.
    ComponentFail(HardwareComponent),
}

impl FaultMechanism {
    /// Which Figure 2 category this mechanism is accounted under.
    pub fn category(self) -> FaultCategory {
        use FaultMechanism::*;
        match self {
            RunawayProcess | MemoryLeak | DiskFill | ObscureSlowdown => {
                FaultCategory::PerformanceError
            }
            DaemonKilled | ConfigCorrupted | CrontabDisabled | NtpBroken => {
                FaultCategory::HumanError
            }
            FrontEndHang | FrontEndCrash => FaultCategory::FrontEndError,
            LsfMasterCrash | LsfQueueStuck => FaultCategory::LsfError,
            FirewallMisrule | SegmentOutage => FaultCategory::FirewallNetwork,
            ServiceCorruption | ServiceBug => FaultCategory::ServiceUnavailable,
            ComponentDegrade(_) | ComponentFail(_) => FaultCategory::Hardware,
        }
    }

    /// Default target class for the mechanism.
    pub fn target_class(self) -> TargetClass {
        use FaultMechanism::*;
        match self {
            FrontEndHang | FrontEndCrash => TargetClass::FrontEndServer,
            LsfMasterCrash | LsfQueueStuck => TargetClass::LsfMaster,
            FirewallMisrule | SegmentOutage => TargetClass::Network,
            ServiceCorruption | ServiceBug => TargetClass::DbServer,
            _ => TargetClass::AnyServer,
        }
    }

    /// Can the paper's agents self-heal this mechanism at all? Firewall,
    /// network, and hard hardware failures could not be healed — "our
    /// software was unable to take care of firewall/network and hardware
    /// related errors" — though agents still *detect* them fast and
    /// page a human immediately.
    pub fn agent_healable(self) -> bool {
        use FaultMechanism::*;
        !matches!(
            self,
            FirewallMisrule
                | SegmentOutage
                | ComponentFail(_)
                | ComponentDegrade(_)
                | ObscureSlowdown
        )
    }
}

/// Whether fixing a fault manually needs one expert or several.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Complexity {
    /// A single admin can restart/diagnose it (~2 h manual in §4).
    Simple,
    /// Multiple experts must be called together (~4 h manual in §4).
    Complex,
}

/// One fault arrival on the exogenous fault tape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// When the fault occurs.
    pub at: SimTime,
    /// Mechanism of failure.
    pub mechanism: FaultMechanism,
    /// Where it wants to land.
    pub target: TargetClass,
    /// How hard it is to repair manually.
    pub complexity: Complexity,
    /// Latent faults produce no user-visible symptom at onset; only log
    /// evidence. Monitoring-by-use misses them until they escalate.
    pub latent: bool,
}

/// Mean arrivals per year for each exogenous category.
///
/// Defaults are calibrated so that the **year-1** (manual-operations)
/// scenario lands near Figure 2's downtime hours given the paper's
/// 2 h/4 h manual repair times and its day/weekend/overnight detection
/// latencies. See EXPERIMENTS.md for the calibration arithmetic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRates {
    /// Human errors per year.
    pub human_per_year: f64,
    /// Performance faults per year.
    pub performance_per_year: f64,
    /// Front-end failures per year.
    pub front_end_per_year: f64,
    /// LSF failures per year.
    pub lsf_per_year: f64,
    /// Firewall/network faults per year.
    pub firewall_network_per_year: f64,
    /// Complete-unavailability faults per year.
    pub service_unavailable_per_year: f64,
    /// Hardware faults per year.
    pub hardware_per_year: f64,
    /// Fraction of faults that are latent at onset.
    pub latent_fraction: f64,
    /// Fraction of faults needing multiple experts (complex).
    pub complex_fraction: f64,
}

impl Default for FaultRates {
    fn default() -> Self {
        // Calibrated so year-1 (manual ops, paper detection/repair
        // latencies) lands near Figure 2's per-category hours; see
        // EXPERIMENTS.md for the arithmetic.
        FaultRates {
            human_per_year: 20.0,
            performance_per_year: 12.0,
            front_end_per_year: 12.0,
            lsf_per_year: 7.0,
            firewall_network_per_year: 2.5,
            service_unavailable_per_year: 1.5,
            hardware_per_year: 3.0,
            latent_fraction: 0.25,
            complex_fraction: 0.2,
        }
    }
}

impl FaultRates {
    /// Rate for one category (mid-job crashes are endogenous ⇒ 0 here).
    pub fn rate(&self, cat: FaultCategory) -> f64 {
        match cat {
            FaultCategory::MidJobDbCrash => 0.0,
            FaultCategory::HumanError => self.human_per_year,
            FaultCategory::PerformanceError => self.performance_per_year,
            FaultCategory::FrontEndError => self.front_end_per_year,
            FaultCategory::LsfError => self.lsf_per_year,
            FaultCategory::FirewallNetwork => self.firewall_network_per_year,
            FaultCategory::ServiceUnavailable => self.service_unavailable_per_year,
            FaultCategory::Hardware => self.hardware_per_year,
        }
    }

    /// Uniformly scale all exogenous rates (stress scenarios).
    pub fn scaled(mut self, k: f64) -> Self {
        self.human_per_year *= k;
        self.performance_per_year *= k;
        self.front_end_per_year *= k;
        self.lsf_per_year *= k;
        self.firewall_network_per_year *= k;
        self.service_unavailable_per_year *= k;
        self.hardware_per_year *= k;
        self
    }
}

/// Generates the deterministic exogenous fault tape for a scenario.
pub struct FaultInjector {
    rates: FaultRates,
    rng: SimRng,
}

impl FaultInjector {
    /// New injector. Give it its **own** RNG stream so the tape is
    /// invariant under unrelated changes elsewhere in the scenario.
    pub fn new(rates: FaultRates, rng: SimRng) -> Self {
        FaultInjector { rates, rng }
    }

    /// Pick a mechanism for a category.
    fn pick_mechanism(&mut self, cat: FaultCategory) -> FaultMechanism {
        use FaultMechanism::*;
        match cat {
            FaultCategory::MidJobDbCrash => {
                unreachable!("mid-job crashes are endogenous")
            }
            FaultCategory::HumanError => *self.rng.choose(&[
                DaemonKilled,
                DaemonKilled, // killing the wrong thing is the most common
                ConfigCorrupted,
                CrontabDisabled,
                NtpBroken,
            ]),
            FaultCategory::PerformanceError => *self.rng.choose(&[
                RunawayProcess,
                RunawayProcess,
                MemoryLeak,
                DiskFill,
                ObscureSlowdown,
                ObscureSlowdown,
            ]),
            FaultCategory::FrontEndError => *self.rng.choose(&[FrontEndHang, FrontEndCrash]),
            FaultCategory::LsfError => {
                *self
                    .rng
                    .choose(&[LsfMasterCrash, LsfMasterCrash, LsfQueueStuck])
            }
            FaultCategory::FirewallNetwork => {
                *self
                    .rng
                    .choose(&[FirewallMisrule, FirewallMisrule, SegmentOutage])
            }
            FaultCategory::ServiceUnavailable => *self.rng.choose(&[ServiceCorruption, ServiceBug]),
            FaultCategory::Hardware => {
                let comp = *self.rng.choose(&[
                    HardwareComponent::Cpu,
                    HardwareComponent::Memory,
                    HardwareComponent::Disk,
                    HardwareComponent::Disk,
                    HardwareComponent::Nic,
                    HardwareComponent::Board,
                    HardwareComponent::PowerSupply,
                ]);
                if self.rng.chance(0.5) {
                    ComponentDegrade(comp)
                } else {
                    ComponentFail(comp)
                }
            }
        }
    }

    /// Generate the full tape of exogenous faults over `[0, horizon)`,
    /// sorted by arrival time.
    pub fn generate_tape(&mut self, horizon: SimDuration) -> Vec<FaultEvent> {
        let mut tape = Vec::new();
        let horizon_years = horizon.as_secs() as f64 / intelliqos_simkern::YEAR as f64;
        for cat in FaultCategory::ALL {
            let rate = self.rates.rate(cat);
            if rate <= 0.0 {
                continue;
            }
            let mean_gap = intelliqos_simkern::YEAR as f64 / rate;
            let mut t = 0.0f64;
            loop {
                t += self.rng.exponential(mean_gap);
                if t >= horizon_years * intelliqos_simkern::YEAR as f64 {
                    break;
                }
                let mechanism = self.pick_mechanism(cat);
                tape.push(FaultEvent {
                    at: SimTime::from_secs(t as u64),
                    mechanism,
                    target: mechanism.target_class(),
                    complexity: if self.rng.chance(self.rates.complex_fraction) {
                        Complexity::Complex
                    } else {
                        Complexity::Simple
                    },
                    latent: self.rng.chance(self.rates.latent_fraction),
                });
            }
        }
        tape.sort_by_key(|e| e.at);
        tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_simkern::YEAR;

    fn injector(seed: u64) -> FaultInjector {
        FaultInjector::new(FaultRates::default(), SimRng::stream(seed, "faults"))
    }

    #[test]
    fn tape_is_sorted_and_deterministic() {
        let horizon = SimDuration::from_secs(YEAR);
        let a = injector(1).generate_tape(horizon);
        let b = injector(1).generate_tape(horizon);
        let c = injector(2).generate_tape(horizon);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert_ne!(a.len(), 0);
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        // Different seed, different tape.
        assert!(a.len() != c.len() || a.iter().zip(&c).any(|(x, y)| x != y));
    }

    #[test]
    fn arrival_counts_match_rates_roughly() {
        // Average over several seeds to damp Poisson noise.
        let horizon = SimDuration::from_secs(YEAR);
        let mut human = 0usize;
        let mut hw = 0usize;
        let seeds = 20;
        for s in 0..seeds {
            let tape = injector(s).generate_tape(horizon);
            human += tape
                .iter()
                .filter(|e| e.mechanism.category() == FaultCategory::HumanError)
                .count();
            hw += tape
                .iter()
                .filter(|e| e.mechanism.category() == FaultCategory::Hardware)
                .count();
        }
        let human_avg = human as f64 / seeds as f64;
        let hw_avg = hw as f64 / seeds as f64;
        assert!((human_avg - 20.0).abs() < 4.0, "human_avg = {human_avg}");
        assert!((hw_avg - 3.0).abs() < 1.5, "hw_avg = {hw_avg}");
    }

    #[test]
    fn no_endogenous_midcrash_on_tape() {
        let tape = injector(3).generate_tape(SimDuration::from_secs(YEAR));
        assert!(tape
            .iter()
            .all(|e| e.mechanism.category() != FaultCategory::MidJobDbCrash));
    }

    #[test]
    fn mechanisms_map_to_their_categories() {
        use FaultMechanism::*;
        assert_eq!(RunawayProcess.category(), FaultCategory::PerformanceError);
        assert_eq!(DaemonKilled.category(), FaultCategory::HumanError);
        assert_eq!(FrontEndHang.category(), FaultCategory::FrontEndError);
        assert_eq!(LsfMasterCrash.category(), FaultCategory::LsfError);
        assert_eq!(FirewallMisrule.category(), FaultCategory::FirewallNetwork);
        assert_eq!(ServiceBug.category(), FaultCategory::ServiceUnavailable);
        assert_eq!(
            ComponentFail(HardwareComponent::Disk).category(),
            FaultCategory::Hardware
        );
    }

    #[test]
    fn healability_matches_paper_claims() {
        use FaultMechanism::*;
        assert!(RunawayProcess.agent_healable());
        assert!(!ObscureSlowdown.agent_healable());
        assert_eq!(ObscureSlowdown.category(), FaultCategory::PerformanceError);
        assert!(DaemonKilled.agent_healable());
        assert!(LsfMasterCrash.agent_healable());
        assert!(!FirewallMisrule.agent_healable());
        assert!(!SegmentOutage.agent_healable());
        assert!(!ComponentFail(HardwareComponent::Board).agent_healable());
    }

    #[test]
    fn scaled_rates() {
        let r = FaultRates::default().scaled(2.0);
        assert!((r.human_per_year - 40.0).abs() < 1e-9);
        assert!((r.rate(FaultCategory::Hardware) - 6.0).abs() < 1e-9);
        assert_eq!(r.rate(FaultCategory::MidJobDbCrash), 0.0);
    }

    #[test]
    fn latent_and_complex_fractions_present() {
        let tape = injector(7).generate_tape(SimDuration::from_secs(YEAR * 3));
        let latent = tape.iter().filter(|e| e.latent).count() as f64 / tape.len() as f64;
        let complex = tape
            .iter()
            .filter(|e| e.complexity == Complexity::Complex)
            .count() as f64
            / tape.len() as f64;
        assert!(latent > 0.1 && latent < 0.45, "latent = {latent}");
        assert!(complex > 0.05 && complex < 0.4, "complex = {complex}");
    }

    #[test]
    fn category_labels_match_figure2() {
        assert_eq!(FaultCategory::MidJobDbCrash.label(), "Mid-crash");
        assert_eq!(FaultCategory::ServiceUnavailable.label(), "Completely Down");
        assert_eq!(FaultCategory::FirewallNetwork.label(), "FW/NW");
    }
}
