//! Datacenter networks.
//!
//! The paper's topology (Figure 1): every host and resource attaches to
//! a **private intelliagent network** and one or more **public LANs**.
//! All agent traffic rides the private network "to avoid putting any
//! performance/load overheads to the public LANs"; if the private
//! network fails, agents "automatically re-route their communication
//! traffic over the public LAN".
//!
//! We model segments with finite bandwidth (100Base-T at the customer
//! site), per-window byte accounting (for the ABL-NET ablation), segment
//! up/down state, and a firewall whose misconfiguration can block
//! traffic between attached hosts — one of the paper's fault categories
//! the agents could *not* heal.

use std::collections::{BTreeMap, BTreeSet};

use intelliqos_simkern::{SimDuration, SimTime};

use crate::ids::{SegmentId, ServerId};

/// Purpose of a network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegmentKind {
    /// The dedicated intelliagent LAN.
    PrivateAgent,
    /// A public production LAN.
    Public,
}

/// One LAN segment.
#[derive(Debug, Clone)]
pub struct Segment {
    /// Identity.
    pub id: SegmentId,
    /// Purpose.
    pub kind: SegmentKind,
    /// Usable bandwidth in bytes/second (100Base-T ≈ 12.5 MB/s raw; we
    /// default to ~10 MB/s usable).
    pub bandwidth_bps: u64,
    /// Whether the segment is up.
    pub up: bool,
    /// Base one-way latency in milliseconds.
    pub base_latency_ms: f64,
    /// Bytes offered in the current accounting window.
    window_bytes: u64,
    /// Start of the current accounting window.
    window_start: SimTime,
    /// Length of the accounting window.
    window_len: SimDuration,
    /// Completed-window utilisation history (fraction of bandwidth).
    history: Vec<(SimTime, f64)>,
}

/// Usable bytes/second on 100Base-T Ethernet.
pub const FAST_ETHERNET_BPS: u64 = 10_000_000;

impl Segment {
    fn new(id: SegmentId, kind: SegmentKind, now: SimTime) -> Self {
        Segment {
            id,
            kind,
            bandwidth_bps: FAST_ETHERNET_BPS,
            up: true,
            base_latency_ms: 0.3,
            window_bytes: 0,
            window_start: now,
            window_len: SimDuration::from_mins(5),
            history: Vec::new(),
        }
    }

    /// Close out accounting windows up to `now`.
    fn roll_window(&mut self, now: SimTime) {
        while now.since(self.window_start) >= self.window_len {
            let window_capacity = (self.bandwidth_bps * self.window_len.as_secs()).max(1);
            let util = self.window_bytes as f64 / window_capacity as f64;
            self.history.push((self.window_start, util));
            self.window_start += self.window_len;
            self.window_bytes = 0;
        }
    }

    /// Utilisation (fraction of bandwidth) of the most recently
    /// completed window, if any.
    pub fn last_window_utilization(&self) -> Option<f64> {
        self.history.last().map(|&(_, u)| u)
    }

    /// Completed-window utilisation history.
    pub fn utilization_history(&self) -> &[(SimTime, f64)] {
        &self.history
    }

    /// Mean utilisation across all completed windows (0 when none).
    pub fn mean_utilization(&self) -> f64 {
        if self.history.is_empty() {
            0.0
        } else {
            self.history.iter().map(|&(_, u)| u).sum::<f64>() / self.history.len() as f64
        }
    }

    /// Effective one-way latency at the current instantaneous load
    /// (simple congestion inflation).
    pub fn current_latency_ms(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.window_start).as_secs().max(1);
        let inst = self.window_bytes as f64 / (self.bandwidth_bps * elapsed) as f64;
        self.base_latency_ms * (1.0 + 4.0 * inst.min(1.0))
    }
}

/// Why a transmission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No segment connects the two hosts.
    NoRoute(ServerId, ServerId),
    /// The firewall blocks this pair on every connecting segment.
    FirewallBlocked(SegmentId),
    /// All candidate segments are down.
    SegmentDown,
}

/// Outcome of a successful transmission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Delivery {
    /// Segment the traffic actually used.
    pub via: SegmentId,
    /// Whether the traffic fell back to a public LAN because the
    /// private network was unavailable.
    pub rerouted: bool,
    /// One-way latency experienced, in milliseconds.
    pub latency_ms: f64,
}

/// The datacenter fabric.
#[derive(Debug, Clone, Default)]
pub struct Fabric {
    segments: BTreeMap<SegmentId, Segment>,
    /// Which servers attach to which segments.
    attachments: BTreeMap<ServerId, BTreeSet<SegmentId>>,
    /// Firewall: blocked (segment, server) pairs — a misconfigured rule
    /// cuts a host off a segment.
    blocked: BTreeSet<(SegmentId, ServerId)>,
    next_segment: u32,
}

impl Fabric {
    /// Empty fabric.
    pub fn new() -> Self {
        Fabric::default()
    }

    /// Create a segment.
    pub fn add_segment(&mut self, kind: SegmentKind, now: SimTime) -> SegmentId {
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        self.segments.insert(id, Segment::new(id, kind, now));
        id
    }

    /// Attach a server to a segment.
    pub fn attach(&mut self, server: ServerId, segment: SegmentId) {
        self.attachments.entry(server).or_default().insert(segment);
    }

    /// Segment accessor.
    pub fn segment(&self, id: SegmentId) -> Option<&Segment> {
        self.segments.get(&id)
    }

    /// Mutable segment accessor.
    pub fn segment_mut(&mut self, id: SegmentId) -> Option<&mut Segment> {
        self.segments.get_mut(&id)
    }

    /// All segments of a kind, id order.
    pub fn segments_of(&self, kind: SegmentKind) -> Vec<SegmentId> {
        self.segments
            .values()
            .filter(|s| s.kind == kind)
            .map(|s| s.id)
            .collect()
    }

    /// Bring a segment up or down.
    pub fn set_segment_up(&mut self, id: SegmentId, up: bool) -> bool {
        if let Some(s) = self.segments.get_mut(&id) {
            s.up = up;
            true
        } else {
            false
        }
    }

    /// Install (or remove) a firewall block for `server` on `segment` —
    /// the "firewall configuration error" fault category.
    pub fn set_firewall_block(&mut self, segment: SegmentId, server: ServerId, blocked: bool) {
        if blocked {
            self.blocked.insert((segment, server));
        } else {
            self.blocked.remove(&(segment, server));
        }
    }

    /// Is `server` currently firewall-blocked on `segment`?
    pub fn is_blocked(&self, segment: SegmentId, server: ServerId) -> bool {
        self.blocked.contains(&(segment, server))
    }

    /// Segments shared by both endpoints, id order.
    fn shared_segments(&self, a: ServerId, b: ServerId) -> Vec<SegmentId> {
        match (self.attachments.get(&a), self.attachments.get(&b)) {
            (Some(sa), Some(sb)) => sa.intersection(sb).copied().collect(),
            _ => Vec::new(),
        }
    }

    /// Transmit `bytes` from `src` to `dst`, preferring segments of
    /// `prefer` kind and falling back to any other shared segment when
    /// the preferred ones are down or blocked. Byte accounting lands on
    /// the segment actually used.
    pub fn transmit(
        &mut self,
        src: ServerId,
        dst: ServerId,
        bytes: u64,
        prefer: SegmentKind,
        now: SimTime,
    ) -> Result<Delivery, NetError> {
        let shared = self.shared_segments(src, dst);
        if shared.is_empty() {
            return Err(NetError::NoRoute(src, dst));
        }
        let usable = |fab: &Fabric, id: SegmentId| -> bool {
            let seg = &fab.segments[&id];
            seg.up && !fab.is_blocked(id, src) && !fab.is_blocked(id, dst)
        };
        let preferred: Vec<SegmentId> = shared
            .iter()
            .copied()
            .filter(|id| self.segments[id].kind == prefer)
            .collect();
        let chosen = preferred
            .iter()
            .copied()
            .find(|&id| usable(self, id))
            .map(|id| (id, false))
            .or_else(|| {
                shared
                    .iter()
                    .copied()
                    .filter(|id| self.segments[id].kind != prefer)
                    .find(|&id| usable(self, id))
                    .map(|id| (id, true))
            });
        let Some((via, rerouted)) = chosen else {
            // Distinguish "everything down" from "firewall blocked".
            let any_up = shared.iter().any(|id| self.segments[id].up);
            return if any_up {
                let blocked_on = shared
                    .iter()
                    .copied()
                    .find(|&id| {
                        self.segments[&id].up
                            && (self.is_blocked(id, src) || self.is_blocked(id, dst))
                    })
                    .unwrap_or(shared[0]);
                Err(NetError::FirewallBlocked(blocked_on))
            } else {
                Err(NetError::SegmentDown)
            };
        };
        // qoslint::allow(no-panic, route() just chose this segment from the map)
        let seg = self.segments.get_mut(&via).expect("chosen segment exists");
        seg.roll_window(now);
        seg.window_bytes += bytes;
        let latency_ms = seg.current_latency_ms(now);
        Ok(Delivery {
            via,
            rerouted,
            latency_ms,
        })
    }

    /// Roll every segment's accounting window forward to `now` (call at
    /// end of run so the final windows are recorded).
    pub fn roll_all_windows(&mut self, now: SimTime) {
        for seg in self.segments.values_mut() {
            seg.roll_window(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_host_fabric() -> (Fabric, ServerId, ServerId, SegmentId, SegmentId) {
        let mut f = Fabric::new();
        let private = f.add_segment(SegmentKind::PrivateAgent, SimTime::ZERO);
        let public = f.add_segment(SegmentKind::Public, SimTime::ZERO);
        let (a, b) = (ServerId(0), ServerId(1));
        for s in [a, b] {
            f.attach(s, private);
            f.attach(s, public);
        }
        (f, a, b, private, public)
    }

    #[test]
    fn agent_traffic_prefers_private() {
        let (mut f, a, b, private, _) = two_host_fabric();
        let d = f
            .transmit(a, b, 1000, SegmentKind::PrivateAgent, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.via, private);
        assert!(!d.rerouted);
    }

    #[test]
    fn reroutes_to_public_when_private_down() {
        let (mut f, a, b, private, public) = two_host_fabric();
        f.set_segment_up(private, false);
        let d = f
            .transmit(a, b, 1000, SegmentKind::PrivateAgent, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.via, public);
        assert!(d.rerouted);
    }

    #[test]
    fn all_segments_down_is_an_error() {
        let (mut f, a, b, private, public) = two_host_fabric();
        f.set_segment_up(private, false);
        f.set_segment_up(public, false);
        assert_eq!(
            f.transmit(a, b, 1, SegmentKind::PrivateAgent, SimTime::ZERO),
            Err(NetError::SegmentDown)
        );
    }

    #[test]
    fn firewall_block_cuts_host_off() {
        let (mut f, a, b, private, public) = two_host_fabric();
        f.set_firewall_block(private, a, true);
        // Falls back to public (firewall only broken on private).
        let d = f
            .transmit(a, b, 1, SegmentKind::PrivateAgent, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.via, public);
        // Block public too: now it's a firewall error.
        f.set_firewall_block(public, a, true);
        assert!(matches!(
            f.transmit(a, b, 1, SegmentKind::PrivateAgent, SimTime::ZERO),
            Err(NetError::FirewallBlocked(_))
        ));
        // Unblock heals.
        f.set_firewall_block(private, a, false);
        assert!(f
            .transmit(a, b, 1, SegmentKind::PrivateAgent, SimTime::ZERO)
            .is_ok());
    }

    #[test]
    fn no_shared_segment_is_no_route() {
        let mut f = Fabric::new();
        let s1 = f.add_segment(SegmentKind::Public, SimTime::ZERO);
        let s2 = f.add_segment(SegmentKind::Public, SimTime::ZERO);
        f.attach(ServerId(0), s1);
        f.attach(ServerId(1), s2);
        assert!(matches!(
            f.transmit(
                ServerId(0),
                ServerId(1),
                1,
                SegmentKind::Public,
                SimTime::ZERO
            ),
            Err(NetError::NoRoute(_, _))
        ));
    }

    #[test]
    fn window_accounting_records_utilization() {
        let (mut f, a, b, private, _) = two_host_fabric();
        // 5-minute window at 10 MB/s = 3e9 bytes capacity. Send 10% of it.
        let cap = FAST_ETHERNET_BPS * 300;
        f.transmit(a, b, cap / 10, SegmentKind::PrivateAgent, SimTime::ZERO)
            .unwrap();
        f.roll_all_windows(SimTime::from_mins(5));
        let seg = f.segment(private).unwrap();
        let u = seg.last_window_utilization().unwrap();
        assert!((u - 0.1).abs() < 1e-9, "u = {u}");
        assert!(seg.mean_utilization() > 0.0);
    }

    #[test]
    fn latency_inflates_with_load() {
        let (mut f, a, b, _, _) = two_host_fabric();
        let quiet = f
            .transmit(
                a,
                b,
                1_000,
                SegmentKind::PrivateAgent,
                SimTime::from_secs(1),
            )
            .unwrap();
        // Saturate the instantaneous window.
        f.transmit(
            a,
            b,
            FAST_ETHERNET_BPS * 10,
            SegmentKind::PrivateAgent,
            SimTime::from_secs(1),
        )
        .unwrap();
        let busy = f
            .transmit(
                a,
                b,
                1_000,
                SegmentKind::PrivateAgent,
                SimTime::from_secs(1),
            )
            .unwrap();
        assert!(busy.latency_ms > quiet.latency_ms);
    }

    #[test]
    fn segments_of_filters_by_kind() {
        let (f, _, _, private, public) = two_host_fabric();
        assert_eq!(f.segments_of(SegmentKind::PrivateAgent), vec![private]);
        assert_eq!(f.segments_of(SegmentKind::Public), vec![public]);
    }
}
