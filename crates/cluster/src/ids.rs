//! Strongly-typed identifiers for datacenter entities.
//!
//! Everything in the simulated datacenter is addressed by a small
//! integer id wrapped in a newtype, so cross-references between crates
//! never hand out borrows into each other's state — the usual
//! borrow-checker-friendly ECS-ish pattern for large simulations.

use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// Raw index (useful as a vector index).
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{:03}"), self.0)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_type!(
    /// A physical server in the datacenter.
    ServerId,
    "srv"
);
id_type!(
    /// A process in some server's process table (unique per server).
    Pid,
    "pid"
);
id_type!(
    /// A physical disk attached to a server.
    DiskId,
    "dsk"
);
id_type!(
    /// A network interface card on a server.
    NicId,
    "nic"
);
id_type!(
    /// A network segment (the private agent LAN or a public LAN).
    SegmentId,
    "lan"
);

/// Geographical site, as carried in DGSPL entries
/// (`<…, Geographical Location, Site Name>`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Site {
    /// Geographical location, e.g. "London".
    pub location: String,
    /// Site name, e.g. "LDN-DC1".
    pub name: String,
}

impl Site {
    /// Convenience constructor.
    pub fn new(location: impl Into<String>, name: impl Into<String>) -> Self {
        Site {
            location: location.into(),
            name: name.into(),
        }
    }
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.location, self.name)
    }
}

/// Simulated IPv4-ish address on the datacenter networks. Servers get
/// one address per attached segment (the paper's hosts sit on both the
/// private agent LAN and one or more public LANs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpAddr {
    /// Network segment this address lives on.
    pub segment: SegmentId,
    /// Host number within the segment.
    pub host: u32,
}

impl fmt::Display for IpAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "10.{}.{}.{}",
            self.segment.0,
            self.host / 256,
            self.host % 256
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(ServerId(7).to_string(), "srv007");
        assert_eq!(Pid(42).to_string(), "pid042");
        assert_eq!(SegmentId(0).to_string(), "lan000");
        assert_eq!(
            IpAddr {
                segment: SegmentId(1),
                host: 300
            }
            .to_string(),
            "10.1.1.44"
        );
        assert_eq!(Site::new("London", "LDN-DC1").to_string(), "London/LDN-DC1");
    }

    #[test]
    fn ids_are_ordered_and_indexable() {
        assert!(ServerId(1) < ServerId(2));
        assert_eq!(ServerId(9).index(), 9);
        assert_eq!(ServerId::from(3u32), ServerId(3));
    }
}
