//! Simulated cron.
//!
//! Intelliagents "are 'awakened' every X minutes … by local to each host
//! Unix crons" (§3.3). This is a minimal periodic scheduler: each entry
//! has a period, a phase offset (so 200 servers don't all wake at the
//! same second), and an opaque command tag the server-level driver
//! dispatches on.

use intelliqos_simkern::{SimDuration, SimTime};

/// One crontab line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CronEntry<C> {
    /// How often the job fires.
    pub period: SimDuration,
    /// Offset of the first firing from the epoch.
    pub offset: SimDuration,
    /// What to run (dispatched by the owner).
    pub command: C,
    /// Disabled entries never fire (a human-error fault can disable the
    /// agent crontab — which the admin servers then detect via missing
    /// flags).
    pub enabled: bool,
}

/// A server's crontab.
#[derive(Debug, Clone, Default)]
pub struct Crontab<C> {
    entries: Vec<CronEntry<C>>,
}

impl<C> Crontab<C> {
    /// Empty crontab.
    pub fn new() -> Self {
        Crontab {
            entries: Vec::new(),
        }
    }

    /// Add an entry; returns its index.
    ///
    /// # Panics
    /// Panics if the period is zero.
    pub fn add(&mut self, period: SimDuration, offset: SimDuration, command: C) -> usize {
        assert!(!period.is_zero(), "cron period must be positive");
        self.entries.push(CronEntry {
            period,
            offset,
            command,
            enabled: true,
        });
        self.entries.len() - 1
    }

    /// Enable or disable an entry by index. Returns false for a bad index.
    pub fn set_enabled(&mut self, idx: usize, enabled: bool) -> bool {
        if let Some(e) = self.entries.get_mut(idx) {
            e.enabled = enabled;
            true
        } else {
            false
        }
    }

    /// All entries.
    pub fn entries(&self) -> &[CronEntry<C>] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Next firing time of entry `idx` strictly after `now`.
    pub fn next_fire(&self, idx: usize, now: SimTime) -> Option<SimTime> {
        let e = self.entries.get(idx)?;
        if !e.enabled {
            return None;
        }
        let period = e.period.as_secs();
        let first = e.offset.as_secs();
        let now_s = now.as_secs();
        let next = if now_s < first {
            first
        } else {
            let k = (now_s - first) / period + 1;
            first + k * period
        };
        Some(SimTime::from_secs(next))
    }

    /// Every `(index, command)` due to fire strictly after `prev` and at
    /// or before `now` — the driver calls this once per tick with the
    /// previous tick's time.
    pub fn due(&self, prev: SimTime, now: SimTime) -> Vec<(usize, &C)> {
        let mut out = Vec::new();
        for (i, e) in self.entries.iter().enumerate() {
            if !e.enabled {
                continue;
            }
            let period = e.period.as_secs();
            let first = e.offset.as_secs();
            // Fire times are first + k*period. Count how many land in
            // (prev, now]. At most one per tick matters for our drivers,
            // but report one entry per firing for correctness.
            if now.as_secs() < first {
                continue;
            }
            let k_hi = (now.as_secs() - first) / period;
            let k_lo = if prev.as_secs() < first {
                0
            } else {
                (prev.as_secs() - first) / period + 1
            };
            for _k in k_lo..=k_hi {
                out.push((i, &e.command));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mins(m: u64) -> SimDuration {
        SimDuration::from_mins(m)
    }

    #[test]
    fn next_fire_respects_offset_and_period() {
        let mut c = Crontab::new();
        let idx = c.add(mins(5), mins(2), "agent");
        assert_eq!(c.next_fire(idx, SimTime::ZERO), Some(SimTime::from_mins(2)));
        assert_eq!(
            c.next_fire(idx, SimTime::from_mins(2)),
            Some(SimTime::from_mins(7))
        );
        assert_eq!(
            c.next_fire(idx, SimTime::from_mins(6)),
            Some(SimTime::from_mins(7))
        );
    }

    #[test]
    fn due_finds_all_firings_in_window() {
        let mut c = Crontab::new();
        c.add(mins(5), mins(0), "a");
        c.add(mins(10), mins(3), "b");
        // Window (0, 15]: a fires at 5, 10, 15; b fires at 3, 13.
        let due = c.due(SimTime::ZERO, SimTime::from_mins(15));
        let a_count = due.iter().filter(|(_, cmd)| **cmd == "a").count();
        let b_count = due.iter().filter(|(_, cmd)| **cmd == "b").count();
        assert_eq!(a_count, 3);
        assert_eq!(b_count, 2);
    }

    #[test]
    fn due_is_exclusive_of_prev_inclusive_of_now() {
        let mut c = Crontab::new();
        c.add(mins(5), mins(0), "a");
        // prev exactly on a fire time must not re-fire it.
        let due = c.due(SimTime::from_mins(5), SimTime::from_mins(10));
        assert_eq!(due.len(), 1);
    }

    #[test]
    fn disabled_entries_never_fire() {
        let mut c = Crontab::new();
        let idx = c.add(mins(5), mins(0), "a");
        assert!(c.set_enabled(idx, false));
        assert!(c.next_fire(idx, SimTime::ZERO).is_none());
        assert!(c.due(SimTime::ZERO, SimTime::from_mins(30)).is_empty());
        assert!(!c.set_enabled(99, false));
    }

    #[test]
    fn window_before_first_fire_is_empty() {
        let mut c = Crontab::new();
        c.add(mins(5), mins(30), "late");
        assert!(c.due(SimTime::ZERO, SimTime::from_mins(29)).is_empty());
        let due = c.due(SimTime::from_mins(29), SimTime::from_mins(30));
        assert_eq!(due.len(), 1);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        let mut c = Crontab::new();
        c.add(SimDuration::ZERO, SimDuration::ZERO, "bad");
    }
}
