//! Per-server process table with microstate accounting.
//!
//! Service intelliagents identify applications by "process names and
//! numbers" from the SLKT, and the performance intelliagents classify
//! measurements "per user name, per command name and arguments, per user
//! and command name". Microstate accounting (§3.5) gives nanosecond-
//! resolution user/system/wait splits per process — we track those
//! splits as accumulated nanoseconds.

use std::collections::BTreeMap;

use intelliqos_simkern::{SimDuration, SimTime};

use crate::ids::Pid;
use crate::os::LoadVector;

/// Scheduling state of a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable or running.
    Running,
    /// Sleeping (idle daemon).
    Sleeping,
    /// Blocked on I/O.
    Blocked,
    /// Zombie — exited but not reaped; a classic symptom the agents'
    /// "what's different" diagnosis picks up.
    Zombie,
}

/// Microstate accounting counters, in nanoseconds, as Solaris exposes
/// through `/proc` usage structs. "The accuracy of microstate
/// measurements is microsecond resolution and the overhead is
/// sub-microsecond" (§3.5).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Microstates {
    /// Time executing user code.
    pub user_ns: u64,
    /// Time executing system calls.
    pub system_ns: u64,
    /// Time waiting for CPU (latency).
    pub wait_cpu_ns: u64,
    /// Time blocked on I/O or page faults.
    pub blocked_ns: u64,
}

impl Microstates {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.user_ns + self.system_ns + self.wait_cpu_ns + self.blocked_ns
    }

    /// Fraction of accounted time actually on-CPU (user + system).
    pub fn on_cpu_fraction(&self) -> f64 {
        let t = self.total_ns();
        if t == 0 {
            0.0
        } else {
            (self.user_ns + self.system_ns) as f64 / t as f64
        }
    }
}

/// One entry in the process table.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id, unique within the server for its lifetime.
    pub pid: Pid,
    /// Command name, e.g. `oracle`, `httpd`, `lsf_mbatchd`,
    /// `intelliagent_cpu`.
    pub name: String,
    /// Command arguments (performance agents classify by name+args).
    pub args: String,
    /// Owning user name.
    pub user: String,
    /// Scheduling state.
    pub state: ProcState,
    /// CPU demand in compute-power units while `Running`.
    pub cpu_demand: f64,
    /// Resident memory in MB.
    pub mem_mb: f64,
    /// Disk I/O demand (fraction of the server's disk capacity).
    pub io_demand: f64,
    /// When the process started.
    pub started_at: SimTime,
    /// Accumulated microstate counters.
    pub micro: Microstates,
}

impl Process {
    /// The load this process currently places on its server.
    pub fn load(&self) -> LoadVector {
        match self.state {
            ProcState::Running => LoadVector {
                cpu_demand: self.cpu_demand,
                mem_demand_gb: self.mem_mb / 1024.0,
                io_demand: self.io_demand,
                runnable_procs: 1,
            },
            ProcState::Blocked => LoadVector {
                cpu_demand: 0.0,
                mem_demand_gb: self.mem_mb / 1024.0,
                io_demand: self.io_demand,
                runnable_procs: 0,
            },
            ProcState::Sleeping => LoadVector {
                cpu_demand: 0.0,
                mem_demand_gb: self.mem_mb / 1024.0,
                io_demand: 0.0,
                runnable_procs: 0,
            },
            ProcState::Zombie => LoadVector::default(),
        }
    }

    /// Advance microstate accounting across `dt`, splitting the elapsed
    /// time according to the process state and a crude 70/30 user/system
    /// split while on CPU. `cpu_starved` is the fraction of wanted CPU
    /// the scheduler could not deliver (run-queue pressure).
    pub fn account(&mut self, dt: SimDuration, cpu_starved: f64) {
        let ns = dt.as_secs() * 1_000_000_000;
        match self.state {
            ProcState::Running => {
                let starved = cpu_starved.clamp(0.0, 1.0);
                let on_cpu = ((1.0 - starved) * ns as f64) as u64;
                self.micro.user_ns += on_cpu * 7 / 10;
                self.micro.system_ns += on_cpu - on_cpu * 7 / 10;
                self.micro.wait_cpu_ns += ns - on_cpu;
            }
            ProcState::Blocked => self.micro.blocked_ns += ns,
            ProcState::Sleeping | ProcState::Zombie => {}
        }
    }
}

/// A server's process table.
#[derive(Debug, Clone, Default)]
pub struct ProcessTable {
    procs: BTreeMap<Pid, Process>,
    next_pid: u32,
}

impl ProcessTable {
    /// Empty table.
    pub fn new() -> Self {
        ProcessTable {
            procs: BTreeMap::new(),
            next_pid: 1,
        }
    }

    /// Spawn a process; returns its pid.
    #[allow(clippy::too_many_arguments)]
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        args: impl Into<String>,
        user: impl Into<String>,
        cpu_demand: f64,
        mem_mb: f64,
        io_demand: f64,
        now: SimTime,
    ) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Process {
                pid,
                name: name.into(),
                args: args.into(),
                user: user.into(),
                state: ProcState::Running,
                cpu_demand,
                mem_mb,
                io_demand,
                started_at: now,
                micro: Microstates::default(),
            },
        );
        pid
    }

    /// Kill a process outright (it disappears from the table).
    pub fn kill(&mut self, pid: Pid) -> Option<Process> {
        self.procs.remove(&pid)
    }

    /// Turn a process into a zombie (exited, unreaped).
    pub fn make_zombie(&mut self, pid: Pid) -> bool {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.state = ProcState::Zombie;
            p.cpu_demand = 0.0;
            p.io_demand = 0.0;
            p.mem_mb = 0.0;
            true
        } else {
            false
        }
    }

    /// Look up by pid.
    pub fn get(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// Mutable lookup by pid.
    pub fn get_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// All processes, pid order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = &Process> {
        self.procs.values()
    }

    /// All processes, mutable.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Process> {
        self.procs.values_mut()
    }

    /// Number of live entries (including zombies).
    pub fn len(&self) -> usize {
        self.procs.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }

    /// Processes whose command name matches exactly — the `pgrep -x`
    /// the agents use for "is the application process present".
    pub fn by_name<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Process> {
        self.procs.values().filter(move |p| p.name == name)
    }

    /// Count of non-zombie processes with the given name.
    pub fn live_count(&self, name: &str) -> usize {
        self.by_name(name)
            .filter(|p| p.state != ProcState::Zombie)
            .count()
    }

    /// Processes owned by a user (per-user workgroup accounting).
    pub fn by_user<'a>(&'a self, user: &'a str) -> impl Iterator<Item = &'a Process> {
        self.procs.values().filter(move |p| p.user == user)
    }

    /// Aggregate load placed on the server by every process.
    pub fn total_load(&self) -> LoadVector {
        self.procs
            .values()
            .fold(LoadVector::default(), |acc, p| acc.plus(p.load()))
    }

    /// Count of zombies (a diagnosis signal).
    pub fn zombie_count(&self) -> usize {
        self.procs
            .values()
            .filter(|p| p.state == ProcState::Zombie)
            .count()
    }

    /// Remove every process (server crash / reboot).
    pub fn clear(&mut self) {
        self.procs.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_with_two() -> (ProcessTable, Pid, Pid) {
        let mut t = ProcessTable::new();
        let a = t.spawn(
            "oracle",
            "-db trades",
            "oracle",
            2.0,
            2048.0,
            0.3,
            SimTime::ZERO,
        );
        let b = t.spawn("httpd", "-p 8080", "web", 0.2, 128.0, 0.02, SimTime::ZERO);
        (t, a, b)
    }

    #[test]
    fn pids_are_unique_and_monotone() {
        let (t, a, b) = table_with_two();
        assert_ne!(a, b);
        assert!(b > a);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn lookup_by_name_and_user() {
        let (t, _, _) = table_with_two();
        assert_eq!(t.by_name("oracle").count(), 1);
        assert_eq!(t.by_name("oracl").count(), 0); // exact match only
        assert_eq!(t.by_user("web").count(), 1);
        assert_eq!(t.live_count("oracle"), 1);
    }

    #[test]
    fn total_load_sums_running_processes() {
        let (t, _, _) = table_with_two();
        let l = t.total_load();
        assert!((l.cpu_demand - 2.2).abs() < 1e-12);
        assert!((l.mem_demand_gb - (2048.0 + 128.0) / 1024.0).abs() < 1e-12);
        assert_eq!(l.runnable_procs, 2);
    }

    #[test]
    fn zombies_carry_no_load_and_are_counted() {
        let (mut t, a, _) = table_with_two();
        assert!(t.make_zombie(a));
        assert_eq!(t.zombie_count(), 1);
        assert_eq!(t.live_count("oracle"), 0);
        let l = t.total_load();
        assert!((l.cpu_demand - 0.2).abs() < 1e-12);
        // Zombie stays in the table until reaped/killed.
        assert_eq!(t.len(), 2);
        assert!(t.kill(a).is_some());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn blocked_process_contributes_memory_and_io_only() {
        let (mut t, a, _) = table_with_two();
        t.get_mut(a).unwrap().state = ProcState::Blocked;
        let l = t.total_load();
        assert!((l.cpu_demand - 0.2).abs() < 1e-12);
        assert!(l.io_demand > 0.3); // oracle still doing I/O
        assert_eq!(l.runnable_procs, 1);
    }

    #[test]
    fn microstate_accounting_splits_time() {
        let (mut t, a, _) = table_with_two();
        let p = t.get_mut(a).unwrap();
        p.account(SimDuration::from_secs(10), 0.25);
        let ns = 10 * 1_000_000_000u64;
        assert_eq!(p.micro.total_ns(), ns);
        assert_eq!(p.micro.wait_cpu_ns, ns / 4);
        assert!(p.micro.user_ns > p.micro.system_ns);
        assert!((p.micro.on_cpu_fraction() - 0.75).abs() < 1e-9);
    }

    #[test]
    fn blocked_accounting_goes_to_blocked_bucket() {
        let (mut t, a, _) = table_with_two();
        let p = t.get_mut(a).unwrap();
        p.state = ProcState::Blocked;
        p.account(SimDuration::from_secs(3), 0.0);
        assert_eq!(p.micro.blocked_ns, 3_000_000_000);
        assert_eq!(p.micro.user_ns, 0);
    }

    #[test]
    fn kill_missing_pid_is_none() {
        let mut t = ProcessTable::new();
        assert!(t.kill(Pid(99)).is_none());
        assert!(!t.make_zombie(Pid(99)));
    }

    #[test]
    fn clear_empties_table() {
        let (mut t, _, _) = table_with_two();
        t.clear();
        assert!(t.is_empty());
        // New pids keep increasing after a clear (like a real kernel
        // within one boot).
        let p = t.spawn("x", "", "root", 0.1, 1.0, 0.0, SimTime::ZERO);
        assert!(p.0 >= 3);
    }
}
