//! The server aggregate: hardware + OS + processes + filesystem + cron.

use std::collections::BTreeMap;

use intelliqos_simkern::{SimDuration, SimRng, SimTime};

use crate::cron::Crontab;
use crate::fs::SimFs;
use crate::hardware::{ComponentHealth, HardwareComponent, HardwareSpec, OsKind};
use crate::ids::{ServerId, Site};
use crate::os::{LoadVector, OsObservables, OS_BASELINE_MEM_GB};
use crate::process::ProcessTable;

/// Power/OS state of a server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerState {
    /// Running normally.
    Up,
    /// Crashed / powered off; needs a reboot to recover.
    Down,
    /// Rebooting; becomes `Up` at the contained time.
    Rebooting {
        /// When the reboot completes.
        until: SimTime,
    },
}

/// How long a full reboot takes (boot + fsck + service bring-up happens
/// separately at the service layer).
pub const REBOOT_DURATION: SimDuration = SimDuration(8 * 60);

/// One simulated Unix server.
#[derive(Debug, Clone)]
pub struct Server {
    /// Identity within the datacenter.
    pub id: ServerId,
    /// Hostname, e.g. `db042`.
    pub hostname: String,
    /// Hardware configuration.
    pub spec: HardwareSpec,
    /// Geographic site.
    pub site: Site,
    /// Power state.
    pub state: ServerState,
    /// Process table (empty while down).
    pub procs: ProcessTable,
    /// Local filesystem.
    pub fs: SimFs,
    /// Crontab; commands are opaque tags dispatched by the world driver.
    pub cron: Crontab<String>,
    /// Health of each hardware component instance.
    components: BTreeMap<HardwareComponent, Vec<ComponentHealth>>,
    /// Interactive users currently logged in (reported in DGSPL).
    pub users_logged_in: u32,
    /// Extra CPU demand from sources not in the process table (e.g. a
    /// runaway-load performance fault), in compute-power units.
    pub external_cpu_demand: f64,
    /// Extra memory demand (GB) from such sources (e.g. a leak).
    pub external_mem_gb: f64,
    /// Extra I/O demand fraction from such sources.
    pub external_io_demand: f64,
    /// NTP synchronised — the paper assumes yes; human error can break
    /// it, confusing timestamp joins until repaired.
    pub ntp_synced: bool,
}

impl Server {
    /// A fresh, booted server with the standard filesystem layout and
    /// one healthy instance of each hardware component class (CPUs and
    /// disks get one instance per unit in the spec).
    pub fn new(id: ServerId, hostname: impl Into<String>, spec: HardwareSpec, site: Site) -> Self {
        let mut components = BTreeMap::new();
        for class in HardwareComponent::ALL {
            let count = match class {
                HardwareComponent::Cpu => spec.cpus,
                HardwareComponent::Disk => spec.disks,
                HardwareComponent::Memory => (spec.ram_gb / 2).max(1),
                HardwareComponent::Board | HardwareComponent::Nic => 2,
                HardwareComponent::PowerSupply => 2,
            };
            components.insert(class, vec![ComponentHealth::Healthy; count as usize]);
        }
        Server {
            id,
            hostname: hostname.into(),
            spec,
            site,
            state: ServerState::Up,
            procs: ProcessTable::new(),
            fs: SimFs::with_standard_layout(),
            cron: Crontab::new(),
            components,
            users_logged_in: 0,
            external_cpu_demand: 0.0,
            external_mem_gb: 0.0,
            external_io_demand: 0.0,
            ntp_synced: true,
        }
    }

    /// Is the server up?
    pub fn is_up(&self) -> bool {
        matches!(self.state, ServerState::Up)
    }

    /// Hard crash: processes die, state goes down.
    pub fn crash(&mut self) {
        self.procs.clear();
        self.state = ServerState::Down;
    }

    /// Begin a reboot; completes at `now + REBOOT_DURATION`.
    pub fn begin_reboot(&mut self, now: SimTime) -> SimTime {
        self.procs.clear();
        let until = now + REBOOT_DURATION;
        self.state = ServerState::Rebooting { until };
        until
    }

    /// Finish a reboot if its completion time has arrived.
    pub fn maybe_complete_reboot(&mut self, now: SimTime) -> bool {
        if let ServerState::Rebooting { until } = self.state {
            if now >= until {
                self.state = ServerState::Up;
                return true;
            }
        }
        false
    }

    /// Component health slots for a class.
    pub fn components(&self, class: HardwareComponent) -> &[ComponentHealth] {
        self.components
            .get(&class)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Set the health of one component instance. Returns false on a bad
    /// index.
    pub fn set_component_health(
        &mut self,
        class: HardwareComponent,
        index: usize,
        health: ComponentHealth,
    ) -> bool {
        if let Some(slot) = self
            .components
            .get_mut(&class)
            .and_then(|v| v.get_mut(index))
        {
            *slot = health;
            true
        } else {
            false
        }
    }

    /// Count of failed instances of a class.
    pub fn failed_count(&self, class: HardwareComponent) -> usize {
        self.components(class)
            .iter()
            .filter(|h| **h == ComponentHealth::Failed)
            .count()
    }

    /// Count of degraded instances of a class (latent hardware faults —
    /// correctable errors in logs).
    pub fn degraded_count(&self, class: HardwareComponent) -> usize {
        self.components(class)
            .iter()
            .filter(|h| **h == ComponentHealth::Degraded)
            .count()
    }

    /// Effective hardware spec after offlining failed CPUs/disks. A
    /// failed board or both PSUs take the machine down entirely — the
    /// caller handles that via [`Server::fatal_hardware_fault`].
    pub fn effective_spec(&self) -> HardwareSpec {
        let mut spec = self.spec;
        spec.cpus = spec
            .cpus
            .saturating_sub(self.failed_count(HardwareComponent::Cpu) as u32)
            .max(1);
        spec.disks = spec
            .disks
            .saturating_sub(self.failed_count(HardwareComponent::Disk) as u32)
            .max(1);
        let failed_mem = self.failed_count(HardwareComponent::Memory) as u32 * 2;
        spec.ram_gb = spec.ram_gb.saturating_sub(failed_mem).max(1);
        spec
    }

    /// True when a hardware failure is fatal to the whole machine: any
    /// failed board, or every PSU gone.
    pub fn fatal_hardware_fault(&self) -> bool {
        self.failed_count(HardwareComponent::Board) > 0
            || (!self.components(HardwareComponent::PowerSupply).is_empty()
                && self.failed_count(HardwareComponent::PowerSupply)
                    == self.components(HardwareComponent::PowerSupply).len())
    }

    /// Aggregate hidden load: OS baseline + process table + external
    /// fault-injected demand.
    pub fn load(&self) -> LoadVector {
        let mut l = self.procs.total_load();
        l.mem_demand_gb += OS_BASELINE_MEM_GB + self.external_mem_gb;
        l.cpu_demand += self.external_cpu_demand;
        l.io_demand += self.external_io_demand;
        l
    }

    /// Sample the observable OS metrics (what the Unix tools would
    /// print). Returns `None` when the server is not up — tools cannot
    /// run on a dead machine, which is itself a diagnostic signal.
    pub fn observe(&self, rng: &mut SimRng) -> Option<OsObservables> {
        if !self.is_up() {
            return None;
        }
        Some(OsObservables::observe(
            &self.effective_spec(),
            &self.load(),
            rng,
        ))
    }

    /// CPU utilisation fraction (0–1+) implied by current load — the
    /// hidden truth, used by crash-probability models.
    pub fn cpu_utilization(&self) -> f64 {
        let cap = self.effective_spec().compute_power().max(1e-9);
        self.load().cpu_demand / cap
    }

    /// Memory utilisation fraction (0–1+).
    pub fn mem_utilization(&self) -> f64 {
        let ram = self.effective_spec().ram_gb as f64;
        self.load().mem_demand_gb / ram.max(1e-9)
    }

    /// Operating system of this server.
    pub fn os(&self) -> OsKind {
        self.spec.model.os()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ServerModel;

    fn server() -> Server {
        Server::new(
            ServerId(1),
            "db001",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN-DC1"),
        )
    }

    #[test]
    fn new_server_is_up_and_healthy() {
        let s = server();
        assert!(s.is_up());
        assert_eq!(s.components(HardwareComponent::Cpu).len(), 8);
        assert_eq!(s.components(HardwareComponent::Disk).len(), 6);
        assert_eq!(s.failed_count(HardwareComponent::Cpu), 0);
        assert!(!s.fatal_hardware_fault());
        assert!(s.fs.exists("/logs") || s.fs.list("/logs").is_empty()); // layout present
    }

    #[test]
    fn crash_clears_processes() {
        let mut s = server();
        s.procs
            .spawn("oracle", "", "oracle", 1.0, 512.0, 0.1, SimTime::ZERO);
        s.crash();
        assert!(!s.is_up());
        assert!(s.procs.is_empty());
        assert!(s.observe(&mut SimRng::stream(0, "t")).is_none());
    }

    #[test]
    fn reboot_cycle() {
        let mut s = server();
        s.crash();
        let until = s.begin_reboot(SimTime::from_mins(10));
        assert_eq!(until, SimTime::from_mins(18));
        assert!(!s.maybe_complete_reboot(SimTime::from_mins(17)));
        assert!(!s.is_up());
        assert!(s.maybe_complete_reboot(SimTime::from_mins(18)));
        assert!(s.is_up());
        // Idempotent afterwards.
        assert!(!s.maybe_complete_reboot(SimTime::from_mins(19)));
    }

    #[test]
    fn failed_cpu_reduces_effective_power() {
        let mut s = server();
        let full = s.effective_spec().compute_power();
        assert!(s.set_component_health(HardwareComponent::Cpu, 0, ComponentHealth::Failed));
        assert!(s.set_component_health(HardwareComponent::Cpu, 1, ComponentHealth::Failed));
        let reduced = s.effective_spec().compute_power();
        assert!(reduced < full);
        assert_eq!(s.effective_spec().cpus, 6);
        assert!(!s.fatal_hardware_fault()); // CPUs offline, machine survives
    }

    #[test]
    fn board_failure_is_fatal() {
        let mut s = server();
        s.set_component_health(HardwareComponent::Board, 0, ComponentHealth::Failed);
        assert!(s.fatal_hardware_fault());
    }

    #[test]
    fn psu_redundancy() {
        let mut s = server();
        s.set_component_health(HardwareComponent::PowerSupply, 0, ComponentHealth::Failed);
        assert!(!s.fatal_hardware_fault()); // one PSU left
        s.set_component_health(HardwareComponent::PowerSupply, 1, ComponentHealth::Failed);
        assert!(s.fatal_hardware_fault());
    }

    #[test]
    fn degraded_components_are_latent() {
        let mut s = server();
        s.set_component_health(HardwareComponent::Memory, 0, ComponentHealth::Degraded);
        assert_eq!(s.degraded_count(HardwareComponent::Memory), 1);
        // Degraded ≠ failed: no capacity impact yet.
        assert_eq!(s.effective_spec().ram_gb, 8);
    }

    #[test]
    fn load_includes_os_baseline_and_external() {
        let mut s = server();
        assert!(s.load().mem_demand_gb >= OS_BASELINE_MEM_GB);
        s.external_cpu_demand = 3.0;
        s.external_mem_gb = 2.0;
        let l = s.load();
        assert!(l.cpu_demand >= 3.0);
        assert!(l.mem_demand_gb >= 2.5);
    }

    #[test]
    fn utilization_fractions() {
        let mut s = server();
        // Demand exactly equal to capacity ⇒ utilisation 1.0.
        s.external_cpu_demand = s.effective_spec().compute_power();
        assert!((s.cpu_utilization() - 1.0).abs() < 1e-9);
        assert!(s.mem_utilization() > 0.0);
    }

    #[test]
    fn observe_reflects_runaway_external_load() {
        let mut s = server();
        s.external_cpu_demand = s.effective_spec().compute_power() * 2.0;
        let o = s.observe(&mut SimRng::stream(1, "obs")).unwrap();
        assert!(o.cpu_util_pct > 90.0);
    }

    #[test]
    fn set_component_health_bad_index() {
        let mut s = server();
        assert!(!s.set_component_health(HardwareComponent::Board, 99, ComponentHealth::Failed));
    }
}
