//! Operating-system observable metrics and their dynamics.
//!
//! Intelliagents never see "the truth" of a server — they see what
//! `vmstat`, `iostat`, `sar` and friends print. This module turns the
//! server's hidden state (aggregate CPU / memory / I/O demand against
//! the hardware capacity) into exactly the observables §3.6 of the paper
//! lists:
//!
//! * memory: scan rate (`sr`), page-outs (`po`), page faults, free memory;
//! * CPU: run-queue length, overall idle %, blocked processes on I/O;
//! * disk: read/write service times (`asvc_t`, `wsvc_t`) and throughput.
//!
//! The dynamics are deliberately simple queueing-flavoured formulas: a
//! saturated CPU grows a run queue, memory pressure wakes the page
//! scanner, a saturated disk's service times blow up. What matters for
//! the reproduction is that the *observable consequences* of overload
//! and runaway processes look to an agent like they look on a real Unix
//! box — thresholds fire on the same signals the paper's agents used.

use intelliqos_simkern::SimRng;

use crate::hardware::HardwareSpec;

/// Hidden aggregate load placed on a server by its processes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LoadVector {
    /// CPU demand in compute-power units (same unit as
    /// [`HardwareSpec::compute_power`]). May exceed capacity.
    pub cpu_demand: f64,
    /// Resident memory demand in GB (includes the OS baseline).
    pub mem_demand_gb: f64,
    /// Disk I/O demand as a fraction of the disk subsystem's capacity
    /// (1.0 = the disks are exactly saturated).
    pub io_demand: f64,
    /// Number of runnable processes contributing to the CPU demand.
    pub runnable_procs: u32,
}

impl LoadVector {
    /// Sum of two load vectors.
    pub fn plus(self, other: LoadVector) -> LoadVector {
        LoadVector {
            cpu_demand: self.cpu_demand + other.cpu_demand,
            mem_demand_gb: self.mem_demand_gb + other.mem_demand_gb,
            io_demand: self.io_demand + other.io_demand,
            runnable_procs: self.runnable_procs + other.runnable_procs,
        }
    }
}

/// One sample of what the standard Unix tools report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsObservables {
    /// CPU utilisation, 0–100 %.
    pub cpu_util_pct: f64,
    /// CPU idle, 0–100 % (complement of utilisation).
    pub cpu_idle_pct: f64,
    /// Processes waiting for a CPU (`vmstat` r column).
    pub run_queue: f64,
    /// Processes blocked on I/O (`vmstat` b column).
    pub blocked_procs: f64,
    /// Free memory in MB.
    pub free_mem_mb: f64,
    /// Page scan rate, pages/s (`vmstat` sr).
    pub scan_rate: f64,
    /// Page-outs per second (`vmstat` po).
    pub page_outs: f64,
    /// Page faults per second.
    pub page_faults: f64,
    /// Average read service time, ms (`iostat` asvc_t).
    pub asvc_t_ms: f64,
    /// Average write service time, ms (`iostat` wsvc_t).
    pub wsvc_t_ms: f64,
    /// Disk throughput in MB/s.
    pub disk_throughput_mbps: f64,
}

/// Memory the OS itself keeps resident, in GB.
pub const OS_BASELINE_MEM_GB: f64 = 0.5;

/// Unloaded disk service time in milliseconds (period-typical 10k RPM
/// SCSI).
pub const DISK_BASE_SVC_MS: f64 = 6.0;

/// Per-disk streaming throughput in MB/s.
pub const DISK_BASE_THROUGHPUT_MBPS: f64 = 25.0;

impl OsObservables {
    /// Compute the observables for `load` on `spec`, with small
    /// measurement jitter drawn from `rng` (tools never report perfectly
    /// smooth numbers, and thresholds must tolerate that).
    pub fn observe(spec: &HardwareSpec, load: &LoadVector, rng: &mut SimRng) -> OsObservables {
        let capacity = spec.compute_power().max(1e-9);
        let u = (load.cpu_demand / capacity).max(0.0);
        let jitter = |rng: &mut SimRng, x: f64, rel: f64| -> f64 {
            (x * (1.0 + rng.normal(0.0, rel))).max(0.0)
        };

        let cpu_util_pct = jitter(rng, (u.min(1.0)) * 100.0, 0.02).min(100.0);
        let cpu_idle_pct = (100.0 - cpu_util_pct).max(0.0);

        // Excess demand queues up roughly in proportion to how far past
        // saturation we are, bounded by how many processes are runnable.
        let excess = (u - 1.0).max(0.0);
        let run_queue =
            jitter(rng, excess * spec.cpus as f64, 0.10).min(load.runnable_procs as f64);

        // Memory: free = RAM − demand; the page scanner wakes as free
        // memory approaches zero (Solaris-style lotsfree behaviour).
        let ram_gb = spec.ram_gb as f64;
        let free_gb = (ram_gb - load.mem_demand_gb).max(0.0);
        let free_mem_mb = jitter(rng, free_gb * 1024.0, 0.01);
        let lotsfree_gb = (ram_gb / 16.0).max(0.0625);
        let pressure = if free_gb < lotsfree_gb {
            1.0 - free_gb / lotsfree_gb
        } else {
            0.0
        };
        let scan_rate = jitter(rng, pressure * 4000.0, 0.15);
        let page_outs = jitter(rng, pressure * 800.0, 0.15);
        let page_faults = jitter(rng, 20.0 + pressure * 3000.0 + u * 50.0, 0.10);

        // Disk: M/M/1-flavoured service-time inflation near saturation.
        let io_u = load.io_demand.max(0.0);
        let slowdown = 1.0 / (1.0 - io_u.min(0.95)).max(0.05);
        let asvc_t_ms = jitter(rng, DISK_BASE_SVC_MS * slowdown, 0.08);
        let wsvc_t_ms = jitter(rng, DISK_BASE_SVC_MS * 1.3 * slowdown, 0.08);
        let disk_capacity = spec.disks as f64 * DISK_BASE_THROUGHPUT_MBPS;
        let disk_throughput_mbps = jitter(rng, io_u.min(1.0) * disk_capacity, 0.05);

        // Processes block on I/O when the disks are slow and on memory
        // when the scanner is running.
        let blocked_procs = jitter(rng, io_u.min(2.0) * 2.0 + pressure * 5.0, 0.20);

        OsObservables {
            cpu_util_pct,
            cpu_idle_pct,
            run_queue,
            blocked_procs,
            free_mem_mb,
            scan_rate,
            page_outs,
            page_faults,
            asvc_t_ms,
            wsvc_t_ms,
            disk_throughput_mbps,
        }
    }

    /// Crude single-number health score in [0, 1] used by status agents
    /// for DGSPL load reporting: 0 = idle, 1 = fully saturated or worse.
    pub fn load_score(&self) -> f64 {
        let cpu = self.cpu_util_pct / 100.0 + self.run_queue * 0.05;
        let mem = (self.scan_rate / 4000.0).min(1.5);
        let io = ((self.asvc_t_ms / DISK_BASE_SVC_MS) - 1.0).max(0.0) * 0.1;
        (cpu.max(mem) + io).min(1.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hardware::ServerModel;

    fn rng() -> SimRng {
        SimRng::stream(1, "os-test")
    }

    fn spec() -> HardwareSpec {
        HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6)
    }

    #[test]
    fn idle_server_is_quiet() {
        let mut r = rng();
        let o = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 0.0,
                mem_demand_gb: OS_BASELINE_MEM_GB,
                io_demand: 0.0,
                runnable_procs: 0,
            },
            &mut r,
        );
        assert!(o.cpu_util_pct < 1.0);
        assert!(o.cpu_idle_pct > 99.0);
        assert_eq!(o.run_queue, 0.0);
        assert!(o.scan_rate < 1.0);
        assert!(o.page_outs < 1.0);
        assert!(o.free_mem_mb > 7000.0);
        assert!(o.asvc_t_ms < 8.0);
    }

    #[test]
    fn saturated_cpu_builds_run_queue() {
        let mut r = rng();
        let cap = spec().compute_power();
        let o = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: cap * 2.0, // 200 % demand
                mem_demand_gb: 2.0,
                io_demand: 0.1,
                runnable_procs: 64,
            },
            &mut r,
        );
        assert!(o.cpu_util_pct > 95.0);
        assert!(o.run_queue > 4.0, "run_queue = {}", o.run_queue);
    }

    #[test]
    fn run_queue_bounded_by_runnable_procs() {
        let mut r = rng();
        let cap = spec().compute_power();
        let o = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: cap * 10.0,
                mem_demand_gb: 1.0,
                io_demand: 0.0,
                runnable_procs: 3,
            },
            &mut r,
        );
        assert!(o.run_queue <= 3.0);
    }

    #[test]
    fn memory_pressure_wakes_scanner() {
        let mut r = rng();
        let o = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 1.0,
                mem_demand_gb: 7.95, // nearly all of 8 GB
                io_demand: 0.1,
                runnable_procs: 10,
            },
            &mut r,
        );
        assert!(o.scan_rate > 1000.0, "scan_rate = {}", o.scan_rate);
        assert!(o.page_outs > 200.0, "page_outs = {}", o.page_outs);
        assert!(o.free_mem_mb < 200.0);
    }

    #[test]
    fn ample_memory_means_no_scanning() {
        let mut r = rng();
        let o = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 1.0,
                mem_demand_gb: 4.0,
                io_demand: 0.1,
                runnable_procs: 10,
            },
            &mut r,
        );
        assert_eq!(o.scan_rate, 0.0);
        assert_eq!(o.page_outs, 0.0);
    }

    #[test]
    fn disk_saturation_inflates_service_times() {
        let mut r = rng();
        let quiet = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 1.0,
                mem_demand_gb: 2.0,
                io_demand: 0.1,
                runnable_procs: 4,
            },
            &mut r,
        );
        let busy = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 1.0,
                mem_demand_gb: 2.0,
                io_demand: 0.95,
                runnable_procs: 4,
            },
            &mut r,
        );
        assert!(
            busy.asvc_t_ms > quiet.asvc_t_ms * 5.0,
            "quiet = {} busy = {}",
            quiet.asvc_t_ms,
            busy.asvc_t_ms
        );
        assert!(busy.wsvc_t_ms > busy.asvc_t_ms); // writes are slower
        assert!(busy.blocked_procs > quiet.blocked_procs);
    }

    #[test]
    fn load_score_orders_conditions() {
        let mut r = rng();
        let cap = spec().compute_power();
        let idle = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: 0.5,
                mem_demand_gb: 1.0,
                io_demand: 0.05,
                runnable_procs: 2,
            },
            &mut r,
        );
        let slammed = OsObservables::observe(
            &spec(),
            &LoadVector {
                cpu_demand: cap * 1.5,
                mem_demand_gb: 7.9,
                io_demand: 0.9,
                runnable_procs: 50,
            },
            &mut r,
        );
        assert!(idle.load_score() < 0.3);
        assert!(slammed.load_score() > 0.9);
    }

    #[test]
    fn load_vector_addition() {
        let a = LoadVector {
            cpu_demand: 1.0,
            mem_demand_gb: 2.0,
            io_demand: 0.1,
            runnable_procs: 3,
        };
        let b = LoadVector {
            cpu_demand: 0.5,
            mem_demand_gb: 1.0,
            io_demand: 0.2,
            runnable_procs: 2,
        };
        let c = a.plus(b);
        assert_eq!(c.cpu_demand, 1.5);
        assert_eq!(c.mem_demand_gb, 3.0);
        assert!((c.io_demand - 0.3).abs() < 1e-12);
        assert_eq!(c.runnable_procs, 5);
    }
}
