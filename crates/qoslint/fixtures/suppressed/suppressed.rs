// Fixture: every hazard carries a reasoned suppression — zero findings.
// qoslint::allow-file(wall-clock, fixture models a sanctioned measurement shim)

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn first(xs: &[u32]) -> u32 {
    // qoslint::allow(no-panic, callers guarantee a non-empty slice)
    *xs.first().unwrap()
}

pub fn export_len(t: &mut Trace, xs: &[u32], at: SimTime) {
    // qoslint::allow(unordered-collections, only the set's size reaches the sink)
    let seen: std::collections::HashSet<u32> = xs.iter().copied().collect();
    for v in &seen {
        touch(v);
    }
    t.emit(at, sub, code, || seen.len().to_string());
}

pub fn prototype(t: &mut Trace, at: SimTime) {
    // qoslint::allow(trace-unknown-category, prototype channel pending registration)
    t.emit(at, Subsystem::Fault, "proto-channel", || String::new());
}

pub fn replay(world: &mut World, inc: IncidentId, at: SimTime) {
    world.ledger.restore(inc, at, Actor::Human, "fixed");
    // qoslint::allow(lifecycle-order, replay tooling rewinds closed incidents)
    world.ledger.detect(inc, at);
}
