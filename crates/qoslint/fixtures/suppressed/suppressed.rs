// Fixture: every hazard carries a reasoned suppression — zero findings.
// qoslint::allow-file(wall-clock, fixture models a sanctioned measurement shim)

pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}

pub fn first(xs: &[u32]) -> u32 {
    // qoslint::allow(no-panic, callers guarantee a non-empty slice)
    *xs.first().unwrap()
}

pub fn scratch_set(xs: &[u32]) -> usize {
    // qoslint::allow(unordered-collections, local scratch set whose order never escapes)
    let seen: std::collections::HashSet<u32> = xs.iter().copied().collect();
    seen.len()
}
