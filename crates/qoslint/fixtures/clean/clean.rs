// Fixture: determinism-clean code — ordered collections, no wall
// clock, panics only inside the test module (exempt by rule).
use std::collections::BTreeMap;

pub fn tally(xs: &[&str]) -> BTreeMap<String, usize> {
    let mut seen = BTreeMap::new();
    for x in xs {
        *seen.entry(x.to_string()).or_insert(0usize) += 1;
    }
    seen
}

// Mentioning HashMap or Instant in a comment (or "in a string") is fine.
pub const NOTE: &str = "HashMap and Instant are banned in code, not prose";

// A lookup-only map beside a trace sink is fine: the flow-aware rule
// fires only when the map's *iteration order* can reach the sink.
pub fn lookup_only(t: &mut Trace, m: &std::collections::HashMap<u32, u32>, at: SimTime) {
    if let Some(v) = m.get(&1) {
        t.emit(at, Subsystem::Fault, "inject", || v.to_string());
    }
}

// Ledger transitions in automaton order are fine.
pub fn heal(world: &mut World, at: SimTime) {
    let inc = world.ledger.open_scoped(cat, &svc, desc, at);
    world.ledger.detect(inc, at);
    world.ledger.diagnose(inc, at);
    world.ledger.attempt(inc, at, Actor::Agent, "restart");
    world.ledger.restore(inc, at, Actor::Agent, "restarted");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies() {
        let t = tally(&["a", "b", "a"]);
        assert_eq!(*t.get("a").unwrap(), 2);
    }
}
