// Fixture: determinism-clean code — ordered collections, no wall
// clock, panics only inside the test module (exempt by rule).
use std::collections::BTreeMap;

pub fn tally(xs: &[&str]) -> BTreeMap<String, usize> {
    let mut seen = BTreeMap::new();
    for x in xs {
        *seen.entry(x.to_string()).or_insert(0usize) += 1;
    }
    seen
}

// Mentioning HashMap or Instant in a comment (or "in a string") is fine.
pub const NOTE: &str = "HashMap and Instant are banned in code, not prose";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies() {
        let t = tally(&["a", "b", "a"]);
        assert_eq!(*t.get("a").unwrap(), 2);
    }
}
