// Fixture: exactly one lifecycle-order finding — detect after restore
// on the same incident is unreachable in the lifecycle automaton
// (repaired is terminal).
pub fn close_out(world: &mut World, inc: IncidentId, at: SimTime) {
    world.ledger.restore(inc, at, Actor::Human, "fixed");
    world.ledger.detect(inc, at);
}
