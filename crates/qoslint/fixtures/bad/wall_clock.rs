// Fixture: exactly one wall-clock finding.
pub fn elapsed_ms() -> u128 {
    let start = std::time::Instant::now();
    start.elapsed().as_millis()
}
