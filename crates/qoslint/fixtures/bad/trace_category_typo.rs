// Fixture: exactly one trace-category-typo finding — "db-carsh" is
// edit distance 2 from the registered "db-crash", so the lint suggests
// the intended spelling instead of reporting a plain unknown.
pub fn crash(t: &mut Trace, at: SimTime) {
    t.emit(at, Subsystem::Fault, "db-carsh", || String::new());
}
