// Fixture: exactly one trace-undocumented finding — a CategorySpec
// whose doc string is empty (the registry must explain every channel).
pub const EXTRA: CategorySpec = CategorySpec {
    subsystem: Subsystem::Fault,
    code: "inject",
    doc: "",
};
