// Fixture: exactly one trace-wrong-subsystem finding — "db-crash" is a
// registered category, but it belongs to the fault subsystem, not lsf.
pub fn crash(t: &mut Trace, at: SimTime) {
    t.emit(at, Subsystem::Lsf, "db-crash", || String::new());
}
