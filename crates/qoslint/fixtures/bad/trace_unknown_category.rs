// Fixture: exactly one trace-unknown-category finding — the `slo`
// category is nowhere in simkern::trace::TRACE_REGISTRY and not close
// to any registered spelling (the real slo codes are burn-alert,
// burn-scope, and classified).
pub fn announce(t: &mut Trace, at: SimTime) {
    t.emit(at, Subsystem::Slo, "budget-chime", || String::new());
}
