// Fixture: exactly one trace-unknown-category finding — the category
// is nowhere in simkern::trace::TRACE_REGISTRY and not close to any
// registered spelling.
pub fn announce(t: &mut Trace, at: SimTime) {
    t.emit(at, Subsystem::Fault, "made-up-channel", || String::new());
}
