// Fixture: exactly one unordered-collections finding — the map's
// iteration order flows into a trace sink in the same function.
pub fn export(t: &mut Trace, xs: &[&str]) {
    let mut seen = std::collections::HashMap::new();
    for x in xs {
        *seen.entry(*x).or_insert(0usize) += 1;
    }
    for (k, v) in &seen {
        t.emit(*v, sub, code, || k.to_string());
    }
}
