// Fixture: exactly one unordered-collections finding.
pub fn tally(xs: &[&str]) -> usize {
    let mut seen = std::collections::HashMap::new();
    for x in xs {
        *seen.entry(*x).or_insert(0usize) += 1;
    }
    seen.len()
}
