// Fixture: exactly one no-panic finding.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap()
}
