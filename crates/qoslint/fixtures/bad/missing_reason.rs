// Fixture: a reasonless suppression — the target is silenced, but the
// missing reason is itself exactly one bad-suppression finding.
pub fn first(xs: &[u32]) -> u32 {
    *xs.first().unwrap() // qoslint::allow(no-panic)
}
