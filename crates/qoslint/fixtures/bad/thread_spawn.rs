// Fixture: exactly one thread-spawn finding.
pub fn fire_and_forget() {
    std::thread::spawn(|| {});
}
