//! Fixture corpus: each bad snippet trips exactly one rule, the clean
//! and suppressed snippets trip none. `scripts/ci.sh` additionally runs
//! the `qoslint` binary over `fixtures/bad` as a must-fail self-test.

use std::path::Path;

use intelliqos_qoslint::rules::scan_source;
use intelliqos_qoslint::Diagnostic;

fn scan_fixture(rel: &str) -> Vec<Diagnostic> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(rel);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    scan_source(rel, &text)
}

#[test]
fn each_bad_fixture_trips_exactly_its_rule() {
    let cases = [
        ("bad/wall_clock.rs", "wall-clock"),
        ("bad/unordered_map.rs", "unordered-collections"),
        ("bad/thread_spawn.rs", "thread-spawn"),
        ("bad/no_panic.rs", "no-panic"),
        ("bad/missing_reason.rs", "bad-suppression"),
        ("bad/trace_unknown_category.rs", "trace-unknown-category"),
        ("bad/trace_category_typo.rs", "trace-category-typo"),
        ("bad/trace_wrong_subsystem.rs", "trace-wrong-subsystem"),
        ("bad/trace_undocumented.rs", "trace-undocumented"),
        ("bad/lifecycle_order.rs", "lifecycle-order"),
    ];
    for (file, rule) in cases {
        let diags = scan_fixture(file);
        assert_eq!(
            diags.len(),
            1,
            "{file}: want exactly one finding, got {diags:?}"
        );
        assert_eq!(diags[0].rule, rule, "{file}: wrong rule: {diags:?}");
        assert!(diags[0].line > 0, "{file}: finding should carry a line");
    }
}

#[test]
fn clean_fixture_is_clean() {
    let diags = scan_fixture("clean/clean.rs");
    assert!(
        diags.is_empty(),
        "clean fixture should scan clean: {diags:?}"
    );
}

#[test]
fn suppressed_fixture_is_clean_because_reasons_are_given() {
    let diags = scan_fixture("suppressed/suppressed.rs");
    assert!(
        diags.is_empty(),
        "reasoned suppressions silence cleanly: {diags:?}"
    );
}
