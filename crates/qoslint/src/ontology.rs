//! Ontology constraint checking (lint front-end 2).
//!
//! The intelliagents reason causally over the static ontologies — SLKT
//! templates, ISSL bootstrap lists, and regenerated DGSPLs — so a
//! malformed ontology does not fail loudly: a cyclic startup ordering
//! just never converges, a duplicate port claim turns into phantom
//! connectivity diagnoses, a dangling dependency into an agent that
//! waits forever. Following Dearle et al.'s constraint-based deployment
//! argument (arXiv:1006.4730), these constraints are checked **before**
//! the world runs:
//!
//! | rule | flags |
//! |------|-------|
//! | `startup-cycle` | dependency cycles in the site-wide service graph (cycle printed) |
//! | `duplicate-port` | two co-hosted apps claiming the same nonzero port |
//! | `dangling-dependency` | `depends_on` naming a service no SLKT provides |
//! | `dangling-service` | ISSL entries referencing services/hosts absent from the SLKTs |
//! | `dangling-process` | empty, duplicated, or zero-count process expectations |
//! | `issl-overflow` | an ISSL over the paper's 200-entry cap (§3.1) |
//! | `dgspl-schema` | malformed DGSPL entries (empty names, NaN/negative load, zero hardware, duplicates) |
//!
//! `intelliqos_core::World` runs [`check_site`] at construction and
//! refuses to build on any finding; the `ontology_check` bench binary
//! runs the same pass standalone and drops a report under
//! `results/evidence/`.

use std::collections::BTreeMap;

use intelliqos_ontology::dgspl::Dgspl;
use intelliqos_ontology::issl::{Issl, IsslEntry, ISSL_MAX_ENTRIES};
use intelliqos_ontology::slkt::Slkt;

use crate::diag::{Diagnostic, Severity};

/// Everything the site-level check looks at. The DGSPL is optional
/// because none exists yet at world-construction time.
pub struct SiteOntology<'a> {
    /// One SLKT per server.
    pub slkts: &'a [Slkt],
    /// The ISSL chunks from the admin shared pool.
    pub issls: &'a [Issl],
    /// The latest regenerated DGSPL, when one exists.
    pub dgspl: Option<&'a Dgspl>,
}

/// Run every ontology rule over a site. Empty result = valid.
pub fn check_site(site: &SiteOntology) -> Vec<Diagnostic> {
    let mut diags = check_slkts(site.slkts);
    for (i, issl) in site.issls.iter().enumerate() {
        diags.extend(check_issl_entries(issl.entries(), &format!("issl_{i}")));
    }
    diags.extend(check_issls_against_slkts(site.issls, site.slkts));
    if let Some(dgspl) = site.dgspl {
        diags.extend(check_dgspl(dgspl));
    }
    diags
}

fn err(rule: &'static str, location: String, message: String, hint: &str) -> Diagnostic {
    Diagnostic {
        rule,
        severity: Severity::Error,
        location,
        line: 0,
        col: 0,
        message,
        hint: hint.to_string(),
    }
}

fn slkt_loc(host: &str, app: &str) -> String {
    format!("slkt://{host}/{app}")
}

/// SLKT-level rules: startup cycles, duplicate ports, dangling
/// dependencies, process-expectation anomalies.
pub fn check_slkts(slkts: &[Slkt]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Site-wide app universe: name → hosting server.
    let mut host_of: BTreeMap<&str, &str> = BTreeMap::new();
    for slkt in slkts {
        for app in &slkt.apps {
            host_of.insert(&app.name, &slkt.hostname);
        }
    }

    // Dangling dependencies + the dependency graph for cycle detection
    // (edges restricted to resolvable targets so one mistake yields one
    // finding, not one per rule).
    let mut graph: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for slkt in slkts {
        for app in &slkt.apps {
            let edges = graph.entry(&app.name).or_default();
            for dep in &app.depends_on {
                if host_of.contains_key(dep.as_str()) {
                    edges.push(dep);
                } else {
                    diags.push(err(
                        "dangling-dependency",
                        slkt_loc(&slkt.hostname, &app.name),
                        format!("'{}' depends on '{dep}', which no SLKT provides", app.name),
                        "every depends_on target must be an app in some server's SLKT; \
                         fix the name or deploy the missing service",
                    ));
                }
            }
        }
    }
    for cycle in find_cycles(&graph) {
        let head = cycle[0];
        let host = host_of.get(head).copied().unwrap_or("?");
        let mut path = cycle.join(" -> ");
        path.push_str(&format!(" -> {head}"));
        diags.push(err(
            "startup-cycle",
            slkt_loc(host, head),
            format!("startup-sequence dependency cycle: {path}"),
            "no startup order satisfies these dependencies; break the cycle so \
             bring-up and agent restarts can converge",
        ));
    }

    // Per-host rules.
    for slkt in slkts {
        let mut port_claim: BTreeMap<u16, &str> = BTreeMap::new();
        for app in &slkt.apps {
            if app.port != 0 {
                if let Some(first) = port_claim.get(&app.port) {
                    diags.push(err(
                        "duplicate-port",
                        slkt_loc(&slkt.hostname, &app.name),
                        format!(
                            "port {} on {} claimed by both '{first}' and '{}'",
                            app.port, slkt.hostname, app.name
                        ),
                        "co-hosted services must listen on distinct ports; the agents' \
                         connectivity probes cannot tell these apart",
                    ));
                } else {
                    port_claim.insert(app.port, &app.name);
                }
            }
            diags.extend(check_processes(slkt, app));
        }
    }
    diags
}

fn check_processes(slkt: &Slkt, app: &intelliqos_ontology::slkt::SlktApp) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let loc = slkt_loc(&slkt.hostname, &app.name);
    if app.processes.is_empty() {
        diags.push(err(
            "dangling-process",
            loc.clone(),
            format!("'{}' lists no expected processes", app.name),
            "the OS agent screens the process table against this list; an empty \
             list makes the service invisible to diagnosis",
        ));
    }
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    for (name, count) in &app.processes {
        if *count == 0 {
            diags.push(err(
                "dangling-process",
                loc.clone(),
                format!("'{}' expects zero instances of process '{name}'", app.name),
                "a zero count is unobservable; drop the entry or give it a \
                 positive expected count",
            ));
        }
        if seen.insert(name, ()).is_some() {
            diags.push(err(
                "dangling-process",
                loc.clone(),
                format!("'{}' lists process '{name}' twice", app.name),
                "merge the duplicate entries into one expectation with the \
                 combined count",
            ));
        }
    }
    diags
}

/// One ISSL's local rules (the paper's §3.1 200-entry cap, duplicate
/// hostnames). Operates on a raw entry slice so hand-maintained lists
/// can be checked before [`Issl`]'s own cap enforcement applies.
pub fn check_issl_entries(entries: &[IsslEntry], list: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if entries.len() > ISSL_MAX_ENTRIES {
        diags.push(err(
            "issl-overflow",
            format!("issl://{list}"),
            format!(
                "{} entries exceed the {ISSL_MAX_ENTRIES}-entry ISSL cap",
                entries.len()
            ),
            "split the list — a site larger than the cap maintains several \
             ISSLs (§3.1)",
        ));
    }
    let mut seen: BTreeMap<&str, ()> = BTreeMap::new();
    for e in entries {
        if seen.insert(&e.hostname, ()).is_some() {
            diags.push(err(
                "dangling-service",
                format!("issl://{list}/{}", e.hostname),
                format!("hostname '{}' appears twice in {list}", e.hostname),
                "one bootstrap entry per host; merge the service lists",
            ));
        }
    }
    diags
}

/// Cross-check: every ISSL reference must be backed by the SLKTs.
pub fn check_issls_against_slkts(issls: &[Issl], slkts: &[Slkt]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let by_host: BTreeMap<&str, &Slkt> = slkts.iter().map(|s| (s.hostname.as_str(), s)).collect();
    for (i, issl) in issls.iter().enumerate() {
        for e in issl.entries() {
            let loc = format!("issl://issl_{i}/{}", e.hostname);
            let Some(slkt) = by_host.get(e.hostname.as_str()) else {
                diags.push(err(
                    "dangling-service",
                    loc,
                    format!("ISSL host '{}' has no SLKT", e.hostname),
                    "every bootstrap host needs a should-be template; remove the \
                     entry or install the SLKT",
                ));
                continue;
            };
            for svc in &e.services {
                if slkt.app(svc).is_none() {
                    diags.push(err(
                        "dangling-service",
                        loc.clone(),
                        format!(
                            "ISSL lists service '{svc}' on '{}', but its SLKT does not",
                            e.hostname
                        ),
                        "the bootstrap list and the template must agree on what \
                         runs where",
                    ));
                }
            }
        }
    }
    diags
}

/// DGSPL schema rules: every entry must be usable by the shortlist
/// ordering ("best choice always first" breaks on NaN loads and empty
/// names).
pub fn check_dgspl(dgspl: &Dgspl) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut seen: BTreeMap<(&str, &str), ()> = BTreeMap::new();
    for (i, e) in dgspl.entries.iter().enumerate() {
        let loc = format!("dgspl://entry[{i}]/{}", e.hostname);
        if e.hostname.is_empty() || e.service.is_empty() || e.app_type.is_empty() {
            diags.push(err(
                "dgspl-schema",
                loc.clone(),
                format!("entry {i} lacks a hostname, service, or app_type"),
                "regenerate from DLSPs; partial entries cannot be submitted to",
            ));
        }
        if e.load.is_nan() || e.load < 0.0 {
            diags.push(err(
                "dgspl-schema",
                loc.clone(),
                format!("entry {i} ('{}') has invalid load {}", e.service, e.load),
                "load scores must be finite and non-negative or the shortlist \
                 ordering is undefined",
            ));
        }
        if e.cpus == 0 || e.ram_gb == 0 || e.compute_power <= 0.0 || e.compute_power.is_nan() {
            diags.push(err(
                "dgspl-schema",
                loc.clone(),
                format!(
                    "entry {i} ('{}') has impossible hardware (cpus={}, ram_gb={}, power={})",
                    e.service, e.cpus, e.ram_gb, e.compute_power
                ),
                "the SLKT equal-or-higher-power replacement ordering needs real \
                 hardware numbers",
            ));
        }
        if !e.hostname.is_empty() && seen.insert((&e.hostname, &e.service), ()).is_some() {
            diags.push(err(
                "dgspl-schema",
                loc,
                format!("service '{}' on '{}' appears twice", e.service, e.hostname),
                "one availability entry per (host, service); deduplicate at \
                 regeneration",
            ));
        }
    }
    diags
}

/// Find elementary cycles in the dependency graph (one representative
/// path per strongly-cyclic region). Kahn-style: peel nodes with no
/// unresolved dependencies; whatever remains is cyclic, and a walk
/// restricted to the remainder recovers a concrete cycle to print.
fn find_cycles<'a>(graph: &BTreeMap<&'a str, Vec<&'a str>>) -> Vec<Vec<&'a str>> {
    // out_deg = unresolved dependency count; peel from the leaves of
    // the dependency relation upward.
    let mut deg: BTreeMap<&str, usize> = BTreeMap::new();
    let mut rev: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (&n, deps) in graph {
        deg.entry(n).or_insert(0);
        for &d in deps {
            *deg.entry(n).or_insert(0) += 1;
            rev.entry(d).or_default().push(n);
        }
    }
    let mut queue: Vec<&str> = deg
        .iter()
        .filter(|(_, &c)| c == 0)
        .map(|(&n, _)| n)
        .collect();
    while let Some(n) = queue.pop() {
        if let Some(dependants) = rev.get(n) {
            for &m in dependants {
                if let Some(c) = deg.get_mut(m) {
                    *c -= 1;
                    if *c == 0 {
                        queue.push(m);
                    }
                }
            }
        }
    }
    let cyclic: BTreeMap<&str, ()> = deg
        .iter()
        .filter(|(_, &c)| c > 0)
        .map(|(&n, _)| (n, ()))
        .collect();

    // Walk each unvisited cyclic node until a repeat closes a loop.
    let mut cycles = Vec::new();
    let mut visited: BTreeMap<&str, ()> = BTreeMap::new();
    for &start in cyclic.keys() {
        if visited.contains_key(start) {
            continue;
        }
        let mut path: Vec<&str> = Vec::new();
        let mut cur = start;
        loop {
            if let Some(pos) = path.iter().position(|&p| p == cur) {
                let cycle: Vec<&str> = path[pos..].to_vec();
                for &n in &cycle {
                    visited.insert(n, ());
                }
                cycles.push(cycle);
                break;
            }
            if visited.contains_key(cur) {
                break; // joined a cycle already reported
            }
            visited.insert(cur, ());
            path.push(cur);
            // Every cyclic node keeps at least one edge into the cyclic
            // set; follow the first.
            match graph
                .get(cur)
                .and_then(|deps| deps.iter().find(|d| cyclic.contains_key(**d)))
            {
                Some(&next) => cur = next,
                None => break,
            }
        }
    }
    cycles
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_ontology::slkt::{SlktApp, SlktHardware};

    fn app(name: &str, port: u16, deps: &[&str]) -> SlktApp {
        SlktApp {
            name: name.into(),
            app_type: "db-oracle".into(),
            version: "1".into(),
            binary_path: "/apps/bin".into(),
            port,
            processes: vec![(format!("{name}_proc"), 1)],
            startup_sequence: vec!["start".into()],
            depends_on: deps.iter().map(|d| d.to_string()).collect(),
            mounts: vec![],
            connect_timeout_secs: 30,
        }
    }

    fn slkt(host: &str, apps: Vec<SlktApp>) -> Slkt {
        Slkt {
            hostname: host.into(),
            ip: "10.0.0.1".into(),
            hardware: SlktHardware {
                model: "Sun-E4500".into(),
                cpus: 8,
                ram_gb: 8,
                disks: 6,
            },
            apps,
        }
    }

    fn rules_of(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn a_clean_site_passes() {
        let slkts = vec![
            slkt("db000", vec![app("db", 1521, &[])]),
            slkt("fe000", vec![app("fe", 9000, &["db"])]),
        ];
        assert!(check_slkts(&slkts).is_empty());
    }

    #[test]
    fn startup_cycle_is_found_and_printed() {
        let slkts = vec![slkt(
            "h",
            vec![
                app("a", 1, &["b"]),
                app("b", 2, &["c"]),
                app("c", 3, &["a"]),
            ],
        )];
        let d = check_slkts(&slkts);
        assert_eq!(rules_of(&d), vec!["startup-cycle"]);
        assert!(
            d[0].message.contains("a -> b -> c -> a")
                || d[0].message.contains("b -> c -> a -> b")
                || d[0].message.contains("c -> a -> b -> c"),
            "cycle path printed: {}",
            d[0].message
        );
    }

    #[test]
    fn self_dependency_is_a_cycle() {
        let slkts = vec![slkt("h", vec![app("a", 1, &["a"])])];
        assert_eq!(rules_of(&check_slkts(&slkts)), vec!["startup-cycle"]);
    }

    #[test]
    fn two_disjoint_cycles_yield_two_findings() {
        let slkts = vec![slkt(
            "h",
            vec![
                app("a", 1, &["b"]),
                app("b", 2, &["a"]),
                app("c", 3, &["d"]),
                app("d", 4, &["c"]),
            ],
        )];
        let d = check_slkts(&slkts);
        assert_eq!(rules_of(&d), vec!["startup-cycle", "startup-cycle"]);
    }

    #[test]
    fn duplicate_port_only_on_same_host_and_nonzero() {
        let clash = vec![slkt("h", vec![app("a", 1521, &[]), app("b", 1521, &[])])];
        assert_eq!(rules_of(&check_slkts(&clash)), vec!["duplicate-port"]);
        // Same port on different hosts is fine; port 0 means "none".
        let ok = vec![
            slkt("h1", vec![app("a", 1521, &[])]),
            slkt(
                "h2",
                vec![app("b", 1521, &[]), app("c", 0, &[]), app("d", 0, &[])],
            ),
        ];
        assert!(check_slkts(&ok).is_empty());
    }

    #[test]
    fn dangling_dependency_names_both_sides() {
        let slkts = vec![slkt("h", vec![app("fe", 9000, &["ghost-db"])])];
        let d = check_slkts(&slkts);
        assert_eq!(rules_of(&d), vec!["dangling-dependency"]);
        assert!(d[0].message.contains("fe") && d[0].message.contains("ghost-db"));
    }

    #[test]
    fn process_anomalies_are_flagged() {
        let mut empty = app("a", 1, &[]);
        empty.processes.clear();
        let mut zero = app("b", 2, &[]);
        zero.processes = vec![("p".into(), 0)];
        let mut dup = app("c", 3, &[]);
        dup.processes = vec![("p".into(), 1), ("p".into(), 2)];
        let d = check_slkts(&[slkt("h", vec![empty, zero, dup])]);
        assert_eq!(
            rules_of(&d),
            vec!["dangling-process", "dangling-process", "dangling-process"]
        );
    }

    #[test]
    fn issl_cap_and_duplicate_hosts() {
        let entries: Vec<IsslEntry> = (0..201)
            .map(|i| IsslEntry {
                hostname: format!("h{i}"),
                ip: "10.0.0.1".into(),
                services: vec![],
            })
            .collect();
        let d = check_issl_entries(&entries, "issl_0");
        assert_eq!(rules_of(&d), vec!["issl-overflow"]);
        assert!(d[0].message.contains("201"));

        let dup = vec![entries[0].clone(), entries[0].clone()];
        assert_eq!(
            rules_of(&check_issl_entries(&dup, "x")),
            vec!["dangling-service"]
        );
    }

    #[test]
    fn issl_slkt_cross_check() {
        let slkts = vec![slkt("known", vec![app("svc", 1, &[])])];
        let mut issl = Issl::new();
        issl.add(IsslEntry {
            hostname: "known".into(),
            ip: "1".into(),
            services: vec!["svc".into(), "phantom".into()],
        })
        .unwrap();
        issl.add(IsslEntry {
            hostname: "ghost-host".into(),
            ip: "2".into(),
            services: vec![],
        })
        .unwrap();
        let d = check_issls_against_slkts(&[issl], &slkts);
        assert_eq!(rules_of(&d), vec!["dangling-service", "dangling-service"]);
    }

    #[test]
    fn dgspl_schema_violations() {
        use intelliqos_ontology::dgspl::DgsplEntry;
        let good = DgsplEntry {
            hostname: "h".into(),
            server_type: "Sun-E4500".into(),
            os: "Solaris".into(),
            ram_gb: 8,
            cpus: 8,
            compute_power: 7.2,
            app_type: "db-oracle".into(),
            version: "1".into(),
            load: 0.5,
            users: 1,
            location: "London".into(),
            site: "LDN".into(),
            service: "svc".into(),
        };
        assert!(check_dgspl(&Dgspl {
            generated_at_secs: 0,
            entries: vec![good.clone()]
        })
        .is_empty());

        let mut nan_load = good.clone();
        nan_load.service = "svc-nan".into();
        nan_load.load = f64::NAN;
        let mut no_hw = good.clone();
        no_hw.service = "svc-nohw".into();
        no_hw.cpus = 0;
        let dup = good.clone();
        let dg = Dgspl {
            generated_at_secs: 0,
            entries: vec![good, dup, nan_load, no_hw],
        };
        let rules = rules_of(&check_dgspl(&dg));
        assert_eq!(rules.len(), 3);
        assert!(rules.iter().all(|r| *r == "dgspl-schema"));
    }

    #[test]
    fn check_site_composes_all_rules() {
        let slkts = vec![slkt("h", vec![app("a", 1, &["a"])])];
        let site = SiteOntology {
            slkts: &slkts,
            issls: &[],
            dgspl: None,
        };
        assert_eq!(rules_of(&check_site(&site)), vec!["startup-cycle"]);
    }
}
