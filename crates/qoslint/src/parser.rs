//! A lightweight item/call-site parser layered on the lexer (lint
//! front-end 2).
//!
//! This is deliberately *not* a Rust grammar. The analyses built on it
//! (trace ontology, lifecycle ordering, flow-aware collection rules)
//! need exactly three structural facts the token-stream rules cannot
//! see:
//!
//! 1. **function extents** — which lines belong to which `fn` body;
//! 2. **method-call expressions** — receiver chain, method name, and
//!    the argument list split at top-level commas (multi-line calls
//!    included);
//! 3. **literal arguments** — the raw source text of each argument,
//!    recovered from the original lines (the lexer blanks literal
//!    *contents* in the code shadow, but columns are preserved, so the
//!    raw text at the same columns is the literal).
//!
//! Known limits, by design: no expression grammar (an argument is just
//! its text), no type or name resolution (a receiver is the dotted
//! chain to the left of the call), no macro expansion (code inside
//! `macro_rules!` bodies is scanned as-is), and closures with multiple
//! parameters inside an argument list would confuse the comma splitter
//! (none of the patterns under analysis use them). Non-literal
//! arguments are skipped by the analyses, never guessed at.

use crate::lexer::LexedFile;

/// The flattened code shadow of a file plus the aligned raw text:
/// structure comes from the shadow (literals blanked, columns kept),
/// argument text comes from the raw side at the same positions.
pub struct Shadow {
    chars: Vec<char>,
    raw: Vec<char>,
    /// 1-based (line, col) for every position, including the `\n`
    /// joiners.
    pos: Vec<(usize, usize)>,
    in_test: Vec<bool>,
}

impl Shadow {
    fn build(file: &LexedFile, raw_text: &str) -> Shadow {
        let raw_lines: Vec<Vec<char>> = raw_text.lines().map(|l| l.chars().collect()).collect();
        let mut chars = Vec::new();
        let mut raw = Vec::new();
        let mut pos = Vec::new();
        let mut in_test = Vec::with_capacity(file.lines.len());
        for line in &file.lines {
            in_test.push(line.in_test);
            let raw_line = raw_lines.get(line.number - 1);
            for (col, c) in line.code.chars().enumerate() {
                chars.push(c);
                raw.push(raw_line.and_then(|l| l.get(col)).copied().unwrap_or(' '));
                pos.push((line.number, col + 1));
            }
            chars.push('\n');
            raw.push('\n');
            pos.push((line.number, line.code.chars().count() + 1));
        }
        Shadow {
            chars,
            raw,
            pos,
            in_test,
        }
    }

    /// Number of positions.
    pub fn len(&self) -> usize {
        self.chars.len()
    }

    /// Whether the shadow is empty (no lines at all).
    pub fn is_empty(&self) -> bool {
        self.chars.is_empty()
    }

    /// Shadow character at `i` (`\0` past the end).
    pub fn at(&self, i: usize) -> char {
        self.chars.get(i).copied().unwrap_or('\0')
    }

    /// 1-based (line, col) of position `i`.
    pub fn linecol(&self, i: usize) -> (usize, usize) {
        self.pos
            .get(i)
            .copied()
            .unwrap_or_else(|| self.pos.last().copied().unwrap_or((1, 1)))
    }

    /// Is 1-based `line` inside a `#[cfg(test)]` region?
    pub fn line_in_test(&self, line: usize) -> bool {
        self.in_test.get(line - 1).copied().unwrap_or(false)
    }

    /// Raw source text over `[start, end)` with newlines dropped and
    /// whitespace runs collapsed — the canonical argument text.
    pub fn raw_text(&self, start: usize, end: usize) -> String {
        let s: String = self.raw[start.min(self.raw.len())..end.min(self.raw.len())]
            .iter()
            .collect();
        s.split_whitespace().collect::<Vec<_>>().join(" ")
    }

    /// Every position where `word` matches the shadow on identifier
    /// boundaries.
    pub fn find_words(&self, word: &str) -> Vec<usize> {
        let needle: Vec<char> = word.chars().collect();
        let is_ident = |c: char| c.is_alphanumeric() || c == '_';
        let mut out = Vec::new();
        let mut i = 0usize;
        while i + needle.len() <= self.chars.len() {
            if self.chars[i..i + needle.len()] == needle[..] {
                let before_ok = i == 0 || !is_ident(self.chars[i - 1]);
                let after_ok = self
                    .chars
                    .get(i + needle.len())
                    .map(|&c| !is_ident(c))
                    .unwrap_or(true);
                if before_ok && after_ok {
                    out.push(i);
                    i += needle.len();
                    continue;
                }
            }
            i += 1;
        }
        out
    }

    /// First position at or after `i` holding a non-whitespace char.
    pub fn next_nonws(&self, mut i: usize) -> usize {
        while i < self.chars.len() && self.chars[i].is_whitespace() {
            i += 1;
        }
        i
    }

    /// Position of the delimiter closing the `(`/`[`/`{` at `open`,
    /// tracking all three bracket kinds together. `None` when
    /// unbalanced.
    pub fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i64;
        for i in open..self.chars.len() {
            match self.chars[i] {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                _ => {}
            }
        }
        None
    }
}

/// One argument of a call expression.
#[derive(Debug, Clone)]
pub struct Arg {
    /// Raw source text, whitespace-collapsed.
    pub text: String,
    /// 1-based line of the argument's first token.
    pub line: usize,
    /// 1-based column of the argument's first token.
    pub col: usize,
}

/// One `recv.method(args…)` call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Dotted receiver chain to the left of the call (whitespace
    /// removed), e.g. `self.ledger`. Empty when the receiver is not a
    /// simple chain (a call result, an expression).
    pub receiver: String,
    /// Method name.
    pub method: String,
    /// Arguments, split at top-level commas.
    pub args: Vec<Arg>,
    /// 1-based line of the method name.
    pub line: usize,
    /// 1-based column of the method name.
    pub col: usize,
    /// 1-based line where the receiver chain starts (the statement
    /// line, for binding lookups).
    pub recv_line: usize,
    /// 1-based column where the receiver chain starts on `recv_line`.
    pub recv_col: usize,
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
}

/// One `fn` item with a body.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based inclusive line range of the body (braces included).
    pub body_lines: (usize, usize),
    /// Shadow position range of the body, exclusive of the braces.
    pub body_span: (usize, usize),
    /// Inside a `#[cfg(test)]` region.
    pub in_test: bool,
    /// Indices into [`FileModel::calls`] of calls inside this body
    /// (innermost-fn attribution), in source order.
    pub calls: Vec<usize>,
}

/// The per-file item/call-site model the analyses consume.
pub struct FileModel {
    /// All `fn` items with bodies, in source order.
    pub fns: Vec<FnItem>,
    /// All method-call expressions, in source order.
    pub calls: Vec<CallSite>,
    /// The flattened shadow, for analyses that need ad-hoc structure
    /// (e.g. struct-literal field scanning).
    pub shadow: Shadow,
}

/// Parse a lexed file (plus its raw text) into the item/call model.
pub fn parse(file: &LexedFile, raw_text: &str) -> FileModel {
    let shadow = Shadow::build(file, raw_text);
    let mut fns: Vec<FnItem> = Vec::new();
    let mut calls: Vec<CallSite> = Vec::new();

    let is_ident_start = |c: char| c.is_alphabetic() || c == '_';
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';

    let mut depth: i64 = 0;
    // (fn index, declaration depth) awaiting its body brace.
    let mut pending: Option<(usize, i64)> = None;
    // Open fn bodies: (fn index, depth inside the body).
    let mut stack: Vec<(usize, i64)> = Vec::new();

    let mut i = 0usize;
    while i < shadow.len() {
        let c = shadow.at(i);
        match c {
            '{' => {
                if let Some((idx, d)) = pending {
                    if d == depth {
                        fns[idx].body_span.0 = i + 1;
                        fns[idx].body_lines.0 = shadow.linecol(i).0;
                        depth += 1;
                        stack.push((idx, depth));
                        pending = None;
                        i += 1;
                        continue;
                    }
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if let Some(&(idx, d)) = stack.last() {
                    if depth < d {
                        fns[idx].body_span.1 = i;
                        fns[idx].body_lines.1 = shadow.linecol(i).0;
                        stack.pop();
                    }
                }
            }
            ';' => {
                if let Some((_, d)) = pending {
                    // Trait method declaration: no body follows.
                    if d == depth {
                        pending = None;
                    }
                }
            }
            'f' if shadow.at(i + 1) == 'n'
                && (i == 0 || !is_ident(shadow.at(i - 1)))
                && !is_ident(shadow.at(i + 2)) =>
            {
                // `fn` keyword: read the name (absent for fn-pointer
                // types, which we ignore).
                let mut j = shadow.next_nonws(i + 2);
                if is_ident_start(shadow.at(j)) {
                    let name_start = j;
                    while is_ident(shadow.at(j)) {
                        j += 1;
                    }
                    let name: String = (name_start..j).map(|k| shadow.at(k)).collect();
                    let (line, _) = shadow.linecol(i);
                    fns.push(FnItem {
                        name,
                        line,
                        body_lines: (line, line),
                        body_span: (i, i),
                        in_test: shadow.line_in_test(line),
                        calls: Vec::new(),
                    });
                    pending = Some((fns.len() - 1, depth));
                    i = j;
                    continue;
                }
            }
            '.' if is_ident_start(shadow.at(i + 1)) => {
                // Candidate method call: `.name` then `(`.
                let mut j = i + 1;
                while is_ident(shadow.at(j)) {
                    j += 1;
                }
                let open = shadow.next_nonws(j);
                if shadow.at(open) == '(' {
                    let method: String = (i + 1..j).map(|k| shadow.at(k)).collect();
                    if let Some(close) = shadow.matching_close(open) {
                        let (recv, recv_start) = receiver_chain(&shadow, i);
                        let (line, col) = shadow.linecol(i + 1);
                        let (recv_line, recv_col) = shadow.linecol(recv_start);
                        calls.push(CallSite {
                            receiver: recv,
                            method,
                            args: split_args(&shadow, open, close),
                            line,
                            col,
                            recv_line,
                            recv_col,
                            in_test: shadow.line_in_test(line),
                        });
                        if let Some(&(idx, _)) = stack.last() {
                            fns[idx].calls.push(calls.len() - 1);
                        }
                        // Continue *inside* the argument list so nested
                        // calls are found too.
                        i = open + 1;
                        continue;
                    }
                }
                i = j;
                continue;
            }
            _ => {}
        }
        i += 1;
    }

    FileModel { fns, calls, shadow }
}

/// Walk the receiver chain backwards from the `.` at `dot`: identifier
/// chars, `.`, `:`, with whitespace tolerated between segments (for
/// rustfmt-broken chains). Stops at anything else; returns the chain
/// with whitespace removed and the position where it starts.
fn receiver_chain(shadow: &Shadow, dot: usize) -> (String, usize) {
    let is_chain = |c: char| c.is_alphanumeric() || c == '_' || c == '.' || c == ':';
    let mut start = dot;
    let mut k = dot;
    while k > 0 {
        let c = shadow.at(k - 1);
        if is_chain(c) {
            k -= 1;
            start = k;
        } else if c.is_whitespace() {
            // Look through the whitespace: keep going only if the chain
            // continues on the other side.
            let mut p = k - 1;
            while p > 0 && shadow.at(p - 1).is_whitespace() {
                p -= 1;
            }
            if p > 0 && is_chain(shadow.at(p - 1)) {
                k = p;
            } else {
                break;
            }
        } else {
            break;
        }
    }
    let chain: String = (start..dot)
        .map(|k| shadow.at(k))
        .filter(|c| !c.is_whitespace())
        .collect();
    (chain, start)
}

/// Split the argument list between `open` and `close` (exclusive) at
/// top-level commas.
fn split_args(shadow: &Shadow, open: usize, close: usize) -> Vec<Arg> {
    let mut args = Vec::new();
    let mut depth = 0i64;
    let mut seg_start = open + 1;
    let push = |from: usize, to: usize, args: &mut Vec<Arg>| {
        let at = shadow.next_nonws(from);
        if at >= to {
            return; // empty segment (no args at all)
        }
        let (line, col) = shadow.linecol(at);
        args.push(Arg {
            text: shadow.raw_text(at, to),
            line,
            col,
        });
    };
    for i in open + 1..close {
        match shadow.at(i) {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth -= 1,
            ',' if depth == 0 => {
                push(seg_start, i, &mut args);
                seg_start = i + 1;
            }
            _ => {}
        }
    }
    push(seg_start, close, &mut args);
    args
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn model(src: &str) -> FileModel {
        parse(&lex("t.rs", src), src)
    }

    #[test]
    fn fn_extents_cover_bodies_and_nest() {
        let src = "fn outer() {\n    fn inner(x: u32) -> u32 {\n        x\n    }\n    inner(1);\n}\nfn later() {}\n";
        let m = model(src);
        let names: Vec<&str> = m.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["outer", "inner", "later"]);
        assert_eq!(m.fns[0].body_lines, (1, 6));
        assert_eq!(m.fns[1].body_lines, (2, 4));
        assert_eq!(m.fns[2].body_lines, (7, 7));
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src = "trait T {\n    fn sig(&self) -> u32;\n    fn has_body(&self) -> u32 {\n        1\n    }\n}\n";
        let m = model(src);
        assert_eq!(m.fns.len(), 2);
        assert_eq!(m.fns[1].name, "has_body");
        assert_eq!(m.fns[1].body_lines, (3, 5));
    }

    #[test]
    fn method_calls_capture_receiver_method_and_literal_args() {
        let src = "fn f(&mut self) {\n    self.trace.emit(now, Subsystem::Fault, \"inject\", || x());\n}\n";
        let m = model(src);
        let emit = m.calls.iter().find(|c| c.method == "emit").unwrap();
        assert_eq!(emit.receiver, "self.trace");
        assert_eq!(emit.line, 2);
        assert_eq!(emit.args.len(), 4);
        assert_eq!(emit.args[1].text, "Subsystem::Fault");
        assert_eq!(emit.args[2].text, "\"inject\"");
        // The nested `x()` call is found too, attributed to `f`.
        assert!(m.calls.iter().any(|c| c.method == "emit"));
        assert_eq!(m.fns[0].calls.len(), m.calls.len());
    }

    #[test]
    fn multiline_chains_keep_their_receiver() {
        let src = "fn f(&mut self) {\n    self.trace\n        .emit_corr(now, Subsystem::Slo, \"burn-alert\", Some(inc.0), || {\n            format!(\"x={}\", 1)\n        });\n}\n";
        let m = model(src);
        let call = m.calls.iter().find(|c| c.method == "emit_corr").unwrap();
        assert_eq!(call.receiver, "self.trace");
        assert_eq!(call.recv_line, 2);
        assert_eq!(call.args.len(), 5);
        assert_eq!(call.args[2].text, "\"burn-alert\"");
        assert_eq!(call.args[2].line, 3);
    }

    #[test]
    fn commas_inside_nested_brackets_do_not_split() {
        let src = "fn f() {\n    q.push(vec![1, 2], (a, b), g(x, y));\n}\n";
        let m = model(src);
        let call = m.calls.iter().find(|c| c.method == "push").unwrap();
        assert_eq!(call.args.len(), 3);
        assert_eq!(call.args[0].text, "vec![1, 2]");
        assert_eq!(call.args[1].text, "(a, b)");
        assert_eq!(call.args[2].text, "g(x, y)");
    }

    #[test]
    fn literal_text_is_recovered_from_raw_lines() {
        // The shadow blanks string contents; the model must still see
        // the category literal.
        let src =
            "fn f() {\n    t.emit(at, Subsystem::Admin, \"cron-repair\", || String::new());\n}\n";
        let m = model(src);
        let call = &m.calls[m.fns[0].calls[0]];
        assert_eq!(call.args[2].text, "\"cron-repair\"");
    }

    #[test]
    fn test_code_is_flagged() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() {\n        tr.emit(a, Subsystem::Fault, \"nope\", || s());\n    }\n}\n";
        let m = model(src);
        assert!(m.fns[0].in_test);
        assert!(m.calls.iter().all(|c| c.in_test));
    }
}
