//! The determinism rule engine (lint front-end 1).
//!
//! Three token-level rules plus one suppression-hygiene rule, all tuned
//! to the hazards that matter for replay determinism and the upcoming
//! multi-site sharded runs:
//!
//! | rule | severity | flags |
//! |------|----------|-------|
//! | `wall-clock` | error | `Instant` / `SystemTime` outside the metrics clock shim |
//! | `thread-spawn` | error | `thread::spawn` outside the sanctioned `thread::scope` helper |
//! | `no-panic` | warning | `.unwrap()` / `.expect(` in non-test library code |
//! | `bad-suppression` | error | `qoslint::allow` without a reason, or naming an unknown rule |
//!
//! The flow- and item-aware rules (`unordered-collections`, the
//! `trace-*` ontology family, `lifecycle-order`) live in
//! [`crate::analysis`] on top of the [`crate::parser`] item model;
//! [`scan_source`] runs both engines and applies one suppression
//! vocabulary to the merged findings.
//!
//! Suppress a finding in place with `// qoslint::allow(rule, reason)`
//! (same line, or alone on the line above), or for a whole file with
//! `// qoslint::allow-file(rule, reason)`. The reason is mandatory: a
//! reasonless suppression still silences its target but surfaces as a
//! `bad-suppression` finding, so the gate stays red until the why is
//! written down.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, LexedFile, Suppression};

/// Static description of one source rule (drives scanning and the
/// rendered catalogue).
pub struct Rule {
    /// Stable id, used in diagnostics and suppressions.
    pub id: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Code patterns that trigger the rule.
    pub patterns: &'static [Pattern],
    /// One-line description for the catalogue.
    pub summary: &'static str,
    /// Fix hint attached to findings.
    pub hint: &'static str,
}

/// How a rule pattern matches the code shadow.
pub enum Pattern {
    /// Match the text only when not embedded in a larger identifier.
    Word(&'static str),
    /// Match the text anywhere in the code.
    Substr(&'static str),
}

/// The determinism rule catalogue.
pub const RULES: &[Rule] = &[
    Rule {
        id: "wall-clock",
        severity: Severity::Error,
        patterns: &[Pattern::Word("Instant"), Pattern::Word("SystemTime")],
        summary: "wall-clock reads outside the metrics clock shim",
        hint: "derive times from SimTime, or route measurement through the \
               simkern::metrics profiler (the sanctioned wall-clock shim)",
    },
    Rule {
        id: "thread-spawn",
        severity: Severity::Error,
        patterns: &[Pattern::Substr("thread::spawn")],
        summary: "unscoped thread creation",
        hint: "use std::thread::scope so shard threads join deterministically \
               before their results merge",
    },
    Rule {
        id: "no-panic",
        severity: Severity::Warning,
        patterns: &[Pattern::Substr(".unwrap()"), Pattern::Substr(".expect(")],
        summary: "panic paths in non-test library code",
        hint: "return a Result or handle the None; if the invariant is real, \
               keep it and suppress with qoslint::allow(no-panic, why)",
    },
];

/// Id of the suppression-hygiene rule (not pattern-driven).
pub const BAD_SUPPRESSION: &str = "bad-suppression";

/// Is `id` a rule a suppression may name?
pub fn known_rule(id: &str) -> bool {
    id == BAD_SUPPRESSION
        || RULES.iter().any(|r| r.id == id)
        || crate::analysis::ANALYSIS_RULES.iter().any(|r| r.id == id)
}

/// Scan one file's text with both engines (token rules and item-graph
/// analyses). Returns only unsuppressed findings (plus any
/// suppression-hygiene findings), sorted by position.
pub fn scan_source(path: &str, text: &str) -> Vec<Diagnostic> {
    let file = lex(path, text);
    let model = crate::parser::parse(&file, text);
    let mut diags = scan_lexed(&file);
    for d in crate::analysis::analyze(&file, &model) {
        if !suppressed(&file, d.rule, d.line) {
            diags.push(d);
        }
    }
    diags.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    diags
}

/// Scan an already-lexed file with the token rules only.
pub fn scan_lexed(file: &LexedFile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Suppression hygiene first: malformed suppressions are findings in
    // their own right, but well-formed-but-reasonless ones still
    // silence their target (one finding per mistake, not two).
    for s in &file.suppressions {
        if !known_rule(&s.rule) {
            diags.push(suppression_diag(
                file,
                s,
                format!("suppression names unknown rule '{}'", s.rule),
            ));
        } else if s.reason.is_empty() {
            diags.push(suppression_diag(
                file,
                s,
                format!("qoslint::allow({}) without a reason", s.rule),
            ));
        }
    }

    for line in &file.lines {
        if line.in_test {
            continue;
        }
        for rule in RULES {
            for pat in rule.patterns {
                for col in matches_of(&line.code, pat) {
                    if suppressed(file, rule.id, line.number) {
                        continue;
                    }
                    diags.push(Diagnostic {
                        rule: rule.id,
                        severity: rule.severity,
                        location: file.path.clone(),
                        line: line.number,
                        col: col + 1,
                        message: format!(
                            "{}: `{}`",
                            rule.summary,
                            pattern_text(pat).trim_end_matches('(')
                        ),
                        hint: rule.hint.to_string(),
                    });
                }
            }
        }
    }
    diags
}

fn suppression_diag(file: &LexedFile, s: &Suppression, message: String) -> Diagnostic {
    Diagnostic {
        rule: BAD_SUPPRESSION,
        severity: Severity::Error,
        location: file.path.clone(),
        line: s.line,
        col: 1,
        message,
        hint: "write qoslint::allow(rule, why-this-is-sound) — the reason is \
               part of the contract"
            .to_string(),
    }
}

/// Is `rule` suppressed at `line` (by a rule-named file-scope or
/// line-scope allow)? Reasonless suppressions still count — their
/// missing reason is reported separately.
fn suppressed(file: &LexedFile, rule: &str, line: usize) -> bool {
    file.suppressions
        .iter()
        .any(|s| s.rule == rule && (s.file_scope || s.applies_to == line))
}

fn pattern_text(p: &Pattern) -> &'static str {
    match p {
        Pattern::Word(t) | Pattern::Substr(t) => t,
    }
}

/// Byte columns (0-based) where `pat` matches `code`.
fn matches_of(code: &str, pat: &Pattern) -> Vec<usize> {
    let (needle, word) = match pat {
        Pattern::Word(t) => (*t, true),
        Pattern::Substr(t) => (*t, false),
    };
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(needle) {
        let at = from + pos;
        from = at + needle.len();
        if word {
            let before = code[..at].chars().next_back();
            let after = code[at + needle.len()..].chars().next();
            let is_ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
            if is_ident(before) || is_ident(after) {
                continue;
            }
        }
        out.push(at);
    }
    out
}

/// Render the rule catalogue (the `--rules` CLI flag).
pub fn render_catalogue() -> String {
    let mut out = String::from("qoslint determinism rules:\n");
    for r in RULES {
        out.push_str(&format!(
            "  {:>24}  {:7}  {}\n",
            r.id,
            r.severity.to_string(),
            r.summary
        ));
    }
    for r in crate::analysis::ANALYSIS_RULES {
        out.push_str(&format!(
            "  {:>24}  {:7}  {}\n",
            r.id,
            r.severity.to_string(),
            r.summary
        ));
    }
    out.push_str(&format!(
        "  {BAD_SUPPRESSION:>24}  error    qoslint::allow without a reason, or naming an unknown rule\n"
    ));
    out.push_str(
        "\nsuppress with `// qoslint::allow(rule, reason)` on (or directly above) the line,\n\
         or `// qoslint::allow-file(rule, reason)` for a whole file; the reason is mandatory.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_rule_fires_on_its_hazard() {
        let cases = [
            ("let t = Instant::now();", "wall-clock"),
            ("let s = SystemTime::now();", "wall-clock"),
            (
                "fn f(t: &mut T) {\n    let s: HashSet<u32> = HashSet::new();\n    for v in s.iter() {\n        t.emit(*v, Subsystem::Fault, \"inject\", || String::new());\n    }\n}",
                "unordered-collections",
            ),
            ("std::thread::spawn(|| {});", "thread-spawn"),
            ("let v = x.unwrap();", "no-panic"),
            ("let v = x.expect(\"why\");", "no-panic"),
        ];
        for (src, rule) in cases {
            let d = scan_source("t.rs", src);
            assert!(
                d.iter().any(|d| d.rule == rule),
                "{src:?} should trigger {rule}, got {d:?}"
            );
        }
    }

    #[test]
    fn words_do_not_match_inside_identifiers() {
        assert!(scan_source("t.rs", "struct MyHashMapLike;").is_empty());
        assert!(scan_source("t.rs", "let instant_like = 3;").is_empty());
        // thread::scope is the sanctioned helper, not a finding.
        assert!(scan_source("t.rs", "std::thread::scope(|s| {});").is_empty());
        // expect_err is not expect.
        assert!(scan_source("t.rs", "r.expect_err(\"x\");").is_empty());
    }

    #[test]
    fn strings_comments_and_test_mods_are_exempt() {
        assert!(scan_source("t.rs", "let s = \"HashMap\"; // Instant").is_empty());
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); let m = HashMap::new(); }\n}";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason_silences_without_one_reports() {
        let ok = "let v = x.unwrap(); // qoslint::allow(no-panic, checked above)";
        assert!(scan_source("t.rs", ok).is_empty());

        let missing = "let v = x.unwrap(); // qoslint::allow(no-panic)";
        let d = scan_source("t.rs", missing);
        assert_eq!(d.len(), 1, "exactly the hygiene finding: {d:?}");
        assert_eq!(d[0].rule, BAD_SUPPRESSION);

        let unknown = "let v = x.unwrap(); // qoslint::allow(no-such-rule, reason)";
        let d = scan_source("t.rs", unknown);
        assert_eq!(d.len(), 2, "unknown rule suppresses nothing: {d:?}");
        assert!(d.iter().any(|d| d.rule == BAD_SUPPRESSION));
        assert!(d.iter().any(|d| d.rule == "no-panic"));
    }

    #[test]
    fn file_scope_suppression_covers_every_line() {
        let src = "// qoslint::allow-file(wall-clock, sanctioned shim)\n\
                   use std::time::Instant;\n\
                   fn f() { let t = Instant::now(); }";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn own_line_suppression_targets_next_code_line() {
        let src = "// qoslint::allow(wall-clock, sanctioned probe)\n\
                   let t = Instant::now();";
        assert!(scan_source("t.rs", src).is_empty());
    }

    #[test]
    fn findings_carry_location_and_hint() {
        let d = scan_source("dir/f.rs", "fn f() {\n    let t = Instant::now();\n}");
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].location, "dir/f.rs");
        assert_eq!(d[0].line, 2);
        assert_eq!(d[0].col, 13);
        assert!(!d[0].hint.is_empty());
        assert!(render_catalogue().contains("wall-clock"));
    }
}
