//! The shared diagnostics type both lint front-ends emit.
//!
//! A [`Diagnostic`] carries a stable rule id, a severity, a location
//! (either `file:line:col` for source findings or a structural path
//! like `slkt://db000/trades-db-000` for ontology findings), the
//! message, and a fix hint. Rendering follows rustc's shape so the
//! output drops into editors and CI logs that already understand it:
//!
//! ```text
//! error[unordered-collections]: std::collections::HashSet in simulation state
//!   --> crates/simkern/src/events.rs:69:11
//!   = hint: use BTreeSet/BTreeMap so iteration order is deterministic
//! ```

use std::fmt;

/// How bad a finding is. Both severities gate CI; the distinction is
/// for readers triaging a long report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Style/robustness hazard (e.g. a panic path in library code).
    Warning,
    /// Correctness hazard (e.g. nondeterministic iteration order).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// One finding from either front-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `wall-clock` or `startup-cycle`.
    pub rule: &'static str,
    /// Severity (both levels gate CI).
    pub severity: Severity,
    /// Source file or structural path the finding anchors to.
    pub location: String,
    /// 1-based line (0 = not line-addressable, e.g. ontology findings).
    pub line: usize,
    /// 1-based column (0 = not column-addressable).
    pub col: usize,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl Diagnostic {
    /// Render rustc-style (two or three lines).
    pub fn render(&self) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.rule, self.message);
        if self.line > 0 {
            out.push_str(&format!(
                "  --> {}:{}:{}\n",
                self.location,
                self.line,
                self.col.max(1)
            ));
        } else {
            out.push_str(&format!("  --> {}\n", self.location));
        }
        if !self.hint.is_empty() {
            out.push_str(&format!("  = hint: {}\n", self.hint));
        }
        out
    }

    /// Serialise as a JSON object (hand-rolled; the workspace carries
    /// no serde).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\": {}, \"severity\": {}, \"location\": {}, \"line\": {}, \"col\": {}, \"message\": {}, \"hint\": {}}}",
            json_str(self.rule),
            json_str(&self.severity.to_string()),
            json_str(&self.location),
            self.line,
            self.col,
            json_str(&self.message),
            json_str(&self.hint),
        )
    }
}

/// Render a batch of diagnostics followed by a one-line summary.
pub fn render_report(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diags.len() - errors;
    out.push_str(&format!(
        "qoslint: {} finding(s) ({errors} error(s), {warnings} warning(s))\n",
        diags.len()
    ));
    out
}

/// Minimal JSON string escaping (mirrors `core::downtime::json_str`,
/// re-implemented here because qoslint sits below `core`).
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            rule: "wall-clock",
            severity: Severity::Error,
            location: "crates/simkern/src/x.rs".into(),
            line: 12,
            col: 5,
            message: "std::time::Instant outside the metrics clock shim".into(),
            hint: "route wall-clock reads through simkern::metrics".into(),
        }
    }

    #[test]
    fn renders_rustc_style() {
        let r = sample().render();
        assert!(r.starts_with("error[wall-clock]:"));
        assert!(r.contains("--> crates/simkern/src/x.rs:12:5"));
        assert!(r.contains("= hint:"));
    }

    #[test]
    fn structural_locations_omit_line() {
        let mut d = sample();
        d.line = 0;
        d.location = "slkt://db000/trades-db-000".into();
        let r = d.render();
        assert!(r.contains("--> slkt://db000/trades-db-000\n"));
    }

    #[test]
    fn report_counts_by_severity() {
        let mut w = sample();
        w.severity = Severity::Warning;
        let out = render_report(&[sample(), w]);
        assert!(out.contains("2 finding(s) (1 error(s), 1 warning(s))"));
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        let d = sample();
        let j = d.to_json();
        assert!(j.contains("\"rule\": \"wall-clock\""));
        assert!(j.contains("\"line\": 12"));
    }
}
