//! A lightweight Rust lexer for the determinism lint.
//!
//! This is not a parser: the rules only need to know, per line, **what
//! is code** (as opposed to comment, string-literal, or char-literal
//! content), whether the line sits inside a `#[cfg(test)]` item, and
//! which `qoslint::allow` suppression comments are in force. The lexer
//! produces exactly that — a per-line *code shadow* where comment and
//! literal contents are blanked with spaces (columns are preserved so
//! findings stay clickable), plus the parsed suppression list.
//!
//! Handled: line comments (incl. doc comments), nested block comments,
//! string literals with escapes, raw strings (`r"…"`, `r#"…"#`, any
//! hash depth, `b`-prefixed forms), char literals vs. lifetimes, and
//! multi-line literals/comments. That covers everything the rule
//! patterns can trip over in this workspace.

/// One source line after lexing.
#[derive(Debug, Clone)]
pub struct SourceLine {
    /// 1-based line number.
    pub number: usize,
    /// The line with comment and literal contents blanked (delimiters
    /// kept, columns preserved).
    pub code: String,
    /// True when the line is inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

/// One parsed `qoslint::allow(...)` suppression comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Line the comment sits on (1-based).
    pub line: usize,
    /// Line the suppression applies to: the same line for trailing
    /// comments, the next code line for comments on their own line.
    /// Irrelevant for `file_scope` suppressions.
    pub applies_to: usize,
    /// Rule id being allowed.
    pub rule: String,
    /// The mandatory reason string (empty = malformed, itself a
    /// finding).
    pub reason: String,
    /// True for `qoslint::allow-file(...)`, which covers the whole file.
    pub file_scope: bool,
}

/// A fully lexed source file.
#[derive(Debug, Clone)]
pub struct LexedFile {
    /// Path as given to [`lex`] (used verbatim in diagnostics).
    pub path: String,
    /// All lines, in order.
    pub lines: Vec<SourceLine>,
    /// All suppression comments found.
    pub suppressions: Vec<Suppression>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// Lex one file into its code shadow + suppressions.
pub fn lex(path: &str, text: &str) -> LexedFile {
    let mut lines: Vec<SourceLine> = Vec::new();
    let mut comments: Vec<(usize, String)> = Vec::new(); // (line, comment text)
    let mut state = State::Code;

    for (idx, raw) in text.lines().enumerate() {
        let number = idx + 1;
        let chars: Vec<char> = raw.chars().collect();
        let mut code = String::with_capacity(chars.len());
        let mut comment_text = String::new();
        let mut i = 0usize;
        while i < chars.len() {
            match state {
                State::Code => {
                    let c = chars[i];
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: capture text, blank the rest.
                        // Doc comments (`///`, `//!`) never carry
                        // suppressions — they are documentation *about*
                        // the syntax, so mentioning `qoslint::allow`
                        // there must not activate (or mis-report) it.
                        let text: String = chars[i..].iter().collect();
                        let doc = text.starts_with("///") || text.starts_with("//!");
                        if !doc {
                            comment_text.push_str(&text);
                        }
                        for _ in i..chars.len() {
                            code.push(' ');
                        }
                        i = chars.len();
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(1);
                        code.push_str("  ");
                        i += 2;
                    } else if c == '"' {
                        state = State::Str;
                        code.push('"');
                        i += 1;
                    } else if let Some(hashes) = raw_string_open(&chars, i) {
                        // r"…" / r#"…"# / br##"…"## — skip prefix + quote.
                        let prefix = prefix_len(&chars, i) + hashes as usize + 1;
                        for _ in 0..prefix {
                            code.push(' ');
                        }
                        state = State::RawStr(hashes);
                        i += prefix;
                    } else if c == '\'' {
                        // Char literal vs lifetime.
                        if chars.get(i + 1) == Some(&'\\') {
                            // Escaped char literal: skip to the closing
                            // quote, starting *after* the escaped
                            // character so `'\''` does not stop on the
                            // quote being escaped.
                            let mut j = i + 3;
                            while j < chars.len() && chars[j] != '\'' {
                                j += 1;
                            }
                            for _ in i..(j + 1).min(chars.len()) {
                                code.push(' ');
                            }
                            i = (j + 1).min(chars.len());
                        } else if chars.get(i + 2) == Some(&'\'') {
                            code.push_str("   ");
                            i += 3;
                        } else {
                            // A lifetime: keep as code.
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(c);
                        i += 1;
                    }
                }
                State::BlockComment(depth) => {
                    if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        let d = depth - 1;
                        state = if d == 0 {
                            State::Code
                        } else {
                            State::BlockComment(d)
                        };
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        state = State::BlockComment(depth + 1);
                        code.push_str("  ");
                        i += 2;
                    } else {
                        comment_text.push(chars[i]);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if chars[i] == '\\' {
                        code.push_str("  ");
                        i += 2;
                    } else if chars[i] == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if chars[i] == '"' && closes_raw(&chars, i, hashes) {
                        code.push('"');
                        for _ in 0..hashes {
                            code.push(' ');
                        }
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        if !comment_text.is_empty() {
            comments.push((number, comment_text));
        }
        lines.push(SourceLine {
            number,
            code,
            in_test: false,
        });
    }

    mark_test_regions(&mut lines);
    let suppressions = parse_suppressions(&comments, &lines);
    LexedFile {
        path: path.to_string(),
        lines,
        suppressions,
    }
}

/// Length of the `r` / `b` / `br` prefix of a raw string starting at
/// `i`, assuming [`raw_string_open`] matched there.
fn prefix_len(chars: &[char], i: usize) -> usize {
    if chars[i] == 'b' {
        2
    } else {
        1
    }
}

/// Does a raw string literal open at position `i`? Returns the hash
/// count if so. Guards against identifiers ending in `r` (e.g. `var"`,
/// which is not valid Rust anyway) by requiring the previous char not
/// be alphanumeric.
fn raw_string_open(chars: &[char], i: usize) -> Option<u32> {
    let prev_ok = i == 0 || !(chars[i - 1].is_alphanumeric() || chars[i - 1] == '_');
    if !prev_ok {
        return None;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(hashes)
    } else {
        None
    }
}

/// Does the `"` at position `i` close a raw string with `hashes` hashes?
fn closes_raw(chars: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'))
}

/// Mark every line inside a `#[cfg(test)]` item by tracking brace depth
/// across the code shadows.
fn mark_test_regions(lines: &mut [SourceLine]) {
    let mut depth: i64 = 0;
    let mut test_stack: Vec<i64> = Vec::new();
    let mut pending_attr = false;
    for line in lines.iter_mut() {
        if !test_stack.is_empty() || pending_attr {
            line.in_test = true;
        }
        if line.code.contains("#[cfg(test)]") {
            pending_attr = true;
            line.in_test = true;
        }
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    if pending_attr {
                        test_stack.push(depth);
                        pending_attr = false;
                    }
                }
                '}' => {
                    if test_stack.last() == Some(&depth) {
                        test_stack.pop();
                    }
                    depth -= 1;
                }
                ';' if pending_attr && test_stack.is_empty() => {
                    // `#[cfg(test)] use …;` — attribute consumed with no
                    // block to cover.
                    pending_attr = false;
                }
                _ => {}
            }
        }
        if !test_stack.is_empty() {
            line.in_test = true;
        }
    }
}

/// Parse `qoslint::allow(rule, reason)` / `qoslint::allow-file(rule,
/// reason)` out of the collected comment texts.
fn parse_suppressions(comments: &[(usize, String)], lines: &[SourceLine]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (line_no, text) in comments {
        for (marker, file_scope) in [("qoslint::allow-file(", true), ("qoslint::allow(", false)] {
            let mut rest = text.as_str();
            // `allow-file(` never matches the `allow(` pattern (the
            // hyphen breaks it), so the two passes cannot double-count.
            while let Some(pos) = rest.find(marker) {
                let after = &rest[pos + marker.len()..];
                let close = after.rfind(')').unwrap_or(after.len());
                let inner = &after[..close];
                let (rule, reason) = match inner.split_once(',') {
                    Some((r, why)) => (r.trim().to_string(), why.trim().to_string()),
                    None => (inner.trim().to_string(), String::new()),
                };
                out.push(Suppression {
                    line: *line_no,
                    applies_to: applies_to(*line_no, lines),
                    rule,
                    reason,
                    file_scope,
                });
                rest = &after[close.min(after.len())..];
            }
        }
    }
    out
}

/// The line a line-scoped suppression targets: its own line when code
/// shares it, otherwise the next line carrying code.
fn applies_to(line_no: usize, lines: &[SourceLine]) -> usize {
    let own = lines
        .get(line_no - 1)
        .map(|l| l.code.trim().is_empty())
        .unwrap_or(false);
    if !own {
        return line_no;
    }
    lines
        .iter()
        .skip(line_no) // lines after the comment line
        .find(|l| !l.code.trim().is_empty())
        .map(|l| l.number)
        .unwrap_or(line_no)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = lex(
            "t.rs",
            "let x = \"HashMap inside string\"; // HashMap in comment\nlet y = 1; /* Instant */",
        );
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("let x = \""));
        assert!(!f.lines[1].code.contains("Instant"));
    }

    #[test]
    fn multiline_block_comments_and_raw_strings() {
        let src = "/* spans\nInstant::now()\n*/ let a = r#\"SystemTime\nHashMap\"#;\nlet b = 2;";
        let f = lex("t.rs", src);
        let all: String = f.lines.iter().map(|l| l.code.as_str()).collect();
        assert!(!all.contains("Instant"));
        assert!(!all.contains("SystemTime"));
        assert!(!all.contains("HashMap"));
        assert!(f.lines[4].code.contains("let b = 2;"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = lex(
            "t.rs",
            "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'x'; }",
        );
        // The lifetime survives; the char literals are blanked and do
        // not open a string state.
        assert!(f.lines[0].code.contains("<'a>"));
        assert!(f.lines[0].code.contains("let d ="));
        assert!(!f.lines[0].code.contains("'x'"));
    }

    #[test]
    fn escaped_quote_char_literal_does_not_open_a_string() {
        // `'\''` ends on the quote *after* the escaped one; a naive scan
        // stops on the escaped quote and leaves a stray `'` in the
        // shadow, which can silently disable every downstream rule.
        let f = lex(
            "t.rs",
            "let q = '\\''; let m = std::collections::HashMap::new();",
        );
        assert!(
            f.lines[0].code.contains("HashMap"),
            "code after the literal must survive: {:?}",
            f.lines[0].code
        );
        assert!(!f.lines[0].code.contains('\''), "literal fully blanked");
        // The common escapes stay correct too.
        let f = lex(
            "t.rs",
            "let n = '\\n'; let u = '\\u{41}'; let b = '\\\\'; Instant",
        );
        assert!(f.lines[0].code.contains("Instant"));
        assert!(!f.lines[0].code.contains("41"));
    }

    #[test]
    fn nested_block_comments_track_depth() {
        let src = "/* outer /* inner */ still comment */ let live = 1;\n/* a /* b /* c */ */ HashMap */ let after = 2;";
        let f = lex("t.rs", src);
        assert!(f.lines[0].code.contains("let live = 1;"));
        assert!(!f.lines[0].code.contains("still"));
        assert!(f.lines[1].code.contains("let after = 2;"));
        assert!(!f.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn multi_hash_raw_strings_ignore_shallower_closers() {
        // `"#` inside an `r##"…"##` literal must not close it.
        let src = "let s = r##\"quote\" and hash\"# still SystemTime\"##; let t = 1;";
        let f = lex("t.rs", src);
        assert!(!f.lines[0].code.contains("SystemTime"));
        assert!(f.lines[0].code.contains("let t = 1;"));
        // Multi-line, b-prefixed, and the close on its own line.
        let src = "let s = br#\"line one\nInstant::now()\n\"#; let u = 2;";
        let f = lex("t.rs", src);
        assert!(!f.lines[1].code.contains("Instant"));
        assert!(f.lines[2].code.contains("let u = 2;"));
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() {}";
        let f = lex("t.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test, "region must close with the brace");
    }

    #[test]
    fn cfg_test_on_use_item_does_not_poison_rest_of_file() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn lib() {}";
        let f = lex("t.rs", src);
        assert!(!f.lines[2].in_test);
    }

    #[test]
    fn suppressions_parse_with_scope_and_target() {
        let src = "// qoslint::allow-file(wall-clock, sanctioned shim)\nlet a = 1; // qoslint::allow(no-panic, init invariant)\n// qoslint::allow(thread-spawn, next line)\nlet b = 2;\n// qoslint::allow(no-panic)";
        let f = lex("t.rs", src);
        assert_eq!(f.suppressions.len(), 4);
        assert!(f.suppressions[0].file_scope);
        assert_eq!(f.suppressions[0].rule, "wall-clock");
        assert_eq!(f.suppressions[0].reason, "sanctioned shim");
        assert_eq!(f.suppressions[1].applies_to, 2);
        assert_eq!(
            f.suppressions[2].applies_to, 4,
            "own-line targets next code line"
        );
        assert_eq!(
            f.suppressions[3].reason, "",
            "missing reason surfaces as empty"
        );
    }

    #[test]
    fn doc_comments_mentioning_the_syntax_are_not_suppressions() {
        let src = "//! Suppress with `qoslint::allow(rule, reason)`.\n\
                   /// See `qoslint::allow-file(rule, reason)` for file scope.\n\
                   // qoslint::allow(no-panic, a real one)\n\
                   let v = x.unwrap();";
        let f = lex("t.rs", src);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].rule, "no-panic");
    }
}
