//! QOSLINT — the determinism lint over the workspace sources.
//!
//! ```text
//! cargo run -q -p intelliqos-qoslint --bin qoslint [--rules] [PATH ...]
//! ```
//!
//! With no paths, scans the determinism-critical crates —
//! `crates/core/src` and `crates/simkern/src` — exactly as
//! `scripts/ci.sh` does. Any unsuppressed finding exits 1. `--rules`
//! prints the rule catalogue and exits.
//!
//! Paths may be files or directories (searched recursively for `.rs`,
//! in sorted order so output is stable).

use std::path::{Path, PathBuf};

use intelliqos_qoslint::diag::render_report;
use intelliqos_qoslint::rules::{render_catalogue, scan_source};
use intelliqos_qoslint::Diagnostic;

/// The default scan scope: the two crates whose determinism the
/// sharded-run roadmap leans on.
const DEFAULT_ROOTS: [&str; 2] = ["crates/core/src", "crates/simkern/src"];

fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        eprintln!("qoslint: cannot read {}", path.display());
        std::process::exit(2);
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        collect_rs(&child, out);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        print!("{}", render_catalogue());
        return;
    }
    let roots: Vec<PathBuf> = if args.is_empty() {
        DEFAULT_ROOTS.iter().map(PathBuf::from).collect()
    } else {
        args.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if !root.exists() {
            eprintln!(
                "qoslint: {} does not exist (run from the workspace root)",
                root.display()
            );
            std::process::exit(2);
        }
        collect_rs(root, &mut files);
    }

    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(text) => diags.extend(scan_source(&file.display().to_string(), &text)),
            Err(e) => {
                eprintln!("qoslint: cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        }
    }

    if diags.is_empty() {
        println!(
            "qoslint: {} file(s) clean ({})",
            files.len(),
            roots
                .iter()
                .map(|r| r.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return;
    }
    print!("{}", render_report(&diags));
    std::process::exit(1);
}
