//! QOSLINT — the determinism lint over the workspace sources.
//!
//! ```text
//! cargo run -q -p intelliqos-qoslint --bin qoslint \
//!     [--rules] [--workspace] [--format json] [--diff-baseline FILE] [PATH ...]
//! ```
//!
//! With no paths, scans the determinism-critical crates —
//! `crates/core/src` and `crates/simkern/src`. `--workspace` scans
//! every `crates/*/src` directory plus the root `src/` (benches, tests
//! and fixtures stay out of scope: they may exercise hazards on
//! purpose). Any unsuppressed finding exits 1. `--rules` prints the
//! rule catalogue and exits.
//!
//! `--format json` emits a machine-readable report with one finding
//! object per line, so reports diff line-by-line. `--diff-baseline
//! FILE` compares the current findings against a committed report
//! (e.g. `crates/qoslint/baseline.json`): only findings absent from
//! the baseline fail the run, so the gate catches regressions without
//! re-litigating accepted debt. The shipped baseline is empty — the
//! workspace scans clean — and should stay that way.
//!
//! Paths may be files or directories (searched recursively for `.rs`,
//! in sorted order so output is stable).

use std::path::{Path, PathBuf};

use intelliqos_qoslint::diag::{json_str, render_report};
use intelliqos_qoslint::rules::{render_catalogue, scan_source};
use intelliqos_qoslint::{Diagnostic, Severity};

/// The default scan scope: the two crates whose determinism the
/// sharded-run roadmap leans on.
const DEFAULT_ROOTS: [&str; 2] = ["crates/core/src", "crates/simkern/src"];

fn collect_rs(path: &Path, out: &mut Vec<PathBuf>) {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return;
    }
    let Ok(entries) = std::fs::read_dir(path) else {
        eprintln!("qoslint: cannot read {}", path.display());
        std::process::exit(2);
    };
    let mut children: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    children.sort();
    for child in children {
        collect_rs(&child, out);
    }
}

/// Every `crates/*/src` directory plus the root `src/`, sorted.
fn workspace_roots() -> Vec<PathBuf> {
    let Ok(entries) = std::fs::read_dir("crates") else {
        eprintln!("qoslint: no crates/ here (run from the workspace root)");
        std::process::exit(2);
    };
    let mut roots: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path().join("src"))
        .filter(|p| p.is_dir())
        .collect();
    let root_src = PathBuf::from("src");
    if root_src.is_dir() {
        roots.push(root_src);
    }
    roots.sort();
    roots
}

/// The machine-readable report: one finding object per line so two
/// reports diff line-by-line.
fn render_json(files: usize, diags: &[Diagnostic]) -> String {
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"report\": {},\n", json_str("qoslint")));
    out.push_str(&format!("  \"files_scanned\": {files},\n"));
    out.push_str(&format!("  \"errors\": {errors},\n"));
    out.push_str(&format!("  \"warnings\": {},\n", diags.len() - errors));
    out.push_str("  \"findings\": [\n");
    let lines: Vec<String> = diags
        .iter()
        .map(|d| format!("    {}", d.to_json()))
        .collect();
    out.push_str(&lines.join(",\n"));
    if !lines.is_empty() {
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// The finding lines of a JSON report (trimmed), for baseline diffing.
fn finding_lines(report: &str) -> Vec<String> {
    report
        .lines()
        .map(str::trim)
        .map(|l| l.trim_end_matches(','))
        .filter(|l| l.starts_with("{\"rule\":"))
        .map(str::to_string)
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--rules") {
        print!("{}", render_catalogue());
        return;
    }

    let mut roots: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workspace" => roots.extend(workspace_roots()),
            "--format" => match it.next().map(String::as_str) {
                Some("json") => json = true,
                Some("text") => json = false,
                other => {
                    eprintln!("qoslint: --format takes `json` or `text`, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--diff-baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("qoslint: --diff-baseline needs a report file");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("qoslint: unknown flag {flag}");
                std::process::exit(2);
            }
            path => roots.push(PathBuf::from(path)),
        }
    }
    if roots.is_empty() {
        roots = DEFAULT_ROOTS.iter().map(PathBuf::from).collect();
    }

    let mut files = Vec::new();
    for root in &roots {
        if !root.exists() {
            eprintln!(
                "qoslint: {} does not exist (run from the workspace root)",
                root.display()
            );
            std::process::exit(2);
        }
        collect_rs(root, &mut files);
    }
    files.sort();
    files.dedup();

    let mut diags: Vec<Diagnostic> = Vec::new();
    for file in &files {
        match std::fs::read_to_string(file) {
            Ok(text) => diags.extend(scan_source(&file.display().to_string(), &text)),
            Err(e) => {
                eprintln!("qoslint: cannot read {}: {e}", file.display());
                std::process::exit(2);
            }
        }
    }

    let report = render_json(files.len(), &diags);

    if let Some(base_path) = baseline {
        let base = std::fs::read_to_string(&base_path).unwrap_or_else(|e| {
            eprintln!("qoslint: cannot read baseline {}: {e}", base_path.display());
            std::process::exit(2);
        });
        let known = finding_lines(&base);
        let fresh: Vec<(String, &Diagnostic)> = diags
            .iter()
            .map(|d| (d.to_json(), d))
            .filter(|(j, _)| !known.contains(j))
            .collect();
        if fresh.is_empty() {
            println!(
                "qoslint: no findings beyond baseline ({} baseline, {} current, {} file(s))",
                known.len(),
                diags.len(),
                files.len()
            );
            return;
        }
        let new_diags: Vec<Diagnostic> = fresh.into_iter().map(|(_, d)| d.clone()).collect();
        if json {
            print!("{}", render_json(files.len(), &new_diags));
        } else {
            eprintln!(
                "qoslint: {} finding(s) not in {}:",
                new_diags.len(),
                base_path.display()
            );
            print!("{}", render_report(&new_diags));
        }
        std::process::exit(1);
    }

    if json {
        print!("{report}");
        if !diags.is_empty() {
            std::process::exit(1);
        }
        return;
    }

    if diags.is_empty() {
        println!(
            "qoslint: {} file(s) clean ({})",
            files.len(),
            roots
                .iter()
                .map(|r| r.display().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        );
        return;
    }
    print!("{}", render_report(&diags));
    std::process::exit(1);
}
