//! Item-graph analyses over the [`crate::parser`] model.
//!
//! Three analysis families, all keyed to declarations that live in
//! `intelliqos-simkern` so the lint, the runtime, and the evidence
//! store answer to the *same* closed world:
//!
//! * **trace ontology** — every `emit`/`emit_corr` call site with
//!   literal subsystem and category arguments is checked against
//!   `simkern::trace::TRACE_REGISTRY`: unknown categories, near-miss
//!   typos (edit distance ≤ `NEAR_MISS_DISTANCE`), and registered
//!   categories emitted under the wrong subsystem are findings.
//!   `CategorySpec` literals with an empty `doc` string are findings
//!   too, so the registry cannot silently decay.
//! * **lifecycle order** — `DowntimeLedger` transition call sites
//!   (receiver chain ending in a `ledger` segment, method named in
//!   `LifecycleState::for_transition`) are grouped per function per
//!   incident key and consecutive transitions must be realisable in
//!   `simkern::lifecycle::LIFECYCLE_EDGES`.
//! * **flow-aware unordered collections** — `HashMap`/`HashSet`
//!   bindings are findings only when their iteration order can
//!   actually escape: the binding is iterated (`for … in`, `.iter()`,
//!   `.keys()`, …) inside a function that also feeds a
//!   determinism-sensitive sink (trace emission, JSON export, event
//!   scheduling). Lookup-only maps are fine.
//!
//! Non-literal arguments are skipped, never guessed at: an `emit`
//! whose category comes through a variable is outside this pass's
//! closed world (the runtime validator still catches it).

use crate::diag::{Diagnostic, Severity};
use crate::lexer::LexedFile;
use crate::parser::{CallSite, FileModel};
use intelliqos_simkern::lifecycle::{self, LifecycleState};
use intelliqos_simkern::trace::{
    nearest_registered_code, registry_lookup, Subsystem, NEAR_MISS_DISTANCE, TRACE_REGISTRY,
};

/// Static description of one analysis rule (catalogue + suppression
/// vocabulary; the matching itself is code, not patterns).
pub struct AnalysisRule {
    /// Stable id, used in diagnostics and suppressions.
    pub id: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// One-line description for the catalogue.
    pub summary: &'static str,
    /// Generic fix hint (findings may carry a more specific one).
    pub hint: &'static str,
}

/// The item-graph analysis catalogue.
pub const ANALYSIS_RULES: &[AnalysisRule] = &[
    AnalysisRule {
        id: "trace-unknown-category",
        severity: Severity::Error,
        summary: "emit of a trace category absent from the trace registry",
        hint: "declare a CategorySpec for it in simkern::trace::TRACE_REGISTRY \
               (with a doc line), or fix the call site",
    },
    AnalysisRule {
        id: "trace-category-typo",
        severity: Severity::Error,
        summary: "emit of a near-miss of a registered trace category",
        hint: "spell the category exactly as registered in \
               simkern::trace::TRACE_REGISTRY",
    },
    AnalysisRule {
        id: "trace-wrong-subsystem",
        severity: Severity::Error,
        summary: "emit of a registered trace category under the wrong subsystem",
        hint: "emit the category under the subsystem it is registered with, or \
               register a new (subsystem, category) pair",
    },
    AnalysisRule {
        id: "trace-undocumented",
        severity: Severity::Error,
        summary: "trace registry entry with an empty doc string",
        hint: "every CategorySpec must say what the category marks — one \
               sentence is enough",
    },
    AnalysisRule {
        id: "lifecycle-order",
        severity: Severity::Error,
        summary: "ledger transitions in an order the lifecycle automaton cannot realise",
        hint: "order transitions along injected -> detected -> diagnosed -> \
               attempt* -> (repaired | escalated); the legal edges are \
               simkern::lifecycle::LIFECYCLE_EDGES",
    },
    AnalysisRule {
        id: "unordered-collections",
        severity: Severity::Error,
        summary: "unordered collection iteration flowing into an export or trace sink",
        hint: "use BTreeMap/BTreeSet (or sort before the sink) so iteration \
               order cannot leak into JSON/trace output",
    },
];

fn rule(id: &str) -> &'static AnalysisRule {
    ANALYSIS_RULES
        .iter()
        .find(|r| r.id == id)
        .unwrap_or(&ANALYSIS_RULES[0])
}

fn finding(
    file: &LexedFile,
    id: &str,
    line: usize,
    col: usize,
    message: String,
    hint: Option<String>,
) -> Diagnostic {
    let r = rule(id);
    Diagnostic {
        rule: r.id,
        severity: r.severity,
        location: file.path.clone(),
        line,
        col,
        message,
        hint: hint.unwrap_or_else(|| r.hint.to_string()),
    }
}

/// Run every analysis over one file's model. Suppressions are applied
/// by the caller ([`crate::rules::scan_source`]), so this returns raw
/// findings.
pub fn analyze(file: &LexedFile, model: &FileModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    check_trace_calls(file, model, &mut out);
    check_registry_docs(file, model, &mut out);
    check_lifecycle_order(file, model, &mut out);
    check_unordered_flow(file, model, &mut out);
    out
}

// ---------------------------------------------------------------- trace

/// Parse `Subsystem::Variant` out of an argument's text.
fn literal_subsystem(text: &str) -> Option<Subsystem> {
    let at = text.find("Subsystem::")?;
    let rest = &text[at + "Subsystem::".len()..];
    let variant: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    Subsystem::ALL
        .into_iter()
        .find(|s| format!("{s:?}") == variant)
}

/// Parse a plain `"…"` string literal out of an argument's text.
fn literal_str(text: &str) -> Option<&str> {
    let t = text.trim();
    if t.len() >= 2 && t.starts_with('"') && t.ends_with('"') && !t[1..t.len() - 1].contains('"') {
        Some(&t[1..t.len() - 1])
    } else {
        None
    }
}

fn check_trace_calls(file: &LexedFile, model: &FileModel, out: &mut Vec<Diagnostic>) {
    for call in &model.calls {
        if call.in_test || !(call.method == "emit" || call.method == "emit_corr") {
            continue;
        }
        if call.args.len() < 3 {
            continue;
        }
        // emit(at, subsystem, code, …) / emit_corr(at, subsystem, code, …).
        let Some(sub) = literal_subsystem(&call.args[1].text) else {
            continue; // non-literal subsystem: outside the closed world
        };
        let Some(code) = literal_str(&call.args[2].text) else {
            continue; // non-literal category: runtime validation covers it
        };
        let (line, col) = (call.args[2].line, call.args[2].col);
        if registry_lookup(sub, code).is_some() {
            continue;
        }
        let owners: Vec<&str> = TRACE_REGISTRY
            .iter()
            .filter(|s| s.code == code)
            .map(|s| s.subsystem.tag())
            .collect();
        if !owners.is_empty() {
            out.push(finding(
                file,
                "trace-wrong-subsystem",
                line,
                col,
                format!(
                    "trace category \"{code}\" is registered under `{}`, not `{}`",
                    owners.join("`, `"),
                    sub.tag()
                ),
                None,
            ));
        } else if let Some((near, dist)) =
            nearest_registered_code(code).filter(|&(_, d)| d <= NEAR_MISS_DISTANCE)
        {
            out.push(finding(
                file,
                "trace-category-typo",
                line,
                col,
                format!("unregistered trace category ({}, \"{code}\")", sub.tag()),
                Some(format!(
                    "did you mean \"{near}\"? (edit distance {dist}); registered \
                     categories live in simkern::trace::TRACE_REGISTRY"
                )),
            ));
        } else {
            out.push(finding(
                file,
                "trace-unknown-category",
                line,
                col,
                format!("unregistered trace category ({}, \"{code}\")", sub.tag()),
                None,
            ));
        }
    }
}

fn check_registry_docs(file: &LexedFile, model: &FileModel, out: &mut Vec<Diagnostic>) {
    let shadow = &model.shadow;
    for pos in shadow.find_words("CategorySpec") {
        let (line, _) = shadow.linecol(pos);
        if shadow.line_in_test(line) {
            continue;
        }
        let open = shadow.next_nonws(pos + "CategorySpec".len());
        if shadow.at(open) != '{' {
            continue; // a type mention, not a struct literal
        }
        let Some(close) = shadow.matching_close(open) else {
            continue;
        };
        // Find the `doc:` field at the literal's own depth.
        let mut depth = 0i64;
        let mut i = open + 1;
        while i < close {
            match shadow.at(i) {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                'd' if depth == 0
                    && shadow.at(i + 1) == 'o'
                    && shadow.at(i + 2) == 'c'
                    && !ident_char(shadow.at(i + 3))
                    && (i == open + 1 || !ident_char(shadow.at(i - 1))) =>
                {
                    let colon = shadow.next_nonws(i + 3);
                    if shadow.at(colon) != ':' {
                        i += 3;
                        continue;
                    }
                    let vstart = shadow.next_nonws(colon + 1);
                    let mut vend = vstart;
                    let mut d2 = 0i64;
                    while vend < close {
                        match shadow.at(vend) {
                            '(' | '[' | '{' => d2 += 1,
                            ')' | ']' | '}' => d2 -= 1,
                            ',' if d2 == 0 => break,
                            _ => {}
                        }
                        vend += 1;
                    }
                    if shadow.raw_text(vstart, vend) == "\"\"" {
                        let (vline, vcol) = shadow.linecol(vstart);
                        out.push(finding(
                            file,
                            "trace-undocumented",
                            vline,
                            vcol,
                            "CategorySpec with an empty doc string".to_string(),
                            None,
                        ));
                    }
                    i = vend;
                    continue;
                }
                _ => {}
            }
            i += 1;
        }
    }
}

fn ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

// ------------------------------------------------------------ lifecycle

/// Does the receiver chain end in a ledger? (`self.ledger`, `ledger`,
/// `world.ledger` — but not `led` or `self.ledger_report`.)
fn ledger_receiver(recv: &str) -> bool {
    recv.rsplit('.').next().is_some_and(|seg| seg == "ledger")
}

/// For an `open`/`open_scoped` call, the `let` binding receiving the
/// incident token (`let inc = self.ledger.open_scoped(…)` → `inc`).
fn open_binding(file: &LexedFile, call: &CallSite) -> Option<String> {
    let line = file.lines.get(call.recv_line - 1)?;
    let prefix: Vec<char> = line.code.chars().take(call.recv_col - 1).collect();
    // Parse `… let [mut] NAME =` backwards from the receiver.
    let mut i = prefix.len();
    while i > 0 && prefix[i - 1].is_whitespace() {
        i -= 1;
    }
    if i == 0 || prefix[i - 1] != '=' {
        return None;
    }
    i -= 1;
    while i > 0 && prefix[i - 1].is_whitespace() {
        i -= 1;
    }
    let name_end = i;
    while i > 0 && ident_char(prefix[i - 1]) {
        i -= 1;
    }
    if i == name_end {
        return None;
    }
    let name: String = prefix[i..name_end].iter().collect();
    let head: String = prefix[..i].iter().collect();
    let head = head.trim_end();
    let head = head.strip_suffix("mut").map(str::trim_end).unwrap_or(head);
    if head.ends_with("let") {
        Some(name)
    } else {
        None
    }
}

fn check_lifecycle_order(file: &LexedFile, model: &FileModel, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        if f.in_test {
            continue;
        }
        // Last transition seen per incident key, in a Vec so the pass
        // itself stays deterministic.
        let mut last: Vec<(String, LifecycleState, String)> = Vec::new();
        for &ci in &f.calls {
            let call = &model.calls[ci];
            if !ledger_receiver(&call.receiver) {
                continue;
            }
            let Some(state) = LifecycleState::for_transition(&call.method) else {
                continue;
            };
            let key = if state == LifecycleState::Injected {
                open_binding(file, call).unwrap_or_else(|| format!("_open@{}", call.line))
            } else if let Some(arg) = call.args.first() {
                arg.text.clone()
            } else {
                continue;
            };
            if let Some(entry) = last.iter_mut().find(|(k, _, _)| *k == key) {
                let (_, prev_state, prev_method) = entry;
                if !lifecycle::reachable(*prev_state, state) {
                    out.push(finding(
                        file,
                        "lifecycle-order",
                        call.line,
                        call.col,
                        format!(
                            "ledger `{}` after `{prev_method}` on `{key}`: `{}` is \
                             unreachable from `{}` in the lifecycle automaton",
                            call.method,
                            state.name(),
                            prev_state.name()
                        ),
                        None,
                    ));
                }
                *prev_state = state;
                *prev_method = call.method.clone();
            } else {
                last.push((key, state, call.method.clone()));
            }
        }
    }
}

// ------------------------------------------------- unordered collections

/// Sinks whose output must be deterministic: trace emission, JSON
/// export, event scheduling.
const SINKS: &[&str] = &[
    ".emit(",
    ".emit_corr(",
    ".schedule(",
    ".schedule_after(",
    "to_json",
    "json_str",
    "render_jsonl",
];

/// Iterator-producing methods whose order is the collection's own.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// The binding a `HashMap`/`HashSet` mention at `col` introduces on
/// this line, if any: `let [mut] NAME [: …] = …Hash…` or a
/// `NAME: [&]Hash…` parameter/field.
fn hash_binding(code: &str, col: usize) -> Option<String> {
    let prefix: Vec<char> = code.chars().take(col).collect();
    // Rightmost `let` word before the mention wins.
    let text: String = prefix.iter().collect();
    if let Some(at) = rightmost_word(&text, "let") {
        let after: Vec<char> = text[at + 3..].chars().collect();
        let mut i = 0;
        while i < after.len() && after[i].is_whitespace() {
            i += 1;
        }
        let rest: String = after[i..].iter().collect();
        let rest = rest.strip_prefix("mut ").unwrap_or(&rest);
        let name: String = rest.chars().take_while(|&c| ident_char(c)).collect();
        if !name.is_empty() {
            return Some(name);
        }
    }
    // Otherwise `NAME: …Hash…` (fn parameter). Find the rightmost
    // single `:` (not `::`) and take the identifier before it.
    let mut best: Option<usize> = None;
    for (i, &c) in prefix.iter().enumerate() {
        if c == ':' && prefix.get(i + 1).copied() != Some(':') && (i == 0 || prefix[i - 1] != ':') {
            best = Some(i);
        }
    }
    let colon = best?;
    let mut i = colon;
    while i > 0 && prefix[i - 1].is_whitespace() {
        i -= 1;
    }
    let end = i;
    while i > 0 && ident_char(prefix[i - 1]) {
        i -= 1;
    }
    if i == end {
        return None;
    }
    Some(prefix[i..end].iter().collect())
}

fn rightmost_word(text: &str, word: &str) -> Option<usize> {
    let mut from = 0usize;
    let mut found = None;
    while let Some(pos) = text[from..].find(word) {
        let at = from + pos;
        from = at + word.len();
        let before = text[..at].chars().next_back();
        let after = text[at + word.len()..].chars().next();
        let is_id = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !is_id(before) && !is_id(after) {
            found = Some(at);
        }
    }
    found
}

/// Does `code` iterate the binding `name`? Either `for … in [&[mut]]
/// name` or `name.iter()`-family.
fn iterates(code: &str, name: &str) -> bool {
    let chars: Vec<char> = code.chars().collect();
    let mut from = 0usize;
    while let Some(pos) = code[from..].find(name) {
        let at = from + pos;
        from = at + name.len();
        let before_ok = at == 0 || !ident_char(chars[at.saturating_sub(1)]);
        let after = chars.get(at + name.len()).copied();
        let after_ok = after.map(|c| !ident_char(c)).unwrap_or(true);
        if !before_ok || !after_ok {
            continue;
        }
        // `name.iter()` family?
        if after == Some('.') {
            let rest = &code[at + name.len() + 1..];
            let m: String = rest.chars().take_while(|&c| ident_char(c)).collect();
            if ITER_METHODS.contains(&m.as_str()) {
                return true;
            }
        }
        // `for … in [&[mut ]]name`?
        let mut i = at;
        while i > 0 && (chars[i - 1] == '&' || chars[i - 1].is_whitespace()) {
            i -= 1;
        }
        let head: String = chars[..i].iter().collect();
        let head = head.trim_end();
        let head = head.strip_suffix("mut").map(str::trim_end).unwrap_or(head);
        if head.ends_with(" in") || head == "in" {
            return true;
        }
    }
    false
}

fn check_unordered_flow(file: &LexedFile, model: &FileModel, out: &mut Vec<Diagnostic>) {
    for f in &model.fns {
        if f.in_test {
            continue;
        }
        let range = f.line..=f.body_lines.1;
        let body = || {
            file.lines
                .iter()
                .filter(|l| range.contains(&l.number))
                .map(|l| l.code.as_str())
        };
        // Collect Hash{Map,Set} bindings declared in this fn (params
        // included), first mention wins.
        let mut bindings: Vec<(String, usize, usize)> = Vec::new();
        for l in file.lines.iter().filter(|l| range.contains(&l.number)) {
            for word in ["HashMap", "HashSet"] {
                let mut from = 0usize;
                while let Some(pos) = l.code[from..].find(word) {
                    let at = from + pos;
                    from = at + word.len();
                    let before = l.code[..at].chars().next_back();
                    let after = l.code[at + word.len()..].chars().next();
                    let is_id =
                        |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
                    if is_id(before) || is_id(after) {
                        continue;
                    }
                    if let Some(name) = hash_binding(&l.code, at) {
                        if !bindings.iter().any(|(n, _, _)| *n == name) {
                            bindings.push((name, l.number, at + 1));
                        }
                    }
                }
            }
        }
        if bindings.is_empty() {
            continue;
        }
        let has_sink = body().any(|code| SINKS.iter().any(|s| code.contains(s)));
        if !has_sink {
            continue;
        }
        for (name, line, col) in bindings {
            if body().any(|code| iterates(code, &name)) {
                out.push(finding(
                    file,
                    "unordered-collections",
                    line,
                    col,
                    format!(
                        "iteration over unordered `{name}` in a function that \
                         feeds an export or trace sink"
                    ),
                    None,
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::rules::scan_source;

    fn rules_of(src: &str) -> Vec<&'static str> {
        scan_source("t.rs", src)
            .into_iter()
            .map(|d| d.rule)
            .collect()
    }

    #[test]
    fn registered_literal_emits_are_clean() {
        let src = "fn f(&mut self) {\n    self.trace.emit(now, Subsystem::Fault, \"inject\", || d());\n    self.trace\n        .emit_corr(now, Subsystem::Agent, \"diagnose\", Some(c), || d());\n}\n";
        assert!(rules_of(src).is_empty(), "got {:?}", rules_of(src));
    }

    #[test]
    fn unknown_typo_and_wrong_subsystem_are_distinguished() {
        let unknown = "fn f() {\n    t.emit(now, Subsystem::Fault, \"totally-new\", || d());\n}\n";
        assert_eq!(rules_of(unknown), vec!["trace-unknown-category"]);

        let typo = "fn f() {\n    t.emit(now, Subsystem::Fault, \"db-carsh\", || d());\n}\n";
        assert_eq!(rules_of(typo), vec!["trace-category-typo"]);
        let d = scan_source("t.rs", typo);
        assert!(d[0].hint.contains("db-crash"), "hint: {}", d[0].hint);

        let wrong = "fn f() {\n    t.emit(now, Subsystem::Lsf, \"db-crash\", || d());\n}\n";
        assert_eq!(rules_of(wrong), vec!["trace-wrong-subsystem"]);
        let d = scan_source("t.rs", wrong);
        assert!(
            d[0].message.contains("`fault`"),
            "message: {}",
            d[0].message
        );
    }

    #[test]
    fn non_literal_arguments_are_outside_the_closed_world() {
        let src = "fn f(sub: Subsystem, code: &str) {\n    t.emit(now, sub, code, || d());\n    t.emit(now, Subsystem::Fault, code, || d());\n}\n";
        assert!(rules_of(src).is_empty());
    }

    #[test]
    fn undocumented_registry_entries_are_findings() {
        let bad = "const X: CategorySpec = CategorySpec {\n    subsystem: Subsystem::Fault,\n    code: \"inject\",\n    doc: \"\",\n};\n";
        assert_eq!(rules_of(bad), vec!["trace-undocumented"]);

        let ok = "const X: CategorySpec = CategorySpec {\n    subsystem: Subsystem::Fault,\n    code: \"inject\",\n    doc: \"fault injected\",\n};\n";
        assert!(rules_of(ok).is_empty());
    }

    #[test]
    fn lifecycle_order_checks_ledger_call_sequences() {
        let ok = "fn f(&mut self) {\n    let inc = self.ledger.open_scoped(cat, &svc, d, now);\n    self.ledger.detect(inc, t1);\n    self.ledger.diagnose(inc, t2);\n    self.ledger.attempt(inc, t3, Actor::Agent, \"x\");\n    self.ledger.escalate(inc, t4);\n    self.ledger.restore(inc, t5, Actor::Human, \"y\");\n}\n";
        assert!(rules_of(ok).is_empty(), "got {:?}", rules_of(ok));

        let bad = "fn f(&mut self) {\n    self.ledger.restore(inc, t5, Actor::Human, \"y\");\n    self.ledger.detect(inc, t1);\n}\n";
        assert_eq!(rules_of(bad), vec!["lifecycle-order"]);

        // Distinct incidents do not interleave.
        let two = "fn f(&mut self) {\n    self.ledger.restore(a, t1, Actor::Human, \"y\");\n    self.ledger.detect(b, t2);\n}\n";
        assert!(rules_of(two).is_empty());

        // Non-ledger receivers are not transitions.
        let other =
            "fn f(&mut self) {\n    instance.restore();\n    self.ledger.detect(inc, t);\n}\n";
        assert!(rules_of(other).is_empty());
    }

    #[test]
    fn unordered_fires_only_when_iteration_meets_a_sink() {
        // Iterated map + trace sink in the same fn: finding.
        let hot = "fn f(t: &mut Trace) {\n    let mut m = HashMap::new();\n    m.insert(1, 2);\n    for (k, v) in &m {\n        t.emit(k, Subsystem::Fault, \"inject\", || v.to_string());\n    }\n}\n";
        assert_eq!(rules_of(hot), vec!["unordered-collections"]);
        assert_eq!(scan_source("t.rs", hot).len(), 1, "fires once per binding");

        // Lookup-only map next to a sink: clean.
        let lookup = "fn f(t: &mut Trace, m: &HashMap<u32, u32>) {\n    if let Some(v) = m.get(&1) {\n        t.emit(*v, Subsystem::Fault, \"inject\", || String::new());\n    }\n}\n";
        assert!(rules_of(lookup).is_empty(), "got {:?}", rules_of(lookup));

        // Iterated set with no sink anywhere in the fn: clean.
        let cold = "fn f() -> usize {\n    let s: HashSet<u32> = HashSet::new();\n    s.iter().count()\n}\n";
        assert!(rules_of(cold).is_empty());

        // A bare use statement introduces no binding: clean.
        assert!(rules_of("use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn analysis_findings_respect_suppressions() {
        let src = "fn f() {\n    // qoslint::allow(trace-unknown-category, prototyping a new channel)\n    t.emit(now, Subsystem::Fault, \"totally-new\", || d());\n}\n";
        assert!(rules_of(src).is_empty(), "got {:?}", rules_of(src));
    }
}
