//! # intelliqos-qoslint
//!
//! In-tree static analysis for the intelliqos workspace, two front-ends
//! over one diagnostics type:
//!
//! * [`rules`] — the **determinism lint**: a lightweight Rust lexer
//!   ([`lexer`]) plus a rule engine that scans workspace sources for
//!   nondeterminism hazards *before* they reach a run — wall-clock
//!   reads outside the metrics shim, unordered `std` collections whose
//!   iteration order flows into exported JSON or traces, unsanctioned
//!   thread spawns, and panic paths (`unwrap`/`expect`) in non-test
//!   library code. Findings are suppressible in place with
//!   `// qoslint::allow(rule, reason)`; a suppression without a reason
//!   is itself a finding.
//! * [`parser`] + [`analysis`] — the **item-graph pass**: a
//!   lightweight per-file item/call-site model (fns, method calls,
//!   literal arguments) over the same lexer, powering the closed-world
//!   trace-ontology rules (every `emit` call site checked against
//!   `simkern::trace::TRACE_REGISTRY`), the `lifecycle-order` check
//!   against `simkern::lifecycle::LIFECYCLE_EDGES`, and the flow-aware
//!   `unordered-collections` rule.
//! * [`ontology`] — the **ontology constraint checker**: a library pass
//!   over parsed SLKT/ISSL/DGSPL structures that rejects
//!   startup-sequence dependency cycles, duplicate port claims across
//!   co-hosted services, dangling dependency / service / process-name
//!   references, ISSL lists over the paper's 200-entry cap, and DGSPL
//!   schema violations. `intelliqos_core::World` runs it at
//!   construction time (fail-fast), and the `ontology_check` bench
//!   binary runs it standalone over the shipped scenarios.
//!
//! Both front-ends emit [`diag::Diagnostic`]s (rule id, severity,
//! location, message, fix hint) rendered rustc-style, and both are
//! wired into `scripts/ci.sh`, which fails on any unsuppressed finding.
//!
//! The crate depends only on `intelliqos-ontology` (for the parsed
//! structure types), so every layer above — including `core` — can call
//! it without a dependency cycle, matching the repo's offline, no
//! external-crate discipline.

#![warn(missing_docs)]

pub mod analysis;
pub mod diag;
pub mod lexer;
pub mod ontology;
pub mod parser;
pub mod rules;

pub use diag::{Diagnostic, Severity};
