//! # intelliqos-lsf
//!
//! An LSF-like batch scheduling substrate for the `intelliqos`
//! reproduction of Corsava & Getov (IPDPS 2003): jobs with resource
//! demands, pending queues, per-server job limits, pluggable
//! server-selection policies (manual-sticky / random / least-loaded —
//! the paper's DGSPL-guided policy plugs in from `intelliqos-core`),
//! the overload→database-crash hazard model, and the analyst workload
//! generator.

#![warn(missing_docs)]

pub mod cluster;
pub mod job;
pub mod select;
pub mod workload;

pub use cluster::{db_crash_hazard_per_hour, db_crash_roll, Dispatch, LsfCluster, LsfStats};
pub use job::{FailReason, Job, JobId, JobKind, JobSpec, JobState};
pub use select::{
    LeastLoadedSelector, ManualStickySelector, RandomSelector, ServerCandidate, ServerSelector,
};
pub use workload::{Arrival, WorkloadConfig, WorkloadGenerator};
