//! The LSF batch cluster: queues, dispatch, per-server limits, and the
//! overload crash model.
//!
//! "The LSF software was configured to allow a finite number of
//! scheduled jobs per database server" (§4). Dispatch places a job's
//! processes on the chosen server; the job's resource demand then flows
//! through the ordinary process-table → OS-observables path, so
//! overload is visible to agents exactly the way it was visible to
//! `vmstat`.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use intelliqos_simkern::{SimDuration, SimRng, SimTime};

use intelliqos_cluster::ids::ServerId;
use intelliqos_cluster::server::Server;

use crate::job::{FailReason, Job, JobId, JobSpec, JobState};
use crate::select::{ServerCandidate, ServerSelector};

/// Dispatch outcome for one job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dispatch {
    /// Which job.
    pub job: JobId,
    /// Where it landed.
    pub server: ServerId,
    /// When it will complete if nothing goes wrong.
    pub expected_end: SimTime,
}

/// Counters for reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LsfStats {
    /// Jobs submitted (first attempts).
    pub submitted: u64,
    /// Successful completions.
    pub completed: u64,
    /// Failures (each attempt counted).
    pub failed: u64,
    /// Dispatches (each attempt counted).
    pub dispatched: u64,
    /// Resubmissions after failure.
    pub resubmitted: u64,
}

/// The batch cluster state.
pub struct LsfCluster {
    jobs: BTreeMap<JobId, Job>,
    pending: VecDeque<JobId>,
    /// Per-server running-job index.
    running_on: BTreeMap<ServerId, Vec<JobId>>,
    /// Servers eligible for batch work (the database tier).
    exec_hosts: Vec<ServerId>,
    /// "A finite number of scheduled jobs per database server."
    pub job_limit_per_server: u32,
    /// Master daemon availability (wired to the LSF master service by
    /// the world driver). No dispatch happens while the master is down.
    pub master_up: bool,
    /// Jobs currently in `Failed` state (index; kept in sync by
    /// `fail`/`resubmit`).
    failed_ids: BTreeSet<JobId>,
    next_job: u64,
    stats: LsfStats,
}

impl LsfCluster {
    /// New cluster over the given execution hosts.
    pub fn new(exec_hosts: Vec<ServerId>, job_limit_per_server: u32) -> Self {
        LsfCluster {
            jobs: BTreeMap::new(),
            pending: VecDeque::new(),
            running_on: BTreeMap::new(),
            exec_hosts,
            job_limit_per_server,
            master_up: true,
            failed_ids: BTreeSet::new(),
            next_job: 0,
            stats: LsfStats::default(),
        }
    }

    /// Execution hosts.
    pub fn exec_hosts(&self) -> &[ServerId] {
        &self.exec_hosts
    }

    /// Submit a new job into the queue.
    pub fn submit(&mut self, spec: JobSpec, now: SimTime) -> JobId {
        let id = JobId(self.next_job);
        self.next_job += 1;
        self.jobs.insert(id, Job::new(id, spec, now));
        self.pending.push_back(id);
        self.stats.submitted += 1;
        id
    }

    /// Resubmit a failed job (a fresh attempt of the same work). Keeps
    /// the attempt/tried-server history so smarter policies can avoid
    /// the machine that just failed. No-op unless the job is `Failed`.
    pub fn resubmit(&mut self, id: JobId) -> bool {
        if let Some(job) = self.jobs.get_mut(&id) {
            if matches!(job.state, JobState::Failed { .. }) {
                job.state = JobState::Pending;
                self.pending.push_back(id);
                self.failed_ids.remove(&id);
                self.stats.resubmitted += 1;
                return true;
            }
        }
        false
    }

    /// Job accessor.
    pub fn job(&self, id: JobId) -> Option<&Job> {
        self.jobs.get(&id)
    }

    /// All jobs (id order).
    pub fn jobs(&self) -> impl Iterator<Item = &Job> {
        self.jobs.values()
    }

    /// Jobs currently running on `server`.
    pub fn running_on(&self, server: ServerId) -> &[JobId] {
        self.running_on
            .get(&server)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Number of queued jobs.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Ids of jobs currently in `Failed` state (indexed — O(failed),
    /// not O(all jobs ever)).
    pub fn failed_ids(&self) -> Vec<JobId> {
        self.failed_ids.iter().copied().collect()
    }

    /// Counters.
    pub fn stats(&self) -> LsfStats {
        self.stats
    }

    /// Build the candidate snapshot a selector sees. `db_serving_on`
    /// reports whether the database on a host is currently serving.
    pub fn candidates<F>(
        &self,
        servers: &BTreeMap<ServerId, Server>,
        db_serving_on: F,
    ) -> Vec<ServerCandidate>
    where
        F: Fn(ServerId) -> bool,
    {
        self.exec_hosts
            .iter()
            .filter_map(|&sid| {
                let srv = servers.get(&sid)?;
                Some(ServerCandidate {
                    server: sid,
                    spec: srv.spec,
                    running_jobs: self.running_on(sid).len() as u32,
                    job_limit: self.job_limit_per_server,
                    cpu_utilization: srv.cpu_utilization(),
                    db_serving: db_serving_on(sid),
                    up: srv.is_up(),
                })
            })
            .collect()
    }

    /// Dispatch pending jobs through `selector`. Each dispatched job
    /// spawns a process on its server (demand flows into the OS model)
    /// and reports an expected completion time inflated by the server's
    /// post-placement CPU saturation.
    ///
    /// Jobs the selector cannot place stay queued, order preserved.
    pub fn dispatch_pending<S, F>(
        &mut self,
        selector: &mut S,
        servers: &mut BTreeMap<ServerId, Server>,
        db_serving_on: F,
        now: SimTime,
    ) -> Vec<Dispatch>
    where
        S: ServerSelector + ?Sized,
        F: Fn(ServerId) -> bool,
    {
        if !self.master_up {
            return Vec::new();
        }
        let mut dispatched = Vec::new();
        let mut still_pending = VecDeque::new();
        // Candidate acceptability (up/db/slots) is job-independent, so
        // once no candidate accepts jobs, every remaining pending job is
        // equally stuck — stop scanning (head-of-line FIFO semantics).
        // The snapshot is built once and updated in place per placement.
        let mut cands = self.candidates(servers, &db_serving_on);
        while let Some(jid) = self.pending.pop_front() {
            // qoslint::allow(no-panic, jid was drawn from the pending queue)
            let job = self.jobs.get(&jid).expect("pending job exists");
            if !cands.iter().any(|c| c.accepts_jobs()) {
                still_pending.push_back(jid);
                still_pending.extend(self.pending.drain(..));
                break;
            }
            let choice = selector.select(job, &cands);
            match choice {
                Some(sid) => {
                    // qoslint::allow(no-panic, sid and jid were validated by the dispatch scan above)
                    let srv = servers.get_mut(&sid).expect("candidate server exists");
                    // qoslint::allow(no-panic, sid and jid were validated by the dispatch scan above)
                    let job = self.jobs.get_mut(&jid).expect("pending job exists");
                    let pid = srv.procs.spawn(
                        "lsf_job",
                        format!("{} {}", job.spec.kind.tag(), jid),
                        job.spec.user.clone(),
                        job.spec.cpu_demand,
                        job.spec.mem_mb,
                        job.spec.io_demand,
                        now,
                    );
                    // Saturation stretches the runtime: a job on a box at
                    // 2× capacity takes ~2× longer.
                    let stretch = srv.cpu_utilization().max(1.0);
                    let runtime =
                        SimDuration::from_secs_f64(job.spec.runtime.as_secs() as f64 * stretch);
                    let expected_end = now + runtime;
                    job.state = JobState::Running {
                        server: sid,
                        pid,
                        started: now,
                        expected_end,
                    };
                    job.attempts += 1;
                    if !job.tried_servers.contains(&sid) {
                        job.tried_servers.push(sid);
                    }
                    self.running_on.entry(sid).or_default().push(jid);
                    self.stats.dispatched += 1;
                    dispatched.push(Dispatch {
                        job: jid,
                        server: sid,
                        expected_end,
                    });
                    if let Some(c) = cands.iter_mut().find(|c| c.server == sid) {
                        c.running_jobs += 1;
                        c.cpu_utilization = servers
                            .get(&sid)
                            .map(|s| s.cpu_utilization())
                            .unwrap_or(0.0);
                    }
                }
                None => still_pending.push_back(jid),
            }
        }
        self.pending = still_pending;
        dispatched
    }

    /// Mark a running job completed; removes its process.
    pub fn complete(
        &mut self,
        id: JobId,
        servers: &mut BTreeMap<ServerId, Server>,
        now: SimTime,
    ) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        let JobState::Running { server, pid, .. } = job.state else {
            return false;
        };
        if let Some(srv) = servers.get_mut(&server) {
            srv.procs.kill(pid);
        }
        job.state = JobState::Completed { at: now };
        if let Some(v) = self.running_on.get_mut(&server) {
            v.retain(|j| *j != id);
        }
        self.stats.completed += 1;
        true
    }

    /// Fail a running job (db crash, server crash, …); removes its
    /// process if the server still exists.
    pub fn fail(
        &mut self,
        id: JobId,
        reason: FailReason,
        servers: &mut BTreeMap<ServerId, Server>,
        now: SimTime,
    ) -> bool {
        let Some(job) = self.jobs.get_mut(&id) else {
            return false;
        };
        let JobState::Running { server, pid, .. } = job.state else {
            return false;
        };
        if let Some(srv) = servers.get_mut(&server) {
            srv.procs.kill(pid);
        }
        job.state = JobState::Failed { at: now, reason };
        self.failed_ids.insert(id);
        if let Some(v) = self.running_on.get_mut(&server) {
            v.retain(|j| *j != id);
        }
        self.stats.failed += 1;
        true
    }

    /// Fail every job running on `server` (used when its database or
    /// the machine itself crashes). Returns the failed job ids.
    pub fn fail_all_on(
        &mut self,
        server: ServerId,
        reason: FailReason,
        servers: &mut BTreeMap<ServerId, Server>,
        now: SimTime,
    ) -> Vec<JobId> {
        let ids: Vec<JobId> = self.running_on(server).to_vec();
        for id in &ids {
            self.fail(*id, reason, servers, now);
        }
        ids
    }
}

/// Per-hour probability that a database crashes, as a function of its
/// server's CPU utilisation. Below ~90 % the database is stable; past
/// saturation the hazard climbs steeply — "large database jobs scheduled
/// to run overnight would frequently crash databases".
pub fn db_crash_hazard_per_hour(cpu_utilization: f64) -> f64 {
    let u = cpu_utilization.max(0.0);
    if u <= 0.9 {
        0.0
    } else {
        // Hazard rate (events/hour), capped: 0.9→0, 1.2→0.016,
        // 1.5→0.072, 2.0→0.29 — a persistently 2×-overloaded database
        // survives a few hours at best; calibrated so the year-1
        // scenario produces the paper's ~weekly mid-job crash tempo.
        (0.12 * (u - 0.9).powi(2) * (1.0 + u)).min(0.5)
    }
}

/// Sample whether a database crashes during `dt` at the given
/// utilisation, using the caller's RNG stream.
pub fn db_crash_roll(cpu_utilization: f64, dt: SimDuration, rng: &mut SimRng) -> bool {
    let hazard = db_crash_hazard_per_hour(cpu_utilization);
    if hazard <= 0.0 {
        return false;
    }
    let p = 1.0 - (-hazard * dt.as_hours_f64()).exp();
    rng.chance(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobKind;
    use crate::select::LeastLoadedSelector;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::Site;

    fn make_servers(n: u32) -> BTreeMap<ServerId, Server> {
        (0..n)
            .map(|i| {
                (
                    ServerId(i),
                    Server::new(
                        ServerId(i),
                        format!("db{i:03}"),
                        HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
                        Site::new("London", "LDN"),
                    ),
                )
            })
            .collect()
    }

    fn cluster(n: u32) -> LsfCluster {
        LsfCluster::new((0..n).map(ServerId).collect(), 3)
    }

    #[test]
    fn submit_dispatch_complete_lifecycle() {
        let mut servers = make_servers(2);
        let mut lsf = cluster(2);
        let id = lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        assert_eq!(lsf.pending_count(), 1);
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        assert_eq!(d.len(), 1);
        assert_eq!(lsf.pending_count(), 0);
        let job = lsf.job(id).unwrap();
        assert!(job.is_running());
        // The job's process exists on the chosen server.
        let sid = d[0].server;
        assert_eq!(servers[&sid].procs.live_count("lsf_job"), 1);
        assert!(lsf.complete(id, &mut servers, SimTime::from_mins(30)));
        assert!(lsf.job(id).unwrap().is_completed());
        assert_eq!(servers[&sid].procs.live_count("lsf_job"), 0);
        assert_eq!(lsf.stats().completed, 1);
    }

    #[test]
    fn master_down_blocks_dispatch() {
        let mut servers = make_servers(1);
        let mut lsf = cluster(1);
        lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        lsf.master_up = false;
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        assert!(d.is_empty());
        assert_eq!(lsf.pending_count(), 1);
        lsf.master_up = true;
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn job_limit_is_enforced() {
        let mut servers = make_servers(1);
        let mut lsf = cluster(1); // limit 3 on a single host
        for _ in 0..5 {
            lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        }
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        assert_eq!(d.len(), 3);
        assert_eq!(lsf.pending_count(), 2);
        assert_eq!(lsf.running_on(ServerId(0)).len(), 3);
    }

    #[test]
    fn db_down_excludes_host() {
        let mut servers = make_servers(2);
        let mut lsf = cluster(2);
        lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |sid| sid != ServerId(0), // db on 0 is down
            SimTime::ZERO,
        );
        assert_eq!(d[0].server, ServerId(1));
    }

    #[test]
    fn fail_all_on_server_and_resubmit() {
        let mut servers = make_servers(1);
        let mut lsf = cluster(1);
        let a = lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        let b = lsf.submit(JobSpec::defaults_for(JobKind::Report, "v"), SimTime::ZERO);
        lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        let failed = lsf.fail_all_on(
            ServerId(0),
            FailReason::DbCrash,
            &mut servers,
            SimTime::from_mins(10),
        );
        assert_eq!(failed.len(), 2);
        assert_eq!(lsf.stats().failed, 2);
        assert!(matches!(
            lsf.job(a).unwrap().state,
            JobState::Failed {
                reason: FailReason::DbCrash,
                ..
            }
        ));
        // Resubmission puts them back in the queue with history intact.
        assert!(lsf.resubmit(a));
        assert!(lsf.resubmit(b));
        assert!(!lsf.resubmit(a)); // already pending
        assert_eq!(lsf.pending_count(), 2);
        assert_eq!(lsf.job(a).unwrap().tried_servers, vec![ServerId(0)]);
        assert_eq!(lsf.stats().resubmitted, 2);
    }

    #[test]
    fn overload_stretches_expected_runtime() {
        let mut servers = make_servers(1);
        // Pre-load the server to 2× capacity.
        let cap = servers[&ServerId(0)].spec.compute_power();
        servers.get_mut(&ServerId(0)).unwrap().external_cpu_demand = cap * 2.0;
        let mut lsf = cluster(1);
        let spec = JobSpec::defaults_for(JobKind::Report, "u"); // 30 min nominal
        lsf.submit(spec, SimTime::ZERO);
        let d = lsf.dispatch_pending(
            &mut LeastLoadedSelector,
            &mut servers,
            |_| true,
            SimTime::ZERO,
        );
        let end = d[0].expected_end;
        assert!(
            end.as_secs() >= 2 * 30 * 60,
            "expected ≥2× stretch, got end = {end}"
        );
    }

    #[test]
    fn crash_hazard_shape() {
        assert_eq!(db_crash_hazard_per_hour(0.5), 0.0);
        assert_eq!(db_crash_hazard_per_hour(0.9), 0.0);
        let h1 = db_crash_hazard_per_hour(1.0);
        let h15 = db_crash_hazard_per_hour(1.5);
        let h2 = db_crash_hazard_per_hour(2.0);
        assert!(h1 > 0.0 && h1 < 0.01, "h(1.0) = {h1}");
        assert!(h15 > h1);
        assert!(h2 > h15);
        assert!(h2 <= 0.5);
    }

    #[test]
    fn crash_roll_statistics() {
        let mut rng = SimRng::stream(5, "crash");
        // At u = 1.5 for 1 hour, p ≈ 1 - exp(-0.47) ≈ 0.37.
        let n = 10_000;
        let hits = (0..n)
            .filter(|_| db_crash_roll(1.5, SimDuration::from_hours(1), &mut rng))
            .count();
        let p = hits as f64 / n as f64;
        let expect = 1.0 - (-db_crash_hazard_per_hour(1.5)).exp();
        assert!((p - expect).abs() < 0.03, "p = {p}, expect = {expect}");
        // Never crashes when idle.
        assert!(!(0..1000).any(|_| db_crash_roll(0.5, SimDuration::from_hours(24), &mut rng)));
    }

    #[test]
    fn complete_on_non_running_job_is_false() {
        let mut servers = make_servers(1);
        let mut lsf = cluster(1);
        let id = lsf.submit(JobSpec::defaults_for(JobKind::Report, "u"), SimTime::ZERO);
        assert!(!lsf.complete(id, &mut servers, SimTime::ZERO)); // still pending
        assert!(!lsf.fail(id, FailReason::Killed, &mut servers, SimTime::ZERO));
    }
}
