//! Server-selection policies for job dispatch.
//!
//! Year 1 at the customer site: "Users via the application GUI, manually
//! selected database servers to submit jobs" — and every crashed job
//! carried the implicit conclusion that the user "did not select a
//! powerful enough server, or selected a server that was already
//! overloaded" (§4). We model that behaviour as **sticky manual
//! selection**: each user has favourite servers chosen without regard to
//! load. The baseline alternatives are uniform random choice and a
//! load-aware greedy policy; the paper's DGSPL-guided policy lives in
//! `intelliqos-core` (it needs the ontologies) but implements the same
//! [`ServerSelector`] trait.

use intelliqos_simkern::SimRng;

use intelliqos_cluster::hardware::HardwareSpec;
use intelliqos_cluster::ids::ServerId;

use crate::job::Job;

/// A dispatch-time snapshot of one candidate server.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCandidate {
    /// Which server.
    pub server: ServerId,
    /// Its hardware.
    pub spec: HardwareSpec,
    /// Jobs already running there.
    pub running_jobs: u32,
    /// The per-server job limit.
    pub job_limit: u32,
    /// Current CPU utilisation fraction (hidden truth at dispatch time;
    /// selectors that shouldn't know it must ignore it).
    pub cpu_utilization: f64,
    /// Is the database on it currently serving?
    pub db_serving: bool,
    /// Is the server up at all?
    pub up: bool,
}

impl ServerCandidate {
    /// Does this candidate have a free job slot and a live database?
    pub fn accepts_jobs(&self) -> bool {
        self.up && self.db_serving && self.running_jobs < self.job_limit
    }
}

/// A policy choosing where a job goes.
pub trait ServerSelector {
    /// Pick a server for `job` among `candidates`, or `None` when no
    /// acceptable server exists (the job stays queued).
    fn select(&mut self, job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId>;

    /// Human-readable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Year-1 behaviour: each user sticks to a couple of favourite servers
/// picked by habit, not load. If a favourite has a free slot it gets the
/// job even when it is already melting; only when **all** favourites are
/// unavailable does the user grudgingly pick something else at random.
pub struct ManualStickySelector {
    rng: SimRng,
    favourites_per_user: usize,
}

impl ManualStickySelector {
    /// New selector with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        ManualStickySelector {
            rng,
            favourites_per_user: 2,
        }
    }

    /// A user's favourite servers: a stable pseudo-random subset keyed
    /// by the user name (habit, reproducibly modelled).
    fn favourites(&self, user: &str, n_candidates: usize) -> Vec<usize> {
        // Deterministic per-user picks independent of the RNG state so a
        // user's habit never changes mid-year.
        let mut picks = Vec::new();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in user.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        for k in 0..self.favourites_per_user {
            let idx = ((h.rotate_left(13 * (k as u32 + 1))) % n_candidates.max(1) as u64) as usize;
            if !picks.contains(&idx) {
                picks.push(idx);
            }
        }
        picks
    }
}

impl ServerSelector for ManualStickySelector {
    fn select(&mut self, job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId> {
        if candidates.is_empty() {
            return None;
        }
        // Try the habitual favourites first, load unseen.
        for idx in self.favourites(&job.spec.user, candidates.len()) {
            let c = &candidates[idx];
            if c.accepts_jobs() {
                return Some(c.server);
            }
        }
        // Grudging fallback: uniformly random among acceptable servers.
        let acceptable: Vec<&ServerCandidate> =
            candidates.iter().filter(|c| c.accepts_jobs()).collect();
        if acceptable.is_empty() {
            None
        } else {
            Some(acceptable[self.rng.index(acceptable.len())].server)
        }
    }

    fn name(&self) -> &'static str {
        "manual-sticky"
    }
}

/// Uniform random choice among acceptable servers — the paper's
/// "choosing randomly a server for resubmitting a failed job, without
/// any knowledge of its past job submission history".
pub struct RandomSelector {
    rng: SimRng,
}

impl RandomSelector {
    /// New selector with its own RNG stream.
    pub fn new(rng: SimRng) -> Self {
        RandomSelector { rng }
    }
}

impl ServerSelector for RandomSelector {
    fn select(&mut self, _job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId> {
        let acceptable: Vec<&ServerCandidate> =
            candidates.iter().filter(|c| c.accepts_jobs()).collect();
        if acceptable.is_empty() {
            None
        } else {
            Some(acceptable[self.rng.index(acceptable.len())].server)
        }
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Load-aware greedy: acceptable server with the lowest utilisation,
/// ties broken by higher compute power. An oracle upper bound the
/// DGSPL policy approximates with 15-minute-old information.
pub struct LeastLoadedSelector;

impl ServerSelector for LeastLoadedSelector {
    fn select(&mut self, _job: &Job, candidates: &[ServerCandidate]) -> Option<ServerId> {
        candidates
            .iter()
            .filter(|c| c.accepts_jobs())
            .min_by(|a, b| {
                a.cpu_utilization
                    .partial_cmp(&b.cpu_utilization)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(
                        b.spec
                            .compute_power()
                            .partial_cmp(&a.spec.compute_power())
                            .unwrap_or(std::cmp::Ordering::Equal),
                    )
            })
            .map(|c| c.server)
    }

    fn name(&self) -> &'static str {
        "least-loaded"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, JobKind, JobSpec};
    use intelliqos_cluster::hardware::ServerModel;
    use intelliqos_simkern::SimTime;

    fn candidates(n: u32) -> Vec<ServerCandidate> {
        (0..n)
            .map(|i| ServerCandidate {
                server: ServerId(i),
                spec: ServerModel::SunE4500.default_spec(),
                running_jobs: 0,
                job_limit: 4,
                cpu_utilization: 0.1 * i as f64,
                db_serving: true,
                up: true,
            })
            .collect()
    }

    fn job_for(user: &str) -> Job {
        Job::new(
            JobId(0),
            JobSpec::defaults_for(JobKind::Report, user),
            SimTime::ZERO,
        )
    }

    fn job() -> Job {
        job_for("alice")
    }

    #[test]
    fn manual_selector_is_sticky_per_user() {
        let mut sel = ManualStickySelector::new(SimRng::stream(1, "manual"));
        let cands = candidates(10);
        let first = sel.select(&job(), &cands).unwrap();
        for _ in 0..20 {
            assert_eq!(
                sel.select(&job(), &cands),
                Some(first),
                "favourite must not drift"
            );
        }
        // A different user generally lands elsewhere (hash-keyed).
        let bob = job_for("bob-the-analyst");
        let bob_pick = sel.select(&bob, &cands).unwrap();
        // (Not guaranteed different, but with 10 servers it is for these names.)
        assert_ne!(first, bob_pick);
    }

    #[test]
    fn manual_selector_ignores_load_on_favourites() {
        let mut sel = ManualStickySelector::new(SimRng::stream(1, "manual"));
        let mut cands = candidates(10);
        let fav = sel.select(&job(), &cands).unwrap();
        // Overload the favourite massively — user still picks it.
        cands[fav.index()].cpu_utilization = 3.0;
        assert_eq!(sel.select(&job(), &cands), Some(fav));
    }

    #[test]
    fn manual_selector_falls_back_when_favourites_full() {
        let mut sel = ManualStickySelector::new(SimRng::stream(1, "manual"));
        let mut cands = candidates(4);
        let fav = sel.select(&job(), &cands).unwrap();
        // Fill every favourite slot.
        for c in cands.iter_mut() {
            if c.server == fav {
                c.running_jobs = c.job_limit;
            }
        }
        let next = sel.select(&job(), &cands).unwrap();
        assert_ne!(next, fav);
    }

    #[test]
    fn random_selector_skips_unacceptable() {
        let mut sel = RandomSelector::new(SimRng::stream(2, "rand"));
        let mut cands = candidates(3);
        cands[0].up = false;
        cands[1].db_serving = false;
        for _ in 0..10 {
            assert_eq!(sel.select(&job(), &cands), Some(ServerId(2)));
        }
        cands[2].running_jobs = cands[2].job_limit;
        assert_eq!(sel.select(&job(), &cands), None);
    }

    #[test]
    fn least_loaded_picks_minimum_utilization() {
        let mut sel = LeastLoadedSelector;
        let cands = candidates(5); // utilisations 0.0 .. 0.4
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(0)));
    }

    #[test]
    fn least_loaded_breaks_ties_by_power() {
        let mut sel = LeastLoadedSelector;
        let mut cands = candidates(2);
        cands[0].cpu_utilization = 0.2;
        cands[1].cpu_utilization = 0.2;
        cands[1].spec = ServerModel::SunE10k.default_spec(); // far more power
        assert_eq!(sel.select(&job(), &cands), Some(ServerId(1)));
    }

    #[test]
    fn empty_candidates_yield_none() {
        let mut m = ManualStickySelector::new(SimRng::stream(3, "m"));
        let mut r = RandomSelector::new(SimRng::stream(3, "r"));
        assert_eq!(m.select(&job(), &[]), None);
        assert_eq!(r.select(&job(), &[]), None);
        assert_eq!(LeastLoadedSelector.select(&job(), &[]), None);
    }

    #[test]
    fn policy_names() {
        assert_eq!(
            ManualStickySelector::new(SimRng::stream(0, "x")).name(),
            "manual-sticky"
        );
        assert_eq!(RandomSelector::new(SimRng::stream(0, "x")).name(), "random");
        assert_eq!(LeastLoadedSelector.name(), "least-loaded");
    }
}
