//! The analyst workload generator.
//!
//! §4 describes the rhythm of the site: interactive analytics during
//! business hours, "large database jobs scheduled to run overnight", and
//! market data feeds arriving around the clock. The generator produces a
//! deterministic job-arrival tape from its own RNG stream: a
//! non-homogeneous Poisson process whose intensity follows that rhythm,
//! with job kinds and sizes drawn per arrival.

use intelliqos_simkern::{SimDuration, SimRng, SimTime, HOUR};

use crate::job::{JobKind, JobSpec};

/// Workload intensity profile and population.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Mean job submissions per hour during business hours.
    pub day_rate_per_hour: f64,
    /// Mean submissions per hour overnight (the big batch window).
    pub night_rate_per_hour: f64,
    /// Mean submissions per hour on weekends.
    pub weekend_rate_per_hour: f64,
    /// Number of distinct analysts submitting work.
    pub analysts: u32,
    /// Relative weights of job kinds, in [`JobKind::ALL`] order
    /// (data-mining, projection, model-eval, trend-sim, report).
    pub kind_weights: [f64; 5],
    /// Runtime spread: multiplier drawn log-normally with this sigma.
    pub runtime_sigma: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            day_rate_per_hour: 14.0,
            night_rate_per_hour: 8.0,
            weekend_rate_per_hour: 4.0,
            analysts: 40,
            // Overnight mining and simulations dominate load even if
            // reports dominate counts.
            kind_weights: [0.18, 0.22, 0.15, 0.15, 0.30],
            runtime_sigma: 0.5,
        }
    }
}

impl WorkloadConfig {
    /// Submission intensity (jobs/hour) at a given instant.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        if t.is_weekend() {
            self.weekend_rate_per_hour
        } else if t.is_business_hours() {
            self.day_rate_per_hour
        } else {
            self.night_rate_per_hour
        }
    }
}

/// One submission on the workload tape.
#[derive(Debug, Clone, PartialEq)]
pub struct Arrival {
    /// When the job is submitted.
    pub at: SimTime,
    /// What is submitted.
    pub spec: JobSpec,
}

/// Deterministic workload tape generator.
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    rng: SimRng,
}

impl WorkloadGenerator {
    /// New generator; give it its own RNG stream.
    pub fn new(config: WorkloadConfig, rng: SimRng) -> Self {
        WorkloadGenerator { config, rng }
    }

    /// Draw one job spec.
    fn draw_spec(&mut self, _at: SimTime) -> JobSpec {
        let kind_idx = self
            .rng
            .choose_weighted(&self.config.kind_weights)
            // qoslint::allow(no-panic, scenario configs always carry positive kind weights)
            .expect("kind weights are positive");
        let kind = JobKind::ALL[kind_idx];
        let analyst = format!(
            "analyst{:02}",
            self.rng
                .uniform_u64(0, self.config.analysts.max(1) as u64 - 1)
        );
        let mut spec = JobSpec::defaults_for(kind, analyst);
        // Size heterogeneity: runtimes spread log-normally around the
        // kind's nominal value; demands scale with the same draw (a
        // bigger mining run also eats more memory and I/O).
        let scale = self
            .rng
            .lognormal_median(1.0, self.config.runtime_sigma)
            .clamp(0.25, 6.0);
        spec.runtime = SimDuration::from_secs_f64(spec.runtime.as_secs() as f64 * scale);
        spec.cpu_demand *= scale.sqrt();
        spec.mem_mb *= scale.sqrt();
        spec.io_demand = (spec.io_demand * scale.sqrt()).min(0.9);
        spec
    }

    /// Generate the arrival tape over `[0, horizon)` by thinning a
    /// homogeneous Poisson process at the peak rate.
    pub fn generate_tape(&mut self, horizon: SimDuration) -> Vec<Arrival> {
        let peak = self
            .config
            .day_rate_per_hour
            .max(self.config.night_rate_per_hour)
            .max(self.config.weekend_rate_per_hour);
        assert!(peak > 0.0, "workload rate must be positive");
        let mean_gap_secs = HOUR as f64 / peak;
        let mut tape = Vec::new();
        let mut t = 0.0f64;
        let horizon_s = horizon.as_secs() as f64;
        loop {
            t += self.rng.exponential(mean_gap_secs);
            if t >= horizon_s {
                break;
            }
            let at = SimTime::from_secs(t as u64);
            // Thinning: accept with prob rate(t)/peak.
            let accept = self.rng.chance(self.config.rate_at(at) / peak);
            if accept {
                let spec = self.draw_spec(at);
                tape.push(Arrival { at, spec });
            } else {
                // Burn the same number of draws as the accept path so the
                // tape prefix is stable under horizon extension.
                let _ = self.draw_spec(at);
            }
        }
        tape
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_simkern::{DAY, WEEK};

    fn generator(seed: u64) -> WorkloadGenerator {
        WorkloadGenerator::new(WorkloadConfig::default(), SimRng::stream(seed, "workload"))
    }

    #[test]
    fn tape_is_deterministic_and_sorted() {
        let a = generator(1).generate_tape(SimDuration::from_days(7));
        let b = generator(1).generate_tape(SimDuration::from_days(7));
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x == y));
        assert!(a.windows(2).all(|w| w[0].at <= w[1].at));
        assert!(!a.is_empty());
    }

    #[test]
    fn weekly_volume_is_plausible() {
        // Expected ≈ 5×(12h×14 + 12h×8) + 2×24h×4 = 5×264 + 192 = 1512.
        let tape = generator(2).generate_tape(SimDuration::from_secs(WEEK));
        let n = tape.len() as f64;
        assert!((n - 1512.0).abs() < 200.0, "n = {n}");
    }

    #[test]
    fn day_rate_exceeds_weekend_rate() {
        let tape = generator(3).generate_tape(SimDuration::from_days(14));
        let weekday: usize = tape.iter().filter(|a| !a.at.is_weekend()).count();
        let weekend: usize = tape.iter().filter(|a| a.at.is_weekend()).count();
        // 10 weekdays vs 4 weekend days; normalise per day.
        let wd_per_day = weekday as f64 / 10.0;
        let we_per_day = weekend as f64 / 4.0;
        assert!(
            wd_per_day > we_per_day * 1.5,
            "wd {wd_per_day} we {we_per_day}"
        );
    }

    #[test]
    fn all_job_kinds_appear() {
        let tape = generator(4).generate_tape(SimDuration::from_secs(WEEK));
        for kind in JobKind::ALL {
            assert!(
                tape.iter().any(|a| a.spec.kind == kind),
                "missing kind {kind}"
            );
        }
    }

    #[test]
    fn runtimes_are_heterogeneous_and_bounded() {
        let tape = generator(5).generate_tape(SimDuration::from_days(3));
        let mining: Vec<&Arrival> = tape
            .iter()
            .filter(|a| a.spec.kind == JobKind::DataMining)
            .collect();
        assert!(mining.len() > 3);
        let min = mining
            .iter()
            .map(|a| a.spec.runtime.as_secs())
            .min()
            .unwrap();
        let max = mining
            .iter()
            .map(|a| a.spec.runtime.as_secs())
            .max()
            .unwrap();
        assert!(max > min, "no heterogeneity");
        // Clamp bounds: 0.25×..6× of the 180-minute nominal.
        assert!(min >= (180 * 60) / 4);
        assert!(max <= 180 * 60 * 6);
    }

    #[test]
    fn rate_at_follows_calendar() {
        let cfg = WorkloadConfig::default();
        let mon_10am = SimTime::from_hours(10);
        let mon_2am = SimTime::from_hours(2);
        let sat_noon = SimTime::from_days(5) + SimDuration::from_hours(12);
        assert_eq!(cfg.rate_at(mon_10am), 14.0);
        assert_eq!(cfg.rate_at(mon_2am), 8.0);
        assert_eq!(cfg.rate_at(sat_noon), 4.0);
    }

    #[test]
    fn analysts_are_a_finite_population() {
        let tape = generator(6).generate_tape(SimDuration::from_secs(DAY));
        let mut users: Vec<&str> = tape.iter().map(|a| a.spec.user.as_str()).collect();
        users.sort_unstable();
        users.dedup();
        assert!(users.len() <= 40);
        assert!(users.len() > 5, "population too small: {}", users.len());
    }
}
