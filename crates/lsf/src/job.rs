//! Batch jobs.
//!
//! The customer's analysts ran "data-mining, financial projections,
//! financial model evaluations, market data/trend simulations and
//! analytical reports" through LSF against the database tier (§4).
//! Jobs carry resource demands that land on the hosting server for the
//! duration of the run — overload from bad placement is what crashes
//! databases mid-job.

use std::fmt;

use intelliqos_simkern::{SimDuration, SimTime};

use intelliqos_cluster::ids::{Pid, ServerId};

/// Unique job id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job{:06}", self.0)
    }
}

/// The analyst workload mix from §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JobKind {
    /// Repeated comparisons of large data groups — the heaviest class.
    DataMining,
    /// Financial projections.
    Projection,
    /// Financial model evaluations.
    ModelEvaluation,
    /// Market data / trend simulations.
    TrendSimulation,
    /// Analytical reports.
    Report,
}

impl JobKind {
    /// All kinds.
    pub const ALL: [JobKind; 5] = [
        JobKind::DataMining,
        JobKind::Projection,
        JobKind::ModelEvaluation,
        JobKind::TrendSimulation,
        JobKind::Report,
    ];

    /// Short tag for logs/ontologies.
    pub fn tag(self) -> &'static str {
        match self {
            JobKind::DataMining => "datamine",
            JobKind::Projection => "project",
            JobKind::ModelEvaluation => "modeleval",
            JobKind::TrendSimulation => "trendsim",
            JobKind::Report => "report",
        }
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Why a job failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The database hosting the job crashed mid-run.
    DbCrash,
    /// The hosting server itself went down.
    ServerCrash,
    /// LSF lost the job (master crash with no recovery).
    LsfLost,
    /// Killed by an operator/agent.
    Killed,
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum JobState {
    /// Waiting in the queue.
    Pending,
    /// Dispatched and running.
    Running {
        /// Hosting server.
        server: ServerId,
        /// Process id on the hosting server.
        pid: Pid,
        /// When it started.
        started: SimTime,
        /// When it will complete if nothing goes wrong.
        expected_end: SimTime,
    },
    /// Finished successfully.
    Completed {
        /// Completion time.
        at: SimTime,
    },
    /// Failed; may be resubmitted (a fresh attempt re-enters `Pending`).
    Failed {
        /// Failure time.
        at: SimTime,
        /// Why.
        reason: FailReason,
    },
}

/// Immutable description of the work.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Workload class.
    pub kind: JobKind,
    /// Submitting analyst.
    pub user: String,
    /// CPU demand while running (compute-power units).
    pub cpu_demand: f64,
    /// Resident memory while running, MB.
    pub mem_mb: f64,
    /// I/O demand while running (fraction of server disk capacity).
    pub io_demand: f64,
    /// Nominal runtime on an unloaded server.
    pub runtime: SimDuration,
}

impl JobSpec {
    /// Period-plausible default demands per kind. Data-mining jobs are
    /// the big ones — "the majority of database servers cannot withstand
    /// the load of running repeated comparisons of large data groups".
    pub fn defaults_for(kind: JobKind, user: impl Into<String>) -> JobSpec {
        let (cpu, mem, io, mins) = match kind {
            JobKind::DataMining => (2.5, 2048.0, 0.35, 180),
            JobKind::Projection => (1.2, 768.0, 0.15, 60),
            JobKind::ModelEvaluation => (1.5, 1024.0, 0.20, 90),
            JobKind::TrendSimulation => (2.0, 1536.0, 0.25, 120),
            JobKind::Report => (0.5, 384.0, 0.10, 30),
        };
        JobSpec {
            kind,
            user: user.into(),
            cpu_demand: cpu,
            mem_mb: mem,
            io_demand: io,
            runtime: SimDuration::from_mins(mins),
        }
    }
}

/// A job with its mutable state and attempt accounting.
#[derive(Debug, Clone)]
pub struct Job {
    /// Identity.
    pub id: JobId,
    /// What to run.
    pub spec: JobSpec,
    /// Current state.
    pub state: JobState,
    /// When it was first submitted.
    pub submitted: SimTime,
    /// How many times it has been (re)dispatched.
    pub attempts: u32,
    /// Servers already tried (used by smarter rescheduling policies to
    /// avoid bouncing back to the machine that just crashed).
    pub tried_servers: Vec<ServerId>,
}

impl Job {
    /// Fresh pending job.
    pub fn new(id: JobId, spec: JobSpec, submitted: SimTime) -> Self {
        Job {
            id,
            spec,
            state: JobState::Pending,
            submitted,
            attempts: 0,
            tried_servers: Vec::new(),
        }
    }

    /// Is the job in a terminal success state?
    pub fn is_completed(&self) -> bool {
        matches!(self.state, JobState::Completed { .. })
    }

    /// Is the job currently running?
    pub fn is_running(&self) -> bool {
        matches!(self.state, JobState::Running { .. })
    }

    /// Is the job waiting for dispatch?
    pub fn is_pending(&self) -> bool {
        matches!(self.state, JobState::Pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_specs_scale_by_kind() {
        let dm = JobSpec::defaults_for(JobKind::DataMining, "ana");
        let rep = JobSpec::defaults_for(JobKind::Report, "ana");
        assert!(dm.cpu_demand > rep.cpu_demand);
        assert!(dm.runtime > rep.runtime);
        assert_eq!(dm.user, "ana");
    }

    #[test]
    fn job_state_predicates() {
        let mut j = Job::new(
            JobId(1),
            JobSpec::defaults_for(JobKind::Report, "u"),
            SimTime::ZERO,
        );
        assert!(j.is_pending());
        assert!(!j.is_running());
        j.state = JobState::Completed {
            at: SimTime::from_mins(5),
        };
        assert!(j.is_completed());
        assert!(!j.is_pending());
    }

    #[test]
    fn display_formats() {
        assert_eq!(JobId(42).to_string(), "job000042");
        assert_eq!(JobKind::DataMining.to_string(), "datamine");
    }
}
