//! # intelliqos-baseline
//!
//! The comparison baseline for the `intelliqos` reproduction of Corsava
//! & Getov (IPDPS 2003): a BMC-Patrol/SystemEdge-like **notify-only
//! centralized monitor** (resident footprint per Figures 3–4, human
//! detection latencies per §4) and the **manual operations** repair
//! pipeline (≈2 h simple / ≈4 h complex incidents). Together these
//! generate the paper's "year 1" — the world before intelliagents.

#![warn(missing_docs)]

pub mod ops;
pub mod patrol;

pub use ops::{resolve_manually, ManualIncident, ManualRepairModel};
pub use patrol::{HumanDetectionModel, ResidentMonitorFootprint};
