//! The manual-operations (human repair) model.
//!
//! §4, year 1: "It could take up to 2 hours at a time for a service or
//! server restart, as faults had to be diagnosed … a number of people
//! had to be notified about the problem before any decisive action was
//! taken … Often experts from more than one areas had to be called in
//! together … The whole troubleshooting procedure (and subsequent
//! downtime) could take an average of 4 hours in such cases."
//!
//! The pipeline for one incident under manual operations:
//!
//! ```text
//! onset → (latent escalation?) → noticed → on-call paged →
//!   diagnose+repair (≈2 h simple / ≈4 h complex) → service restored
//! ```

use intelliqos_simkern::{SimDuration, SimRng, SimTime};

use intelliqos_cluster::faults::Complexity;

use crate::patrol::HumanDetectionModel;

/// Repair-time model for human operators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualRepairModel {
    /// Mean end-to-end repair for a simple fault (one admin).
    pub simple_mean: SimDuration,
    /// Mean for a complex fault (multiple experts called in).
    pub complex_mean: SimDuration,
    /// Extra delay to locate and page the on-call person at night — the
    /// paper's "time-delays caused by operators … trying to locate the
    /// on-call people during the night".
    pub night_paging_mean: SimDuration,
}

impl Default for ManualRepairModel {
    fn default() -> Self {
        ManualRepairModel {
            simple_mean: SimDuration::from_hours(2),
            complex_mean: SimDuration::from_hours(4),
            night_paging_mean: SimDuration::from_mins(45),
        }
    }
}

impl ManualRepairModel {
    /// Sample the diagnose-and-repair duration (excludes detection).
    pub fn sample_repair(&self, complexity: Complexity, rng: &mut SimRng) -> SimDuration {
        let mean = match complexity {
            Complexity::Simple => self.simple_mean,
            Complexity::Complex => self.complex_mean,
        }
        .as_secs() as f64;
        let sigma = 0.4f64;
        let median = mean / (sigma * sigma / 2.0).exp();
        SimDuration::from_secs_f64(rng.lognormal_median(median, sigma).max(600.0))
    }

    /// Sample the paging delay for a fault noticed at `when`.
    pub fn sample_paging(&self, when: SimTime, rng: &mut SimRng) -> SimDuration {
        if when.is_business_hours() {
            // Admins are on site.
            SimDuration::from_secs_f64(rng.uniform(60.0, 600.0))
        } else {
            let mean = self.night_paging_mean.as_secs() as f64;
            SimDuration::from_secs_f64(rng.lognormal_median(mean * 0.8, 0.5).max(120.0))
        }
    }
}

/// A fully resolved manual incident timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManualIncident {
    /// Fault onset.
    pub onset: SimTime,
    /// When somebody noticed.
    pub noticed: SimTime,
    /// When the right people were engaged.
    pub engaged: SimTime,
    /// When service was restored.
    pub restored: SimTime,
}

impl ManualIncident {
    /// Total downtime of the incident.
    pub fn downtime(&self) -> SimDuration {
        self.restored.since(self.onset)
    }
}

/// Resolve one incident end-to-end under manual operations.
pub fn resolve_manually(
    onset: SimTime,
    latent: bool,
    complexity: Complexity,
    detection: &HumanDetectionModel,
    repair: &ManualRepairModel,
    rng: &mut SimRng,
) -> ManualIncident {
    let escalation = if latent {
        detection.latent_escalation_delay(rng)
    } else {
        SimDuration::ZERO
    };
    let visible_at = onset + escalation;
    let noticed = visible_at + detection.sample_delay(visible_at, rng);
    let engaged = noticed + repair.sample_paging(noticed, rng);
    let restored = engaged + repair.sample_repair(complexity, rng);
    ManualIncident {
        onset,
        noticed,
        engaged,
        restored,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (HumanDetectionModel, ManualRepairModel) {
        (HumanDetectionModel::default(), ManualRepairModel::default())
    }

    #[test]
    fn repair_means_match_paper() {
        let (_, repair) = models();
        let mut rng = SimRng::stream(1, "repair");
        let n = 5000;
        let simple: f64 = (0..n)
            .map(|_| {
                repair
                    .sample_repair(Complexity::Simple, &mut rng)
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        let complex: f64 = (0..n)
            .map(|_| {
                repair
                    .sample_repair(Complexity::Complex, &mut rng)
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((simple - 2.0).abs() < 0.15, "simple = {simple}h");
        assert!((complex - 4.0).abs() < 0.3, "complex = {complex}h");
    }

    #[test]
    fn business_hours_incident_is_hours_not_days() {
        let (det, rep) = models();
        let mut rng = SimRng::stream(2, "inc");
        let onset = SimTime::from_hours(10); // Monday 10:00
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                resolve_manually(onset, false, Complexity::Simple, &det, &rep, &mut rng)
                    .downtime()
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        // ≈1 h detect + ~0.1 h page + ≈2 h repair ⇒ ≈3 h.
        assert!((2.5..=4.0).contains(&mean), "mean = {mean}h");
    }

    #[test]
    fn weekend_incident_is_dominated_by_detection() {
        let (det, rep) = models();
        let mut rng = SimRng::stream(3, "weekend");
        let onset = SimTime::from_days(5) + SimDuration::from_hours(3); // Saturday 03:00
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| {
                resolve_manually(onset, false, Complexity::Simple, &det, &rep, &mut rng)
                    .downtime()
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!((24.0..=32.0).contains(&mean), "mean = {mean}h");
    }

    #[test]
    fn latent_faults_take_longer() {
        let (det, rep) = models();
        let onset = SimTime::from_hours(10);
        let n = 2000;
        let mut rng = SimRng::stream(4, "latent");
        let plain: f64 = (0..n)
            .map(|_| {
                resolve_manually(onset, false, Complexity::Simple, &det, &rep, &mut rng)
                    .downtime()
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        let mut rng = SimRng::stream(4, "latent");
        let latent: f64 = (0..n)
            .map(|_| {
                resolve_manually(onset, true, Complexity::Simple, &det, &rep, &mut rng)
                    .downtime()
                    .as_hours_f64()
            })
            .sum::<f64>()
            / n as f64;
        assert!(latent > plain + 3.0, "plain = {plain}h latent = {latent}h");
    }

    #[test]
    fn timeline_is_monotone() {
        let (det, rep) = models();
        let mut rng = SimRng::stream(5, "mono");
        for h in 0..48 {
            let onset = SimTime::from_hours(h);
            let inc =
                resolve_manually(onset, h % 3 == 0, Complexity::Complex, &det, &rep, &mut rng);
            assert!(inc.onset <= inc.noticed);
            assert!(inc.noticed <= inc.engaged);
            assert!(inc.engaged <= inc.restored);
            assert!(!inc.downtime().is_zero());
        }
    }

    #[test]
    fn paging_is_fast_during_business_hours() {
        let (_, rep) = models();
        let mut rng = SimRng::stream(6, "page");
        let day = SimTime::from_hours(11);
        let night = SimTime::from_hours(2);
        let n = 1000;
        let day_mean: f64 = (0..n)
            .map(|_| rep.sample_paging(day, &mut rng).as_mins_f64())
            .sum::<f64>()
            / n as f64;
        let night_mean: f64 = (0..n)
            .map(|_| rep.sample_paging(night, &mut rng).as_mins_f64())
            .sum::<f64>()
            / n as f64;
        assert!(day_mean < 10.0, "day = {day_mean}m");
        assert!(night_mean > 25.0, "night = {night_mean}m");
    }
}
