//! The incumbent centralized monitor ("BMC Patrol"-like).
//!
//! The customer "used for monitoring BMC patrol and SystemEdge" (§4).
//! That stack is the paper's comparison baseline in three places:
//!
//! * **Figure 3** — its agent consumed 0.17–1.1 % CPU on a monitored
//!   server at peak (vs ≈0.045 % for intelliagents);
//! * **Figure 4** — it kept 32–58 MB resident (vs a flat 1.6 MB);
//! * **detection** — it *notified*; nothing was auto-corrected, so a
//!   fault was only acted on when a human saw the console or a page:
//!   ≈1 h during the day, ≈25 h over weekends, ≈10 h for overnight jobs
//!   (paper, §4, "data provided by the customer using BMC Patrol").
//!
//! We encode those measured behaviours as the baseline's model — the
//! substitution is documented in DESIGN.md.

use intelliqos_simkern::{SimDuration, SimRng, SimTime};

/// Footprint model of the memory-resident monitoring agent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResidentMonitorFootprint {
    /// Median CPU % across half-hour samples.
    pub cpu_median_pct: f64,
    /// Log-normal shape of the CPU samples (collection bursts).
    pub cpu_sigma: f64,
    /// Minimum resident set, MB.
    pub mem_min_mb: f64,
    /// Maximum resident set, MB (history buffers grow and shrink).
    pub mem_max_mb: f64,
}

impl Default for ResidentMonitorFootprint {
    /// Calibrated to Figures 3–4: CPU samples spanning ≈0.17–1.1 % with
    /// a ≈0.4 % median; memory wandering between 32 and 58 MB.
    fn default() -> Self {
        ResidentMonitorFootprint {
            cpu_median_pct: 0.40,
            cpu_sigma: 0.45,
            mem_min_mb: 32.0,
            mem_max_mb: 58.0,
        }
    }
}

impl ResidentMonitorFootprint {
    /// One half-hour CPU sample (Figure 3's jagged series).
    pub fn sample_cpu_pct(&self, rng: &mut SimRng) -> f64 {
        rng.lognormal_median(self.cpu_median_pct, self.cpu_sigma)
            .clamp(0.05, 1.5)
    }

    /// One half-hour memory sample, MB (Figure 4's 32–58 MB band).
    pub fn sample_mem_mb(&self, rng: &mut SimRng) -> f64 {
        rng.uniform(self.mem_min_mb, self.mem_max_mb)
    }
}

/// Human-attention detection model: how long after onset a fault gets
/// *noticed* under notify-only monitoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HumanDetectionModel {
    /// Mean notice delay during business hours.
    pub business_hours_mean: SimDuration,
    /// Mean notice delay for weekday-overnight onsets.
    pub overnight_mean: SimDuration,
    /// Mean notice delay for weekend onsets.
    pub weekend_mean: SimDuration,
}

impl Default for HumanDetectionModel {
    /// The paper's measured values: ≈1 h daytime, ≈10 h overnight,
    /// ≈25 h weekends.
    fn default() -> Self {
        HumanDetectionModel {
            business_hours_mean: SimDuration::from_hours(1),
            overnight_mean: SimDuration::from_hours(10),
            weekend_mean: SimDuration::from_hours(25),
        }
    }
}

impl HumanDetectionModel {
    /// Mean delay for a fault arising at `onset`.
    pub fn mean_delay(&self, onset: SimTime) -> SimDuration {
        if onset.is_weekend() {
            self.weekend_mean
        } else if onset.is_business_hours() {
            self.business_hours_mean
        } else {
            self.overnight_mean
        }
    }

    /// Sample the notice delay for a fault arising at `onset`: a
    /// log-normal spread around the window's mean (somebody occasionally
    /// glances at the console early; sometimes nobody does for ages).
    pub fn sample_delay(&self, onset: SimTime, rng: &mut SimRng) -> SimDuration {
        let mean = self.mean_delay(onset).as_secs() as f64;
        // Median set so the mean of the log-normal matches `mean`:
        // mean = median * exp(sigma^2/2), sigma = 0.6.
        let sigma = 0.6f64;
        let median = mean / (sigma * sigma / 2.0).exp();
        SimDuration::from_secs_f64(rng.lognormal_median(median, sigma).max(60.0))
    }

    /// Latent faults produce no console symptom until they escalate —
    /// the customer's "errors were latent" problem. Modelled as an extra
    /// escalation delay before the ordinary notice clock even starts.
    pub fn latent_escalation_delay(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.lognormal_median(2.5 * 3600.0, 0.6))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_samples_match_figure3_band() {
        let f = ResidentMonitorFootprint::default();
        let mut rng = SimRng::stream(3, "patrol");
        let samples: Vec<f64> = (0..2000).map(|_| f.sample_cpu_pct(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        // Figure 3's eight samples average ≈0.46; accept a broad band.
        assert!((0.3..=0.6).contains(&mean), "mean = {mean}");
        assert!(samples.iter().all(|&s| (0.05..=1.5).contains(&s)));
        // Spiky: some samples near the 1.1 peak Figure 3 shows.
        assert!(samples.iter().any(|&s| s > 0.9));
        assert!(samples.iter().any(|&s| s < 0.2));
    }

    #[test]
    fn mem_samples_match_figure4_band() {
        let f = ResidentMonitorFootprint::default();
        let mut rng = SimRng::stream(4, "patrol");
        for _ in 0..500 {
            let m = f.sample_mem_mb(&mut rng);
            assert!((32.0..58.0).contains(&m), "m = {m}");
        }
    }

    #[test]
    fn detection_window_means_match_paper() {
        let d = HumanDetectionModel::default();
        let mon_10am = SimTime::from_hours(10);
        let mon_2am = SimTime::from_hours(2);
        let sat_noon = SimTime::from_days(5) + SimDuration::from_hours(12);
        assert_eq!(d.mean_delay(mon_10am), SimDuration::from_hours(1));
        assert_eq!(d.mean_delay(mon_2am), SimDuration::from_hours(10));
        assert_eq!(d.mean_delay(sat_noon), SimDuration::from_hours(25));
    }

    #[test]
    fn sampled_delays_average_near_window_mean() {
        let d = HumanDetectionModel::default();
        let mut rng = SimRng::stream(5, "detect");
        let onset = SimTime::from_hours(10); // business hours, mean 1 h
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| d.sample_delay(onset, &mut rng).as_hours_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}h");
    }

    #[test]
    fn delays_have_a_floor() {
        let d = HumanDetectionModel::default();
        let mut rng = SimRng::stream(6, "floor");
        for _ in 0..200 {
            assert!(d.sample_delay(SimTime::from_hours(10), &mut rng).as_secs() >= 60);
        }
    }

    #[test]
    fn latent_escalation_adds_hours() {
        let d = HumanDetectionModel::default();
        let mut rng = SimRng::stream(7, "latent");
        let n = 2000;
        let mean: f64 = (0..n)
            .map(|_| d.latent_escalation_delay(&mut rng).as_hours_f64())
            .sum::<f64>()
            / n as f64;
        assert!(mean > 2.0 && mean < 5.0, "mean = {mean}h");
    }
}
