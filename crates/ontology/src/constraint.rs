//! Constraint stores: min/max bounds on observed variables.
//!
//! §3.3: "The data structures they use are flat ASCII textual ontologies
//! which contain minimum and maximum software and hardware related
//! variables … Our static ontologies represent the constraints in the
//! reasoning." A [`ConstraintStore`] is that ontology fragment: named
//! variables with bounds, checked against a fact snapshot, yielding the
//! violations that seed the causal rules. §3.6: "Every time a baseline
//! setting was not proven to be correct, we adjusted it accordingly" —
//! hence the adjustable-bounds API.

use std::collections::BTreeMap;

use crate::flat::{FlatDoc, FlatError, FlatRecord};

/// Bounds on one variable. Either side may be open.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Bounds {
    /// Inclusive minimum, if bounded below.
    pub min: Option<f64>,
    /// Inclusive maximum, if bounded above.
    pub max: Option<f64>,
}

impl Bounds {
    /// Only an upper bound.
    pub fn at_most(max: f64) -> Bounds {
        Bounds {
            min: None,
            max: Some(max),
        }
    }

    /// Only a lower bound.
    pub fn at_least(min: f64) -> Bounds {
        Bounds {
            min: Some(min),
            max: None,
        }
    }

    /// Both bounds.
    pub fn between(min: f64, max: f64) -> Bounds {
        Bounds {
            min: Some(min),
            max: Some(max),
        }
    }

    /// Does the value satisfy the bounds?
    pub fn check(&self, value: f64) -> bool {
        self.min.map(|m| value >= m).unwrap_or(true) && self.max.map(|m| value <= m).unwrap_or(true)
    }
}

/// How a value violated its bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Variable name.
    pub var: String,
    /// Observed value.
    pub value: f64,
    /// The bounds it broke.
    pub bounds: Bounds,
    /// True when the value exceeded `max` (as opposed to undershooting
    /// `min`).
    pub over: bool,
}

/// A named set of variable bounds.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConstraintStore {
    bounds: BTreeMap<String, Bounds>,
}

impl ConstraintStore {
    /// Empty store.
    pub fn new() -> Self {
        ConstraintStore::default()
    }

    /// Set (or replace) the bounds for a variable.
    pub fn set(&mut self, var: impl Into<String>, bounds: Bounds) {
        self.bounds.insert(var.into(), bounds);
    }

    /// Bounds for a variable.
    pub fn get(&self, var: &str) -> Option<Bounds> {
        self.bounds.get(var).copied()
    }

    /// Number of constrained variables.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Adaptive adjustment (§3.6): widen the violated side of a bound by
    /// `factor` (e.g. 1.2 = 20 % slack) after a false alarm. Returns the
    /// new bounds, or `None` when the variable is unconstrained.
    pub fn relax(&mut self, var: &str, factor: f64) -> Option<Bounds> {
        let b = self.bounds.get_mut(var)?;
        if let Some(max) = b.max.as_mut() {
            *max *= factor;
        }
        if let Some(min) = b.min.as_mut() {
            *min /= factor;
        }
        Some(*b)
    }

    /// Check a fact snapshot; returns every violation, variable order.
    pub fn check(&self, facts: &BTreeMap<String, f64>) -> Vec<Violation> {
        let mut out = Vec::new();
        for (var, bounds) in &self.bounds {
            if let Some(&value) = facts.get(var) {
                if !bounds.check(value) {
                    out.push(Violation {
                        var: var.clone(),
                        value,
                        bounds: *bounds,
                        over: bounds.max.map(|m| value > m).unwrap_or(false),
                    });
                }
            }
        }
        out
    }

    /// The OS-metric baseline set from §3.6, tuned for a healthy server:
    /// memory scan rate / page-outs near zero, a bounded run queue,
    /// minimum idle headroom, bounded blocked processes and disk service
    /// times.
    pub fn os_baselines() -> ConstraintStore {
        let mut c = ConstraintStore::new();
        c.set("scan_rate", Bounds::at_most(200.0));
        c.set("page_outs", Bounds::at_most(50.0));
        c.set("run_queue", Bounds::at_most(4.0));
        c.set("cpu_idle_pct", Bounds::at_least(10.0));
        c.set("blocked_procs", Bounds::at_most(5.0));
        c.set("free_mem_mb", Bounds::at_least(128.0));
        c.set("asvc_t_ms", Bounds::at_most(30.0));
        c.set("wsvc_t_ms", Bounds::at_most(40.0));
        c.set("fs_usage_frac", Bounds::at_most(0.9));
        c.set("zombie_count", Bounds::at_most(10.0));
        c
    }

    /// Serialise to the flat format.
    pub fn to_doc(&self) -> FlatDoc {
        let recs = self
            .bounds
            .iter()
            .map(|(var, b)| {
                let mut r = FlatRecord::new().set("var", var.clone());
                if let Some(min) = b.min {
                    r = r.set_num("min", min);
                }
                if let Some(max) = b.max {
                    r = r.set_num("max", max);
                }
                r
            })
            .collect();
        FlatDoc::new("constraints", 1).with_section("bounds", recs)
    }

    /// Parse from the flat format.
    pub fn from_doc(doc: &FlatDoc) -> Result<ConstraintStore, FlatError> {
        let mut c = ConstraintStore::new();
        for r in doc.section("bounds").unwrap_or(&[]) {
            if let Some(var) = r.get("var") {
                c.set(
                    var,
                    Bounds {
                        min: r.get_num("min"),
                        max: r.get_num("max"),
                    },
                );
            }
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn facts(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn bounds_checks() {
        assert!(Bounds::at_most(5.0).check(5.0));
        assert!(!Bounds::at_most(5.0).check(5.1));
        assert!(Bounds::at_least(2.0).check(2.0));
        assert!(!Bounds::at_least(2.0).check(1.9));
        assert!(Bounds::between(1.0, 3.0).check(2.0));
        assert!(!Bounds::between(1.0, 3.0).check(0.5));
        assert!(Bounds::default().check(f64::MAX));
    }

    #[test]
    fn violations_report_direction() {
        let mut c = ConstraintStore::new();
        c.set("run_queue", Bounds::at_most(4.0));
        c.set("cpu_idle_pct", Bounds::at_least(10.0));
        let v = c.check(&facts(&[("run_queue", 9.0), ("cpu_idle_pct", 2.0)]));
        assert_eq!(v.len(), 2);
        let idle = v.iter().find(|x| x.var == "cpu_idle_pct").unwrap();
        let rq = v.iter().find(|x| x.var == "run_queue").unwrap();
        assert!(!idle.over);
        assert!(rq.over);
    }

    #[test]
    fn unmentioned_facts_ignored() {
        let c = ConstraintStore::os_baselines();
        let v = c.check(&facts(&[("some_other_metric", 1e9)]));
        assert!(v.is_empty());
    }

    #[test]
    fn healthy_server_passes_os_baselines() {
        let c = ConstraintStore::os_baselines();
        let v = c.check(&facts(&[
            ("scan_rate", 0.0),
            ("page_outs", 0.0),
            ("run_queue", 0.5),
            ("cpu_idle_pct", 85.0),
            ("blocked_procs", 0.2),
            ("free_mem_mb", 4096.0),
            ("asvc_t_ms", 7.0),
            ("wsvc_t_ms", 9.0),
            ("fs_usage_frac", 0.4),
            ("zombie_count", 0.0),
        ]));
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn thrashing_server_fails_memory_baselines() {
        let c = ConstraintStore::os_baselines();
        let v = c.check(&facts(&[
            ("scan_rate", 3500.0),
            ("page_outs", 700.0),
            ("free_mem_mb", 40.0),
        ]));
        let vars: Vec<&str> = v.iter().map(|x| x.var.as_str()).collect();
        assert_eq!(vars, vec!["free_mem_mb", "page_outs", "scan_rate"]);
    }

    #[test]
    fn relax_widens_bounds() {
        let mut c = ConstraintStore::new();
        c.set("x", Bounds::between(10.0, 100.0));
        let b = c.relax("x", 1.2).unwrap();
        assert!((b.max.unwrap() - 120.0).abs() < 1e-9);
        assert!((b.min.unwrap() - 10.0 / 1.2).abs() < 1e-9);
        assert!(c.relax("ghost", 1.2).is_none());
    }

    #[test]
    fn roundtrip_flat() {
        let c = ConstraintStore::os_baselines();
        let text = c.to_doc().to_text();
        let back = ConstraintStore::from_doc(&FlatDoc::parse_text(&text).unwrap()).unwrap();
        assert_eq!(back, c);
    }
}
