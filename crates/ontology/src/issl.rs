//! Index Static Service Lists (ISSL).
//!
//! §3.1: ISSLs "contain very basic information about each server or
//! resource IP address and services. They can contain up to 200 entries
//! and are manually updated." They are the bootstrap map an
//! administration server loads before anything dynamic exists.

use crate::flat::{FlatDoc, FlatError, FlatRecord};

/// The hard entry cap from the paper.
pub const ISSL_MAX_ENTRIES: usize = 200;

/// One manually maintained entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsslEntry {
    /// Hostname.
    pub hostname: String,
    /// IP address (dotted string; the fabric's display form).
    pub ip: String,
    /// Names of the services expected on this host.
    pub services: Vec<String>,
}

/// A full ISSL document.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Issl {
    entries: Vec<IsslEntry>,
}

/// Errors specific to ISSL handling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsslError {
    /// The 200-entry cap would be exceeded.
    Full,
    /// A parse-level problem.
    Format(FlatError),
    /// A record was missing a required field.
    MissingField(&'static str),
}

impl std::fmt::Display for IsslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsslError::Full => write!(f, "ISSL is full ({ISSL_MAX_ENTRIES} entries)"),
            IsslError::Format(e) => write!(f, "format error: {e}"),
            IsslError::MissingField(k) => write!(f, "record missing field '{k}'"),
        }
    }
}

impl std::error::Error for IsslError {}

impl Issl {
    /// Empty list.
    pub fn new() -> Self {
        Issl::default()
    }

    /// Add an entry (manual update path). Enforces the 200-entry cap.
    pub fn add(&mut self, entry: IsslEntry) -> Result<(), IsslError> {
        if self.entries.len() >= ISSL_MAX_ENTRIES {
            return Err(IsslError::Full);
        }
        self.entries.push(entry);
        Ok(())
    }

    /// Remove by hostname; returns whether anything was removed.
    pub fn remove(&mut self, hostname: &str) -> bool {
        let before = self.entries.len();
        self.entries.retain(|e| e.hostname != hostname);
        self.entries.len() != before
    }

    /// Lookup by hostname.
    pub fn get(&self, hostname: &str) -> Option<&IsslEntry> {
        self.entries.iter().find(|e| e.hostname == hostname)
    }

    /// All entries in order.
    pub fn entries(&self) -> &[IsslEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Every host expected to run `service`.
    pub fn hosts_of_service(&self, service: &str) -> Vec<&str> {
        self.entries
            .iter()
            .filter(|e| e.services.iter().any(|s| s == service))
            .map(|e| e.hostname.as_str())
            .collect()
    }

    /// Serialise to the flat format.
    pub fn to_doc(&self) -> FlatDoc {
        let records = self
            .entries
            .iter()
            .map(|e| {
                let mut r = FlatRecord::new()
                    .set("hostname", e.hostname.clone())
                    .set("ip", e.ip.clone());
                for s in &e.services {
                    r = r.set("service", s.clone());
                }
                r
            })
            .collect();
        FlatDoc::new("issl", 1).with_section("servers", records)
    }

    /// Parse from the flat format.
    pub fn from_doc(doc: &FlatDoc) -> Result<Issl, IsslError> {
        let mut issl = Issl::new();
        let records = doc.section("servers").unwrap_or(&[]);
        for r in records {
            let entry = IsslEntry {
                hostname: r
                    .get("hostname")
                    .ok_or(IsslError::MissingField("hostname"))?
                    .to_string(),
                ip: r
                    .get("ip")
                    .ok_or(IsslError::MissingField("ip"))?
                    .to_string(),
                services: r.get_all("service").iter().map(|s| s.to_string()).collect(),
            };
            issl.add(entry)?;
        }
        Ok(issl)
    }

    /// Parse from text.
    pub fn parse_text(text: &str) -> Result<Issl, IsslError> {
        let doc = FlatDoc::parse_text(text).map_err(IsslError::Format)?;
        Issl::from_doc(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: usize) -> IsslEntry {
        IsslEntry {
            hostname: format!("db{i:03}"),
            ip: format!("10.1.0.{i}"),
            services: vec![format!("trades-db-{i}")],
        }
    }

    #[test]
    fn add_lookup_remove() {
        let mut issl = Issl::new();
        issl.add(entry(1)).unwrap();
        issl.add(entry(2)).unwrap();
        assert_eq!(issl.len(), 2);
        assert_eq!(issl.get("db001").unwrap().ip, "10.1.0.1");
        assert!(issl.remove("db001"));
        assert!(!issl.remove("db001"));
        assert_eq!(issl.len(), 1);
    }

    #[test]
    fn cap_at_200_entries() {
        let mut issl = Issl::new();
        for i in 0..200 {
            issl.add(entry(i)).unwrap();
        }
        assert_eq!(issl.add(entry(999)), Err(IsslError::Full));
        assert_eq!(issl.len(), 200);
    }

    #[test]
    fn roundtrip_through_flat_text() {
        let mut issl = Issl::new();
        for i in 0..5 {
            let mut e = entry(i);
            e.services.push("web-shared".to_string());
            issl.add(e).unwrap();
        }
        let text = issl.to_doc().to_text();
        let back = Issl::parse_text(&text).unwrap();
        assert_eq!(back, issl);
    }

    #[test]
    fn hosts_of_service_query() {
        let mut issl = Issl::new();
        issl.add(entry(1)).unwrap();
        issl.add(entry(2)).unwrap();
        assert_eq!(issl.hosts_of_service("trades-db-2"), vec!["db002"]);
        assert!(issl.hosts_of_service("nonexistent").is_empty());
    }

    #[test]
    fn missing_fields_rejected() {
        let text = "%DOC issl v1\n%SECTION servers\nhostname=x";
        assert_eq!(Issl::parse_text(text), Err(IsslError::MissingField("ip")));
    }

    #[test]
    fn empty_doc_parses_empty() {
        let text = "%DOC issl v1";
        assert!(Issl::parse_text(text).unwrap().is_empty());
    }
}
