//! # intelliqos-ontology
//!
//! Static and dynamic ontologies for the `intelliqos` reproduction of
//! Corsava & Getov (IPDPS 2003):
//!
//! * the flat-ASCII, grep-friendly on-disk format ([`flat`]);
//! * **ISSL** — index static service lists (≤200 manual entries);
//! * **SLKT** — static local knowledge templates (should-be state);
//! * **DLSP** — dynamic local service profiles (per-server snapshots);
//! * **DGSPL** — dynamic global service profile lists (datacentre-wide
//!   available-service tuples with best-first shortlists);
//! * constraint stores (min/max baseline variables, §3.6) and the
//!   forward-chaining causal rule engine (§3.3) the agents reason with.
//!
//! This crate is deliberately dependency-free: ontologies are pure data
//! plus reasoning, exactly as the paper's flat files were.

#![warn(missing_docs)]

pub mod constraint;
pub mod dgspl;
pub mod dlsp;
pub mod flat;
pub mod issl;
pub mod rules;
pub mod slkt;

pub use constraint::{Bounds, ConstraintStore, Violation};
pub use dgspl::{Dgspl, DgsplEntry, DgsplError};
pub use dlsp::{Dlsp, DlspError, DlspService};
pub use flat::{FlatDoc, FlatError, FlatRecord};
pub use issl::{Issl, IsslEntry, IsslError, ISSL_MAX_ENTRIES};
pub use rules::{Diagnosis, FactBase, FactValue, Predicate, RepairAction, Rule, RuleEngine};
pub use slkt::{Slkt, SlktApp, SlktError, SlktHardware};
