//! The constraint-based causal rule engine.
//!
//! §3.3: "Intelliagents use constraint-based causal reasoning [13]" —
//! the reference is Pearl's cause-and-effect reasoning, implemented in
//! the paper as shell logic over ontology constraints. We reproduce the
//! effective mechanism: **forward-chaining rules over a fact base**.
//! Symptoms (facts) come from monitoring (probe outcomes, constraint
//! violations, log evidence); rules map symptom patterns to causes and
//! prescribed repair actions; derived facts let rules chain so that,
//! e.g., `memory-pressure` + `process-leaking` together refine into a
//! specific kill-and-restart prescription rather than a generic alarm.

use std::collections::BTreeMap;
use std::fmt;

/// A fact value: numeric, boolean, or text.
#[derive(Debug, Clone, PartialEq)]
pub enum FactValue {
    /// Numeric measurement.
    Num(f64),
    /// Boolean flag.
    Flag(bool),
    /// Text (e.g. a status string).
    Text(String),
}

impl From<f64> for FactValue {
    fn from(v: f64) -> Self {
        FactValue::Num(v)
    }
}
impl From<bool> for FactValue {
    fn from(v: bool) -> Self {
        FactValue::Flag(v)
    }
}
impl From<&str> for FactValue {
    fn from(v: &str) -> Self {
        FactValue::Text(v.to_string())
    }
}

/// The working memory of one diagnosis episode.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FactBase {
    facts: BTreeMap<String, FactValue>,
}

impl FactBase {
    /// Empty fact base.
    pub fn new() -> Self {
        FactBase::default()
    }

    /// Assert a fact (replacing any previous value).
    pub fn assert_fact(&mut self, name: impl Into<String>, value: impl Into<FactValue>) {
        self.facts.insert(name.into(), value.into());
    }

    /// Fact lookup.
    pub fn get(&self, name: &str) -> Option<&FactValue> {
        self.facts.get(name)
    }

    /// Is a boolean fact asserted true?
    pub fn is_true(&self, name: &str) -> bool {
        matches!(self.facts.get(name), Some(FactValue::Flag(true)))
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the base empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }
}

/// A single condition over the fact base.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Numeric fact strictly greater than the threshold.
    NumGt(String, f64),
    /// Numeric fact strictly less than the threshold.
    NumLt(String, f64),
    /// Boolean fact is true.
    IsTrue(String),
    /// Boolean fact is false **or absent**.
    NotTrue(String),
    /// Text fact equals the value.
    TextEq(String, String),
    /// The fact exists at all.
    Exists(String),
}

impl Predicate {
    /// Evaluate against a fact base. Missing facts fail every predicate
    /// except `NotTrue`.
    pub fn eval(&self, facts: &FactBase) -> bool {
        match self {
            Predicate::NumGt(k, t) => {
                matches!(facts.get(k), Some(FactValue::Num(v)) if v > t)
            }
            Predicate::NumLt(k, t) => {
                matches!(facts.get(k), Some(FactValue::Num(v)) if v < t)
            }
            Predicate::IsTrue(k) => facts.is_true(k),
            Predicate::NotTrue(k) => !facts.is_true(k),
            Predicate::TextEq(k, want) => {
                matches!(facts.get(k), Some(FactValue::Text(v)) if v == want)
            }
            Predicate::Exists(k) => facts.get(k).is_some(),
        }
    }
}

/// A repair action a rule prescribes, to be executed by the healing
/// stage of an agent.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum RepairAction {
    /// Restart a named service.
    RestartService(String),
    /// Stop then start a named service (for hangs).
    BounceService(String),
    /// Restore a named service from backup, then start it.
    RestoreService(String),
    /// Kill processes by command name.
    KillProcess(String),
    /// Rotate (truncate) logs under a path to free disk.
    RotateLogs(String),
    /// Remount a filesystem.
    Remount(String),
    /// Re-enable the agent crontab.
    RepairCrontab,
    /// Re-sync NTP.
    FixNtp,
    /// Reboot the whole server (last resort).
    RebootServer,
    /// Re-route agent traffic over the public LAN.
    ReroutePublic,
    /// Resubmit failed batch jobs through the DGSPL shortlist.
    ResubmitJobs,
    /// Offline a failing hardware component (CPU/disk/NIC).
    OfflineComponent(String),
    /// Nothing self-healable: page a human with the diagnosis.
    NotifyHumans(String),
}

impl fmt::Display for RepairAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RepairAction::RestartService(s) => write!(f, "restart-service {s}"),
            RepairAction::BounceService(s) => write!(f, "bounce-service {s}"),
            RepairAction::RestoreService(s) => write!(f, "restore-service {s}"),
            RepairAction::KillProcess(p) => write!(f, "kill-process {p}"),
            RepairAction::RotateLogs(p) => write!(f, "rotate-logs {p}"),
            RepairAction::Remount(m) => write!(f, "remount {m}"),
            RepairAction::RepairCrontab => write!(f, "repair-crontab"),
            RepairAction::FixNtp => write!(f, "fix-ntp"),
            RepairAction::RebootServer => write!(f, "reboot-server"),
            RepairAction::ReroutePublic => write!(f, "reroute-public"),
            RepairAction::ResubmitJobs => write!(f, "resubmit-jobs"),
            RepairAction::OfflineComponent(c) => write!(f, "offline-component {c}"),
            RepairAction::NotifyHumans(why) => write!(f, "notify-humans {why}"),
        }
    }
}

/// One causal rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Stable identifier (shows up in flags and logs).
    pub id: String,
    /// All predicates must hold for the rule to fire.
    pub when: Vec<Predicate>,
    /// Facts asserted when the rule fires (enables chaining).
    pub assert: Vec<(String, FactValue)>,
    /// Root cause the rule concludes, if it is a diagnosis rule.
    pub cause: Option<String>,
    /// Actions prescribed, in execution order.
    pub actions: Vec<RepairAction>,
    /// Higher wins when multiple diagnoses compete.
    pub priority: i32,
}

/// A concluded diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnosis {
    /// The rule that concluded it.
    pub rule_id: String,
    /// Root cause label.
    pub cause: String,
    /// Prescribed actions.
    pub actions: Vec<RepairAction>,
    /// Rule priority (for ranking).
    pub priority: i32,
}

/// The rule engine: a rule set evaluated to fixpoint against a fact
/// base.
#[derive(Debug, Clone, Default)]
pub struct RuleEngine {
    rules: Vec<Rule>,
}

impl RuleEngine {
    /// Empty engine.
    pub fn new() -> Self {
        RuleEngine::default()
    }

    /// Add one rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Is the engine empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Forward-chain to fixpoint: repeatedly fire rules whose conditions
    /// hold, asserting their facts, until nothing new fires. Each rule
    /// fires at most once per episode. Returns the diagnoses ranked by
    /// priority (desc), rule order as tiebreak.
    pub fn infer(&self, facts: &mut FactBase) -> Vec<Diagnosis> {
        let mut fired = vec![false; self.rules.len()];
        let mut diagnoses = Vec::new();
        // Fixpoint loop: bounded by rule count per iteration, and each
        // iteration fires at least one new rule or stops.
        loop {
            let mut any = false;
            for (i, rule) in self.rules.iter().enumerate() {
                if fired[i] {
                    continue;
                }
                if rule.when.iter().all(|p| p.eval(facts)) {
                    fired[i] = true;
                    any = true;
                    for (k, v) in &rule.assert {
                        facts.assert_fact(k.clone(), v.clone());
                    }
                    if let Some(cause) = &rule.cause {
                        diagnoses.push(Diagnosis {
                            rule_id: rule.id.clone(),
                            cause: cause.clone(),
                            actions: rule.actions.clone(),
                            priority: rule.priority,
                        });
                    }
                }
            }
            if !any {
                break;
            }
        }
        diagnoses.sort_by_key(|d| std::cmp::Reverse(d.priority));
        diagnoses
    }

    /// The best (highest-priority) diagnosis, if any.
    pub fn diagnose(&self, facts: &mut FactBase) -> Option<Diagnosis> {
        self.infer(facts).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leak_rules() -> RuleEngine {
        let mut e = RuleEngine::new();
        // Abstraction rule: raw metrics → memory-pressure.
        e.add_rule(Rule {
            id: "mem-pressure".into(),
            when: vec![Predicate::NumGt("scan_rate".into(), 200.0)],
            assert: vec![("memory_pressure".into(), FactValue::Flag(true))],
            cause: None,
            actions: vec![],
            priority: 0,
        });
        // Generic diagnosis.
        e.add_rule(Rule {
            id: "generic-mem".into(),
            when: vec![Predicate::IsTrue("memory_pressure".into())],
            assert: vec![],
            cause: Some("memory shortage".into()),
            actions: vec![RepairAction::NotifyHumans("memory shortage".into())],
            priority: 1,
        });
        // Specific chained diagnosis: pressure + a known leaking process.
        e.add_rule(Rule {
            id: "leaky-proc".into(),
            when: vec![
                Predicate::IsTrue("memory_pressure".into()),
                Predicate::Exists("leaking_process".into()),
            ],
            assert: vec![],
            cause: Some("process memory leak".into()),
            actions: vec![
                RepairAction::KillProcess("fe_calc".into()),
                RepairAction::RestartService("analyst-fe".into()),
            ],
            priority: 10,
        });
        e
    }

    #[test]
    fn chaining_reaches_specific_diagnosis() {
        let e = leak_rules();
        let mut facts = FactBase::new();
        facts.assert_fact("scan_rate", 3000.0);
        facts.assert_fact("leaking_process", "fe_calc");
        let ds = e.infer(&mut facts);
        assert_eq!(ds.len(), 2);
        // The specific rule outranks the generic one.
        assert_eq!(ds[0].rule_id, "leaky-proc");
        assert_eq!(ds[0].cause, "process memory leak");
        assert_eq!(ds[0].actions.len(), 2);
        // Derived fact was asserted.
        assert!(facts.is_true("memory_pressure"));
    }

    #[test]
    fn generic_diagnosis_without_extra_evidence() {
        let e = leak_rules();
        let mut facts = FactBase::new();
        facts.assert_fact("scan_rate", 3000.0);
        let best = e.diagnose(&mut facts).unwrap();
        assert_eq!(best.rule_id, "generic-mem");
    }

    #[test]
    fn nothing_fires_on_healthy_facts() {
        let e = leak_rules();
        let mut facts = FactBase::new();
        facts.assert_fact("scan_rate", 10.0);
        assert!(e.infer(&mut facts).is_empty());
        assert!(!facts.is_true("memory_pressure"));
    }

    #[test]
    fn rules_fire_at_most_once() {
        let mut e = RuleEngine::new();
        e.add_rule(Rule {
            id: "self-trigger".into(),
            when: vec![Predicate::IsTrue("x".into())],
            assert: vec![("x".into(), FactValue::Flag(true))], // re-asserts its own condition
            cause: Some("loop".into()),
            actions: vec![],
            priority: 0,
        });
        let mut facts = FactBase::new();
        facts.assert_fact("x", true);
        let ds = e.infer(&mut facts);
        assert_eq!(ds.len(), 1); // would loop forever if rules re-fired
    }

    #[test]
    fn predicate_semantics() {
        let mut f = FactBase::new();
        f.assert_fact("n", 5.0);
        f.assert_fact("t", "running");
        f.assert_fact("b", false);
        assert!(Predicate::NumGt("n".into(), 4.0).eval(&f));
        assert!(!Predicate::NumGt("n".into(), 5.0).eval(&f));
        assert!(Predicate::NumLt("n".into(), 6.0).eval(&f));
        assert!(Predicate::TextEq("t".into(), "running".into()).eval(&f));
        assert!(!Predicate::TextEq("t".into(), "crashed".into()).eval(&f));
        assert!(!Predicate::IsTrue("b".into()).eval(&f));
        assert!(Predicate::NotTrue("b".into()).eval(&f));
        assert!(Predicate::NotTrue("absent".into()).eval(&f));
        assert!(Predicate::Exists("t".into()).eval(&f));
        assert!(!Predicate::Exists("absent".into()).eval(&f));
        // Type mismatches fail closed.
        assert!(!Predicate::NumGt("t".into(), 0.0).eval(&f));
    }

    #[test]
    fn repair_action_display() {
        assert_eq!(
            RepairAction::RestartService("db".into()).to_string(),
            "restart-service db"
        );
        assert_eq!(RepairAction::RepairCrontab.to_string(), "repair-crontab");
    }

    #[test]
    fn fact_base_basics() {
        let mut f = FactBase::new();
        assert!(f.is_empty());
        f.assert_fact("a", 1.0);
        f.assert_fact("a", 2.0); // replace
        assert_eq!(f.len(), 1);
        assert_eq!(f.get("a"), Some(&FactValue::Num(2.0)));
    }
}
