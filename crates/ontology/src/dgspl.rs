//! Dynamic Global Service Profile Lists (DGSPL).
//!
//! §3.1: DGSPLs "contain information about all running and available
//! services across the entire datacentre. Available services are
//! presented by `<Server type, OS, memory and CPUs, Application type and
//! version, Current Load, Users logged in, Geographical Location, Site
//! Name>`." Administration servers regenerate them every ~15 minutes and
//! use them to "present the best available database server for the
//! batch job in a shortlist, with the best choice always first" (§4).

use crate::dlsp::Dlsp;
use crate::flat::{FlatDoc, FlatError, FlatRecord};

/// One available-service tuple, exactly the paper's 8-field shape plus
/// the hostname (needed to actually submit anywhere) and compute power
/// (needed for the SLKT equal-or-higher-power ordering).
#[derive(Debug, Clone, PartialEq)]
pub struct DgsplEntry {
    /// Hosting server name.
    pub hostname: String,
    /// Server type (hardware model string).
    pub server_type: String,
    /// Operating system.
    pub os: String,
    /// Memory in GB.
    pub ram_gb: u32,
    /// CPU count.
    pub cpus: u32,
    /// Total compute power (CPUs × per-CPU power) — derived, carried so
    /// consumers don't need the hardware catalogue.
    pub compute_power: f64,
    /// Application type string.
    pub app_type: String,
    /// Application version.
    pub version: String,
    /// Current load score.
    pub load: f64,
    /// Users logged in.
    pub users: u32,
    /// Geographical location.
    pub location: String,
    /// Site name.
    pub site: String,
    /// Service name.
    pub service: String,
}

/// The datacenter-wide list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dgspl {
    /// When it was generated (seconds since sim epoch).
    pub generated_at_secs: u64,
    /// All available-service entries.
    pub entries: Vec<DgsplEntry>,
}

/// DGSPL parse errors.
#[derive(Debug, Clone, PartialEq)]
pub enum DgsplError {
    /// Underlying format problem.
    Format(FlatError),
    /// Missing required field.
    MissingField(&'static str),
}

impl std::fmt::Display for DgsplError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DgsplError::Format(e) => write!(f, "format error: {e}"),
            DgsplError::MissingField(k) => write!(f, "missing field '{k}'"),
        }
    }
}

impl std::error::Error for DgsplError {}

impl Dgspl {
    /// Build from a collection of fresh DLSPs: every **running** service
    /// on every profiled host becomes an entry. `power_of` maps a model
    /// string + CPU count to total compute power.
    pub fn from_dlsps<F>(dlsps: &[Dlsp], generated_at_secs: u64, power_of: F) -> Dgspl
    where
        F: Fn(&str, u32) -> f64,
    {
        let mut entries = Vec::new();
        for d in dlsps {
            for s in &d.services {
                if s.status != "running" {
                    continue;
                }
                entries.push(DgsplEntry {
                    hostname: d.hostname.clone(),
                    server_type: d.model.clone(),
                    os: d.os.clone(),
                    ram_gb: d.ram_gb,
                    cpus: d.cpus,
                    compute_power: power_of(&d.model, d.cpus),
                    app_type: s.app_type.clone(),
                    version: s.version.clone(),
                    load: d.load_score,
                    users: d.users,
                    location: d.location.clone(),
                    site: d.site.clone(),
                    service: s.name.clone(),
                });
            }
        }
        Dgspl {
            generated_at_secs,
            entries,
        }
    }

    /// All entries of an application type.
    pub fn of_type(&self, app_type: &str) -> Vec<&DgsplEntry> {
        self.entries
            .iter()
            .filter(|e| e.app_type == app_type)
            .collect()
    }

    /// The paper's shortlist over an arbitrary entry predicate —
    /// "the best choice always first". Ordering: lowest load, then
    /// highest compute power, then fewest users, hostname as the
    /// deterministic tiebreak.
    pub fn shortlist_by<F>(&self, pred: F) -> Vec<&DgsplEntry>
    where
        F: Fn(&DgsplEntry) -> bool,
    {
        let mut out: Vec<&DgsplEntry> = self.entries.iter().filter(|e| pred(e)).collect();
        out.sort_by(|a, b| {
            a.load
                .partial_cmp(&b.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(
                    b.compute_power
                        .partial_cmp(&a.compute_power)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.users.cmp(&b.users))
                .then(a.hostname.cmp(&b.hostname))
        });
        out
    }

    /// Shortlist restricted to one application type.
    pub fn shortlist(&self, app_type: &str) -> Vec<&DgsplEntry> {
        self.shortlist_by(|e| e.app_type == app_type)
    }

    /// The SLKT-guided replacement shortlist for a failed server: only
    /// candidates of **equal or higher power** than the failed hardware,
    /// same-model-with-more-resources preferred first (the paper's
    /// "prefer first a server of the same model with more CPUs and
    /// memory"), then the generic best-first ordering. `pred` selects
    /// the eligible application entries (type or type family).
    pub fn replacement_shortlist_by<F>(
        &self,
        pred: F,
        failed_model: &str,
        failed_power: f64,
        failed_ram_gb: u32,
    ) -> Vec<&DgsplEntry>
    where
        F: Fn(&DgsplEntry) -> bool,
    {
        let mut out: Vec<&DgsplEntry> = self
            .entries
            .iter()
            .filter(|e| pred(e) && e.compute_power >= failed_power && e.ram_gb >= failed_ram_gb)
            .collect();
        out.sort_by(|a, b| {
            let a_same = a.server_type == failed_model;
            let b_same = b.server_type == failed_model;
            b_same
                .cmp(&a_same) // same model first
                .then(
                    a.load
                        .partial_cmp(&b.load)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(
                    b.compute_power
                        .partial_cmp(&a.compute_power)
                        .unwrap_or(std::cmp::Ordering::Equal),
                )
                .then(a.hostname.cmp(&b.hostname))
        });
        out
    }

    /// Replacement shortlist restricted to one application type.
    pub fn replacement_shortlist(
        &self,
        app_type: &str,
        failed_model: &str,
        failed_power: f64,
        failed_ram_gb: u32,
    ) -> Vec<&DgsplEntry> {
        self.replacement_shortlist_by(
            |e| e.app_type == app_type,
            failed_model,
            failed_power,
            failed_ram_gb,
        )
    }

    /// Serialise to the flat format.
    pub fn to_doc(&self) -> FlatDoc {
        let meta = vec![FlatRecord::new().set_num("generated_at", self.generated_at_secs as f64)];
        let entries = self
            .entries
            .iter()
            .map(|e| {
                FlatRecord::new()
                    .set("hostname", e.hostname.clone())
                    .set("server_type", e.server_type.clone())
                    .set("os", e.os.clone())
                    .set_num("ram_gb", e.ram_gb as f64)
                    .set_num("cpus", e.cpus as f64)
                    .set_num("power", e.compute_power)
                    .set("app_type", e.app_type.clone())
                    .set("version", e.version.clone())
                    .set_num("load", e.load)
                    .set_num("users", e.users as f64)
                    .set("location", e.location.clone())
                    .set("site", e.site.clone())
                    .set("service", e.service.clone())
            })
            .collect();
        FlatDoc::new("dgspl", 1)
            .with_section("meta", meta)
            .with_section("available", entries)
    }

    /// Parse from the flat format.
    pub fn from_doc(doc: &FlatDoc) -> Result<Dgspl, DgsplError> {
        let generated_at_secs =
            doc.section("meta")
                .and_then(|s| s.first())
                .and_then(|r| r.get_num("generated_at"))
                .ok_or(DgsplError::MissingField("generated_at"))? as u64;
        let mut entries = Vec::new();
        for r in doc.section("available").unwrap_or(&[]) {
            entries.push(DgsplEntry {
                hostname: r
                    .get("hostname")
                    .ok_or(DgsplError::MissingField("hostname"))?
                    .to_string(),
                server_type: r.get("server_type").unwrap_or("?").to_string(),
                os: r.get("os").unwrap_or("?").to_string(),
                ram_gb: r.get_u32("ram_gb").unwrap_or(0),
                cpus: r.get_u32("cpus").unwrap_or(0),
                compute_power: r.get_num("power").unwrap_or(0.0),
                app_type: r
                    .get("app_type")
                    .ok_or(DgsplError::MissingField("app_type"))?
                    .to_string(),
                version: r.get("version").unwrap_or("?").to_string(),
                load: r.get_num("load").unwrap_or(0.0),
                users: r.get_u32("users").unwrap_or(0),
                location: r.get("location").unwrap_or("?").to_string(),
                site: r.get("site").unwrap_or("?").to_string(),
                service: r
                    .get("service")
                    .ok_or(DgsplError::MissingField("service"))?
                    .to_string(),
            });
        }
        Ok(Dgspl {
            generated_at_secs,
            entries,
        })
    }

    /// Parse from text.
    pub fn parse_text(text: &str) -> Result<Dgspl, DgsplError> {
        let doc = FlatDoc::parse_text(text).map_err(DgsplError::Format)?;
        Dgspl::from_doc(&doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dlsp::DlspService;

    fn entry(host: &str, model: &str, power: f64, ram: u32, load: f64) -> DgsplEntry {
        DgsplEntry {
            hostname: host.into(),
            server_type: model.into(),
            os: "Solaris".into(),
            ram_gb: ram,
            cpus: 8,
            compute_power: power,
            app_type: "db-oracle".into(),
            version: "8.1.7".into(),
            load,
            users: 0,
            location: "London".into(),
            site: "LDN".into(),
            service: format!("svc-{host}"),
        }
    }

    #[test]
    fn shortlist_orders_best_first() {
        let dg = Dgspl {
            generated_at_secs: 0,
            entries: vec![
                entry("c", "Sun-E4500", 7.2, 8, 0.8),
                entry("a", "Sun-E4500", 7.2, 8, 0.1),
                entry("b", "Sun-E10000", 32.0, 32, 0.1),
            ],
        };
        let sl = dg.shortlist("db-oracle");
        // Load ties at 0.1 → higher power (the E10K) wins.
        assert_eq!(sl[0].hostname, "b");
        assert_eq!(sl[1].hostname, "a");
        assert_eq!(sl[2].hostname, "c");
        assert!(dg.shortlist("web").is_empty());
    }

    #[test]
    fn replacement_requires_equal_or_higher_power_and_ram() {
        let dg = Dgspl {
            generated_at_secs: 0,
            entries: vec![
                entry("weak", "Sun-E450", 3.2, 4, 0.0),
                entry("same-bigger", "Sun-E4500", 10.8, 16, 0.5),
                entry("other-huge", "Sun-E10000", 32.0, 32, 0.2),
                entry("same-smaller", "Sun-E4500", 3.6, 4, 0.0),
            ],
        };
        // Failed: an E4500 with power 7.2 and 8 GB.
        let sl = dg.replacement_shortlist("db-oracle", "Sun-E4500", 7.2, 8);
        let names: Vec<&str> = sl.iter().map(|e| e.hostname.as_str()).collect();
        // Same model preferred first, despite the E10K's lower load.
        assert_eq!(names, vec!["same-bigger", "other-huge"]);
    }

    #[test]
    fn from_dlsps_keeps_only_running() {
        let dlsp = Dlsp {
            hostname: "db001".into(),
            generated_at_secs: 900,
            model: "Sun-E4500".into(),
            os: "Solaris".into(),
            cpus: 8,
            ram_gb: 8,
            load_score: 0.3,
            free_mem_mb: 1024.0,
            cpu_idle_pct: 70.0,
            users: 2,
            location: "London".into(),
            site: "LDN".into(),
            services: vec![
                DlspService {
                    name: "ok-db".into(),
                    app_type: "db-oracle".into(),
                    version: "8.1.7".into(),
                    status: "running".into(),
                    latency_ms: Some(100.0),
                },
                DlspService {
                    name: "dead-db".into(),
                    app_type: "db-oracle".into(),
                    version: "8.1.7".into(),
                    status: "refused".into(),
                    latency_ms: None,
                },
            ],
        };
        let dg = Dgspl::from_dlsps(&[dlsp], 1000, |_, cpus| cpus as f64 * 0.9);
        assert_eq!(dg.entries.len(), 1);
        assert_eq!(dg.entries[0].service, "ok-db");
        assert!((dg.entries[0].compute_power - 7.2).abs() < 1e-9);
        assert_eq!(dg.generated_at_secs, 1000);
    }

    #[test]
    fn roundtrip() {
        let dg = Dgspl {
            generated_at_secs: 777,
            entries: vec![entry("a", "Sun-E4500", 7.2, 8, 0.25)],
        };
        let back = Dgspl::parse_text(&dg.to_doc().to_text()).unwrap();
        assert_eq!(back, dg);
    }

    #[test]
    fn parse_requires_meta() {
        let text = "%DOC dgspl v1\n%SECTION available\nhostname=a|app_type=x|service=s";
        assert_eq!(
            Dgspl::parse_text(text),
            Err(DgsplError::MissingField("generated_at"))
        );
    }
}
