//! Static Local Knowledge Templates (SLKT).
//!
//! §3.1: SLKTs "contain information about what the server should be
//! like hardware-wise, which applications it should run, all application
//! external and internal dependencies and requirements (file systems,
//! path names, application component startup sequences, binary location,
//! application type, version, name, IP address, port it listens to — if
//! any, application process names and numbers, etc.)."
//!
//! The SLKT is the agents' ground truth for *should-be* state; diagnosis
//! is a diff between it and observed reality.

use crate::flat::{FlatDoc, FlatError, FlatRecord};

/// Expected hardware section of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlktHardware {
    /// Model string, e.g. `Sun-E4500`.
    pub model: String,
    /// CPU count the box should have.
    pub cpus: u32,
    /// RAM in GB.
    pub ram_gb: u32,
    /// Disk count.
    pub disks: u32,
}

/// One expected application on the host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlktApp {
    /// Service name, e.g. `trades-db-07`.
    pub name: String,
    /// Application type string, e.g. `db-oracle`.
    pub app_type: String,
    /// Version.
    pub version: String,
    /// Binary location.
    pub binary_path: String,
    /// Listening port (0 = none).
    pub port: u16,
    /// Expected process names and counts, `(name, count)`.
    pub processes: Vec<(String, u32)>,
    /// Startup sequence component names, in order.
    pub startup_sequence: Vec<String>,
    /// External dependencies (service names that must be up first).
    pub depends_on: Vec<String>,
    /// Required mounted filesystems.
    pub mounts: Vec<String>,
    /// Application-specific connectivity timeout, seconds.
    pub connect_timeout_secs: u32,
}

/// A full per-server template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slkt {
    /// Hostname the template describes.
    pub hostname: String,
    /// Host IP.
    pub ip: String,
    /// What the hardware should be.
    pub hardware: SlktHardware,
    /// Applications the host should run.
    pub apps: Vec<SlktApp>,
}

/// SLKT parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlktError {
    /// Underlying format problem.
    Format(FlatError),
    /// Missing required field.
    MissingField(&'static str),
    /// Bad `name:count` process syntax.
    BadProcessSpec(String),
}

impl std::fmt::Display for SlktError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlktError::Format(e) => write!(f, "format error: {e}"),
            SlktError::MissingField(k) => write!(f, "missing field '{k}'"),
            SlktError::BadProcessSpec(s) => write!(f, "bad process spec '{s}'"),
        }
    }
}

impl std::error::Error for SlktError {}

impl Slkt {
    /// Serialise to the flat format.
    pub fn to_doc(&self) -> FlatDoc {
        let host = vec![FlatRecord::new()
            .set("hostname", self.hostname.clone())
            .set("ip", self.ip.clone())
            .set("model", self.hardware.model.clone())
            .set_num("cpus", self.hardware.cpus as f64)
            .set_num("ram_gb", self.hardware.ram_gb as f64)
            .set_num("disks", self.hardware.disks as f64)];
        let apps = self
            .apps
            .iter()
            .map(|a| {
                let mut r = FlatRecord::new()
                    .set("name", a.name.clone())
                    .set("type", a.app_type.clone())
                    .set("version", a.version.clone())
                    .set("binary", a.binary_path.clone())
                    .set_num("port", a.port as f64)
                    .set_num("timeout_secs", a.connect_timeout_secs as f64);
                for (p, c) in &a.processes {
                    r = r.set("proc", format!("{p}:{c}"));
                }
                for s in &a.startup_sequence {
                    r = r.set("startup", s.clone());
                }
                for d in &a.depends_on {
                    r = r.set("depends", d.clone());
                }
                for m in &a.mounts {
                    r = r.set("mount", m.clone());
                }
                r
            })
            .collect();
        FlatDoc::new("slkt", 1)
            .with_section("host", host)
            .with_section("apps", apps)
    }

    /// Parse from the flat format.
    pub fn from_doc(doc: &FlatDoc) -> Result<Slkt, SlktError> {
        let host = doc
            .section("host")
            .and_then(|s| s.first())
            .ok_or(SlktError::MissingField("host section"))?;
        let hardware = SlktHardware {
            model: host
                .get("model")
                .ok_or(SlktError::MissingField("model"))?
                .to_string(),
            cpus: host
                .get_u32("cpus")
                .ok_or(SlktError::MissingField("cpus"))?,
            ram_gb: host
                .get_u32("ram_gb")
                .ok_or(SlktError::MissingField("ram_gb"))?,
            disks: host
                .get_u32("disks")
                .ok_or(SlktError::MissingField("disks"))?,
        };
        let mut apps = Vec::new();
        for r in doc.section("apps").unwrap_or(&[]) {
            let mut processes = Vec::new();
            for spec in r.get_all("proc") {
                let (name, count) = spec
                    .split_once(':')
                    .ok_or_else(|| SlktError::BadProcessSpec(spec.to_string()))?;
                let count: u32 = count
                    .parse()
                    .map_err(|_| SlktError::BadProcessSpec(spec.to_string()))?;
                processes.push((name.to_string(), count));
            }
            apps.push(SlktApp {
                name: r
                    .get("name")
                    .ok_or(SlktError::MissingField("name"))?
                    .to_string(),
                app_type: r
                    .get("type")
                    .ok_or(SlktError::MissingField("type"))?
                    .to_string(),
                version: r
                    .get("version")
                    .ok_or(SlktError::MissingField("version"))?
                    .to_string(),
                binary_path: r
                    .get("binary")
                    .ok_or(SlktError::MissingField("binary"))?
                    .to_string(),
                port: r.get_u32("port").unwrap_or(0) as u16,
                processes,
                startup_sequence: r.get_all("startup").iter().map(|s| s.to_string()).collect(),
                depends_on: r.get_all("depends").iter().map(|s| s.to_string()).collect(),
                mounts: r.get_all("mount").iter().map(|s| s.to_string()).collect(),
                connect_timeout_secs: r.get_u32("timeout_secs").unwrap_or(30),
            });
        }
        Ok(Slkt {
            hostname: host
                .get("hostname")
                .ok_or(SlktError::MissingField("hostname"))?
                .to_string(),
            ip: host
                .get("ip")
                .ok_or(SlktError::MissingField("ip"))?
                .to_string(),
            hardware,
            apps,
        })
    }

    /// Parse from text.
    pub fn parse_text(text: &str) -> Result<Slkt, SlktError> {
        let doc = FlatDoc::parse_text(text).map_err(SlktError::Format)?;
        Slkt::from_doc(&doc)
    }

    /// Find the template for an app by name.
    pub fn app(&self, name: &str) -> Option<&SlktApp> {
        self.apps.iter().find(|a| a.name == name)
    }

    /// SLKT "equal or higher power" test used by the rescheduler: can a
    /// host with `other` hardware replace this one? Same-model with ≥
    /// CPUs and ≥ RAM is the preferred form; the caller handles
    /// cross-model power comparisons with real hardware specs.
    pub fn replaceable_by_same_model(&self, other: &SlktHardware) -> bool {
        other.model == self.hardware.model
            && other.cpus >= self.hardware.cpus
            && other.ram_gb >= self.hardware.ram_gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Slkt {
        Slkt {
            hostname: "db007".into(),
            ip: "10.1.0.7".into(),
            hardware: SlktHardware {
                model: "Sun-E4500".into(),
                cpus: 8,
                ram_gb: 8,
                disks: 6,
            },
            apps: vec![SlktApp {
                name: "trades-db-07".into(),
                app_type: "db-oracle".into(),
                version: "8.1.7".into(),
                binary_path: "/apps/db/bin".into(),
                port: 1521,
                processes: vec![("ora_pmon".into(), 1), ("ora_dbw".into(), 2)],
                startup_sequence: vec!["listener".into(), "instance".into(), "recovery".into()],
                depends_on: vec![],
                mounts: vec!["/apps".into()],
                connect_timeout_secs: 30,
            }],
        }
    }

    #[test]
    fn roundtrip() {
        let slkt = sample();
        let text = slkt.to_doc().to_text();
        let back = Slkt::parse_text(&text).unwrap();
        assert_eq!(back, slkt);
    }

    #[test]
    fn app_lookup() {
        let slkt = sample();
        assert!(slkt.app("trades-db-07").is_some());
        assert!(slkt.app("ghost").is_none());
        let app = slkt.app("trades-db-07").unwrap();
        assert_eq!(app.processes[1], ("ora_dbw".to_string(), 2));
        assert_eq!(app.startup_sequence.len(), 3);
    }

    #[test]
    fn same_model_replacement_ordering() {
        let slkt = sample();
        let bigger = SlktHardware {
            model: "Sun-E4500".into(),
            cpus: 12,
            ram_gb: 16,
            disks: 6,
        };
        let smaller = SlktHardware {
            model: "Sun-E4500".into(),
            cpus: 4,
            ram_gb: 8,
            disks: 6,
        };
        let other_model = SlktHardware {
            model: "Sun-E10000".into(),
            cpus: 32,
            ram_gb: 32,
            disks: 12,
        };
        assert!(slkt.replaceable_by_same_model(&bigger));
        assert!(!slkt.replaceable_by_same_model(&smaller));
        assert!(!slkt.replaceable_by_same_model(&other_model)); // cross-model handled elsewhere
    }

    #[test]
    fn bad_process_spec_rejected() {
        let text = "%DOC slkt v1\n%SECTION host\nhostname=h|ip=1|model=m|cpus=1|ram_gb=1|disks=1\n%SECTION apps\nname=a|type=t|version=v|binary=b|proc=oracle";
        assert!(matches!(
            Slkt::parse_text(text),
            Err(SlktError::BadProcessSpec(_))
        ));
    }

    #[test]
    fn missing_host_section_rejected() {
        let text = "%DOC slkt v1\n%SECTION apps\nname=a|type=t|version=v|binary=b";
        assert!(matches!(
            Slkt::parse_text(text),
            Err(SlktError::MissingField(_))
        ));
    }
}
