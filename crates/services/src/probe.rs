//! Health probes: "trying to use the application and reading the exit
//! code".
//!
//! §3.4: "the local status intelliagent invokes local service
//! intelliagents who attempt to connect to local running services and
//! perform very simple queries (e.g. in the case of a web server they do
//! an http 'get', for a database they connect and attempt to do a
//! 'select * from table name')". The probe outcome plus its latency is
//! *all* the information an agent gets — it cannot peek at the service
//! state machine directly.

use intelliqos_simkern::{SimDuration, SimRng};

use intelliqos_cluster::server::Server;

use crate::instance::{ServiceInstance, ServiceStatus};
use crate::spec::ServiceKind;

/// The shape of the basic command a probe runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeKind {
    /// `GET /` against a web server or front end.
    HttpGet,
    /// Connect and `select * from <table>` against a database.
    SqlSelect,
    /// `lsid`-style ping against the LSF master.
    LsfPing,
    /// Plain TCP connect (name servers, feeds).
    ConnectOnly,
}

impl ProbeKind {
    /// Which probe a service kind gets.
    pub fn for_kind(kind: ServiceKind) -> ProbeKind {
        match kind {
            ServiceKind::Database(_) => ProbeKind::SqlSelect,
            ServiceKind::WebServer | ServiceKind::FrontEnd => ProbeKind::HttpGet,
            ServiceKind::LsfMaster => ProbeKind::LsfPing,
            ServiceKind::NameServer | ServiceKind::MarketDataFeed => ProbeKind::ConnectOnly,
        }
    }

    /// Unloaded round-trip latency of the probe in milliseconds.
    pub fn base_latency_ms(self) -> f64 {
        match self {
            ProbeKind::HttpGet => 40.0,
            ProbeKind::SqlSelect => 120.0,
            ProbeKind::LsfPing => 25.0,
            ProbeKind::ConnectOnly => 10.0,
        }
    }
}

/// What the probing agent observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProbeResult {
    /// Connected, query succeeded.
    Ok {
        /// Round-trip latency in milliseconds.
        latency_ms: f64,
    },
    /// No response within the application-specific timeout.
    Timeout,
    /// TCP connection refused (nothing listening).
    ConnectionRefused,
    /// Connected but the basic query returned an error (corruption,
    /// wedged internals).
    QueryError,
}

impl ProbeResult {
    /// Unix-exit-code view: 0 on success, nonzero otherwise — this is
    /// literally what the paper's shell agents branched on.
    pub fn exit_code(&self) -> i32 {
        match self {
            ProbeResult::Ok { .. } => 0,
            ProbeResult::Timeout => 124, // the `timeout(1)` convention
            ProbeResult::ConnectionRefused => 1,
            ProbeResult::QueryError => 2,
        }
    }

    /// Did the probe succeed?
    pub fn is_ok(&self) -> bool {
        matches!(self, ProbeResult::Ok { .. })
    }
}

/// Probe a service instance hosted on `server`.
///
/// Latency grows with the hosting server's CPU saturation (a saturated
/// run queue delays everything) and times out when it exceeds the
/// spec's `connect_timeout`. Measurement noise comes from the caller's
/// RNG stream.
pub fn probe(svc: &ServiceInstance, server: &Server, rng: &mut SimRng) -> ProbeResult {
    assert_eq!(
        server.id, svc.server,
        "probe() called with the wrong server"
    );
    // A dead host answers nothing: probes time out (no RST arrives).
    if !server.is_up() {
        return ProbeResult::Timeout;
    }
    match svc.status {
        ServiceStatus::Stopped | ServiceStatus::Crashed => ProbeResult::ConnectionRefused,
        ServiceStatus::Starting { .. } => ProbeResult::ConnectionRefused,
        ServiceStatus::Hung => ProbeResult::Timeout,
        ServiceStatus::Corrupted => ProbeResult::QueryError,
        ServiceStatus::Running => {
            let kind = ProbeKind::for_kind(svc.spec.kind);
            let latency = probe_latency_ms(kind, server, rng);
            if SimDuration::from_secs_f64(latency / 1000.0) > svc.spec.connect_timeout {
                ProbeResult::Timeout
            } else {
                ProbeResult::Ok {
                    latency_ms: latency,
                }
            }
        }
    }
}

/// Latency model for a successful probe: base × load inflation × noise.
pub fn probe_latency_ms(kind: ProbeKind, server: &Server, rng: &mut SimRng) -> f64 {
    let u = server.cpu_utilization();
    // Queueing-flavoured inflation: modest below saturation, explosive
    // past it (a probe against a 2×-overloaded box takes ~tens of
    // seconds — which is how overload trips the timeout threshold).
    let inflation = if u < 1.0 {
        1.0 / (1.0 - 0.7 * u.min(0.99))
    } else {
        10.0 * u * u
    };
    let noise = (1.0 + rng.normal(0.0, 0.1)).max(0.3);
    kind.base_latency_ms() * inflation * noise
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{ServiceId, ServiceInstance};
    use crate::spec::{DbEngine, ServiceSpec};
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_simkern::SimTime;

    fn setup() -> (Server, ServiceInstance, SimRng) {
        let server = Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        );
        let svc = ServiceInstance::new(
            ServiceId(0),
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        );
        (server, svc, SimRng::stream(42, "probe"))
    }

    fn run_to_running(server: &mut Server, svc: &mut ServiceInstance) {
        svc.start(server, SimTime::ZERO).unwrap();
        svc.maybe_complete_start(SimTime::from_secs(1600));
    }

    #[test]
    fn running_service_probes_ok() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        let r = probe(&svc, &server, &mut rng);
        assert!(r.is_ok(), "{r:?}");
        assert_eq!(r.exit_code(), 0);
        if let ProbeResult::Ok { latency_ms } = r {
            assert!(
                latency_ms > 10.0 && latency_ms < 1000.0,
                "latency = {latency_ms}"
            );
        }
    }

    #[test]
    fn stopped_and_crashed_are_refused() {
        let (mut server, mut svc, mut rng) = setup();
        assert_eq!(
            probe(&svc, &server, &mut rng),
            ProbeResult::ConnectionRefused
        );
        run_to_running(&mut server, &mut svc);
        svc.crash(&mut server);
        assert_eq!(
            probe(&svc, &server, &mut rng),
            ProbeResult::ConnectionRefused
        );
    }

    #[test]
    fn hung_times_out() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        svc.hang();
        let r = probe(&svc, &server, &mut rng);
        assert_eq!(r, ProbeResult::Timeout);
        assert_eq!(r.exit_code(), 124);
    }

    #[test]
    fn corrupted_yields_query_error() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        svc.corrupt(&mut server);
        assert_eq!(probe(&svc, &server, &mut rng), ProbeResult::QueryError);
    }

    #[test]
    fn dead_host_times_out() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        server.crash();
        svc.on_server_crash();
        assert_eq!(probe(&svc, &server, &mut rng), ProbeResult::Timeout);
    }

    #[test]
    fn overload_inflates_latency_to_timeout() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        // Slam the server with 8× its capacity.
        server.external_cpu_demand = server.spec.compute_power() * 8.0;
        let r = probe(&svc, &server, &mut rng);
        assert_eq!(
            r,
            ProbeResult::Timeout,
            "an 8x-overloaded DB must miss its 30s timeout"
        );
    }

    #[test]
    fn moderate_load_slower_but_ok() {
        let (mut server, mut svc, mut rng) = setup();
        run_to_running(&mut server, &mut svc);
        let quiet = probe_latency_ms(ProbeKind::SqlSelect, &server, &mut rng);
        server.external_cpu_demand = server.spec.compute_power() * 0.9;
        let loaded = probe_latency_ms(ProbeKind::SqlSelect, &server, &mut rng);
        assert!(loaded > quiet, "quiet = {quiet}, loaded = {loaded}");
        assert!(probe(&svc, &server, &mut rng).is_ok());
    }

    #[test]
    fn probe_kinds_map_from_service_kinds() {
        assert_eq!(
            ProbeKind::for_kind(ServiceKind::Database(DbEngine::Sybase)),
            ProbeKind::SqlSelect
        );
        assert_eq!(
            ProbeKind::for_kind(ServiceKind::WebServer),
            ProbeKind::HttpGet
        );
        assert_eq!(
            ProbeKind::for_kind(ServiceKind::LsfMaster),
            ProbeKind::LsfPing
        );
        assert_eq!(
            ProbeKind::for_kind(ServiceKind::NameServer),
            ProbeKind::ConnectOnly
        );
    }

    #[test]
    fn starting_is_refused_until_complete() {
        let (mut server, mut svc, mut rng) = setup();
        svc.start(&mut server, SimTime::ZERO).unwrap();
        assert_eq!(
            probe(&svc, &server, &mut rng),
            ProbeResult::ConnectionRefused
        );
        svc.maybe_complete_start(SimTime::from_secs(1600));
        assert!(probe(&svc, &server, &mut rng).is_ok());
    }
}
