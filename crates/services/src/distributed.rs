//! Distributed multi-component applications and the end-to-end dummy
//! transaction.
//!
//! §3.6: "For distributed applications we observed the time taken for a
//! request to be served by the entire application from beginning to
//! end. Every 15 to 30 minutes we initiated a dummy process to run
//! through all application components, simulating a user and measure the
//! total response time." A distributed app here is an ordered chain of
//! service instances (the request path); the dummy transaction probes
//! each in order and reports either the total latency or the *first
//! failing component* — which is exactly the pinpointing signal the
//! agents escalate on.

use intelliqos_simkern::SimRng;

use intelliqos_cluster::ids::ServerId;
use intelliqos_cluster::server::Server;

use crate::instance::ServiceId;
use crate::probe::{probe, ProbeResult};
use crate::registry::ServiceRegistry;

/// A named, ordered chain of components forming one distributed service.
#[derive(Debug, Clone)]
pub struct DistributedApp {
    /// Application name, e.g. `market-analytics`.
    pub name: String,
    /// Components in request-path order (front end last is typical, but
    /// callers choose; the dummy transaction walks this order).
    pub components: Vec<ServiceId>,
}

/// Outcome of an end-to-end dummy transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum E2eResult {
    /// Every component answered; total latency in milliseconds.
    Ok {
        /// Sum of per-component probe latencies.
        total_latency_ms: f64,
    },
    /// A component failed; the chain stops there.
    FailedAt {
        /// Which component failed.
        component: ServiceId,
        /// Its probe outcome.
        result: ProbeResult,
        /// Latency accumulated before the failure.
        partial_latency_ms: f64,
    },
}

impl E2eResult {
    /// Success predicate.
    pub fn is_ok(&self) -> bool {
        matches!(self, E2eResult::Ok { .. })
    }
}

impl DistributedApp {
    /// Build an app over the given component chain.
    ///
    /// # Panics
    /// Panics on an empty chain.
    pub fn new(name: impl Into<String>, components: Vec<ServiceId>) -> Self {
        assert!(!components.is_empty(), "a distributed app needs components");
        DistributedApp {
            name: name.into(),
            components,
        }
    }

    /// Is every component currently serving? ("all interdependent
    /// distributed application components must be up and running for the
    /// distributed service to be considered healthy")
    pub fn healthy(&self, registry: &ServiceRegistry) -> bool {
        self.components.iter().all(|id| {
            registry
                .get(*id)
                .map(|s| s.status.is_serving())
                .unwrap_or(false)
        })
    }

    /// Run the dummy transaction: probe each component in order through
    /// `servers` (a lookup from server id to server), stopping at the
    /// first failure.
    pub fn end_to_end<'a, F>(
        &self,
        registry: &ServiceRegistry,
        mut server_of: F,
        rng: &mut SimRng,
    ) -> E2eResult
    where
        F: FnMut(ServerId) -> &'a Server,
    {
        let mut total = 0.0;
        for &cid in &self.components {
            let svc = registry
                .get(cid)
                .unwrap_or_else(|| panic!("distributed app references unknown {cid}"));
            let server = server_of(svc.server);
            match probe(svc, server, rng) {
                ProbeResult::Ok { latency_ms } => total += latency_ms,
                other => {
                    return E2eResult::FailedAt {
                        component: cid,
                        result: other,
                        partial_latency_ms: total,
                    }
                }
            }
        }
        E2eResult::Ok {
            total_latency_ms: total,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DbEngine, ServiceSpec};
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::Site;
    use intelliqos_simkern::SimTime;

    struct World {
        servers: Vec<Server>,
        reg: ServiceRegistry,
        app: DistributedApp,
        ids: (ServiceId, ServiceId, ServiceId),
    }

    fn world() -> World {
        let mut servers: Vec<Server> = (0..3)
            .map(|i| {
                Server::new(
                    ServerId(i),
                    format!("host{i:03}"),
                    HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
                    Site::new("London", "LDN"),
                )
            })
            .collect();
        let mut reg = ServiceRegistry::new();
        let db = reg.deploy(ServiceSpec::database("db", DbEngine::Sybase), ServerId(0));
        let web = reg.deploy(ServiceSpec::web_server("web"), ServerId(1));
        let fe = reg.deploy(ServiceSpec::front_end("fe", "db", "web"), ServerId(2));
        reg.start(db, &mut servers[0], SimTime::ZERO).unwrap();
        reg.start(web, &mut servers[1], SimTime::ZERO).unwrap();
        reg.complete_pending_starts(SimTime::from_secs(1600));
        reg.start(fe, &mut servers[2], SimTime::from_secs(1600))
            .unwrap();
        reg.complete_pending_starts(SimTime::from_secs(3200));
        let app = DistributedApp::new("analytics", vec![db, web, fe]);
        World {
            servers,
            reg,
            app,
            ids: (db, web, fe),
        }
    }

    #[test]
    fn healthy_chain_succeeds_end_to_end() {
        let w = world();
        assert!(w.app.healthy(&w.reg));
        let mut rng = SimRng::stream(1, "e2e");
        let r = w
            .app
            .end_to_end(&w.reg, |sid| &w.servers[sid.index()], &mut rng);
        match r {
            E2eResult::Ok { total_latency_ms } => {
                assert!(
                    total_latency_ms > 100.0,
                    "db+web+fe latency expected, got {total_latency_ms}"
                )
            }
            other => panic!("expected Ok, got {other:?}"),
        }
    }

    #[test]
    fn failure_pinpoints_first_broken_component() {
        let mut w = world();
        let (_, web, _) = w.ids;
        // Hang the middle component.
        w.reg.get_mut(web).unwrap().hang();
        assert!(!w.app.healthy(&w.reg));
        let mut rng = SimRng::stream(1, "e2e");
        let r = w
            .app
            .end_to_end(&w.reg, |sid| &w.servers[sid.index()], &mut rng);
        match r {
            E2eResult::FailedAt {
                component,
                result,
                partial_latency_ms,
            } => {
                assert_eq!(component, web);
                assert_eq!(result, ProbeResult::Timeout);
                assert!(partial_latency_ms > 0.0); // the db leg already ran
            }
            other => panic!("expected FailedAt, got {other:?}"),
        }
    }

    #[test]
    fn first_component_failure_has_zero_partial_latency() {
        let mut w = world();
        let (db, _, _) = w.ids;
        let server0 = &mut w.servers[0];
        w.reg.get_mut(db).unwrap().crash(server0);
        let mut rng = SimRng::stream(1, "e2e");
        let r = w
            .app
            .end_to_end(&w.reg, |sid| &w.servers[sid.index()], &mut rng);
        match r {
            E2eResult::FailedAt {
                component,
                partial_latency_ms,
                ..
            } => {
                assert_eq!(component, db);
                assert_eq!(partial_latency_ms, 0.0);
            }
            other => panic!("expected FailedAt, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "needs components")]
    fn empty_app_panics() {
        let _ = DistributedApp::new("x", vec![]);
    }
}
