//! Service instances: the runtime state machine of one deployed service.
//!
//! The state machine mirrors what the paper's agents could actually
//! distinguish through "trying to use the application and reading the
//! exit code": running, starting (connection refused), hung (timeout),
//! crashed (refused, processes missing), corrupted (restart does not
//! help until a restore) and stopped.

use intelliqos_simkern::SimTime;

use intelliqos_cluster::ids::{Pid, ServerId};
use intelliqos_cluster::server::Server;

use crate::spec::ServiceSpec;

/// Unique id of a deployed service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(pub u32);

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "svc{:03}", self.0)
    }
}

/// Runtime status of a service instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceStatus {
    /// Cleanly stopped.
    Stopped,
    /// Start script running; becomes `Running` at the contained time.
    Starting {
        /// When startup completes.
        until: SimTime,
    },
    /// Healthy and serving.
    Running,
    /// Processes exist but the service does not respond (probes time
    /// out). Restart required.
    Hung,
    /// Processes are gone; probes get connection-refused.
    Crashed,
    /// On-disk state is corrupted: restarts fail until a restore.
    Corrupted,
}

impl ServiceStatus {
    /// Is the instance in a state where a probe would succeed?
    pub fn is_serving(self) -> bool {
        matches!(self, ServiceStatus::Running)
    }

    /// Does the instance need intervention (restart/restore)?
    pub fn is_faulted(self) -> bool {
        matches!(
            self,
            ServiceStatus::Hung | ServiceStatus::Crashed | ServiceStatus::Corrupted
        )
    }
}

/// One deployed service and its runtime bookkeeping.
#[derive(Debug, Clone)]
pub struct ServiceInstance {
    /// Identity.
    pub id: ServiceId,
    /// Specification (what the SLKT describes).
    pub spec: ServiceSpec,
    /// Which server hosts it.
    pub server: ServerId,
    /// Current status.
    pub status: ServiceStatus,
    /// Pids of the processes this instance spawned on its server.
    pub pids: Vec<Pid>,
    /// When the instance last entered `Running`.
    pub last_started: Option<SimTime>,
    /// Lifetime restart count (exposed to diagnostics — flapping
    /// services show up here).
    pub restarts: u32,
}

/// Errors from lifecycle operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServiceError {
    /// The hosting server is not up.
    ServerDown,
    /// A required mount is not available.
    MountMissing(String),
    /// The service is corrupted; a restore is needed before start.
    Corrupted,
    /// Operation invalid in the current state.
    BadState(&'static str),
    /// A named dependency is not serving.
    DependencyDown(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::ServerDown => write!(f, "hosting server is down"),
            ServiceError::MountMissing(m) => write!(f, "required mount {m} unavailable"),
            ServiceError::Corrupted => write!(f, "service state corrupted; restore required"),
            ServiceError::BadState(s) => write!(f, "operation invalid in state {s}"),
            ServiceError::DependencyDown(d) => write!(f, "dependency {d} not serving"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl ServiceInstance {
    /// A stopped instance of `spec` on `server`.
    pub fn new(id: ServiceId, spec: ServiceSpec, server: ServerId) -> Self {
        ServiceInstance {
            id,
            spec,
            server,
            status: ServiceStatus::Stopped,
            pids: Vec::new(),
            last_started: None,
            restarts: 0,
        }
    }

    /// Run the startup script: spawns the expected processes on the
    /// hosting server and enters `Starting`. The caller must pass the
    /// actual hosting [`Server`] (checked by id).
    ///
    /// Dependency ordering is enforced one level up (the registry), as
    /// the agents enforce it through the SLKT startup sequence.
    pub fn start(&mut self, server: &mut Server, now: SimTime) -> Result<SimTime, ServiceError> {
        assert_eq!(
            server.id, self.server,
            "start() called with the wrong server"
        );
        if !server.is_up() {
            return Err(ServiceError::ServerDown);
        }
        match self.status {
            ServiceStatus::Stopped | ServiceStatus::Crashed => {}
            ServiceStatus::Corrupted => return Err(ServiceError::Corrupted),
            ServiceStatus::Running => return Err(ServiceError::BadState("Running")),
            ServiceStatus::Starting { .. } => return Err(ServiceError::BadState("Starting")),
            ServiceStatus::Hung => return Err(ServiceError::BadState("Hung (stop first)")),
        }
        for m in &self.spec.required_mounts {
            if !server.fs.is_mounted(m) {
                return Err(ServiceError::MountMissing(m.clone()));
            }
        }
        self.pids.clear();
        for pe in &self.spec.processes {
            for _ in 0..pe.count {
                let pid = server.procs.spawn(
                    pe.name.clone(),
                    format!("-svc {}", self.spec.name),
                    self.spec.run_as.clone(),
                    pe.cpu_demand,
                    pe.mem_mb,
                    pe.io_demand,
                    now,
                );
                self.pids.push(pid);
            }
        }
        let until = now + self.spec.startup_duration();
        self.status = ServiceStatus::Starting { until };
        Ok(until)
    }

    /// Complete startup if its time has arrived.
    pub fn maybe_complete_start(&mut self, now: SimTime) -> bool {
        if let ServiceStatus::Starting { until } = self.status {
            if now >= until {
                self.status = ServiceStatus::Running;
                self.last_started = Some(now);
                self.restarts += 1;
                return true;
            }
        }
        false
    }

    /// Clean stop: kills processes, enters `Stopped`.
    pub fn stop(&mut self, server: &mut Server) {
        assert_eq!(server.id, self.server);
        for pid in self.pids.drain(..) {
            server.procs.kill(pid);
        }
        if self.status != ServiceStatus::Corrupted {
            self.status = ServiceStatus::Stopped;
        }
    }

    /// Crash: processes vanish, probes will be refused.
    pub fn crash(&mut self, server: &mut Server) {
        assert_eq!(server.id, self.server);
        for pid in self.pids.drain(..) {
            server.procs.kill(pid);
        }
        self.status = ServiceStatus::Crashed;
    }

    /// Hang: processes stay in the table (so a naive `ps` check passes)
    /// but probes time out — the classic latent error.
    pub fn hang(&mut self) {
        if self.status == ServiceStatus::Running {
            self.status = ServiceStatus::Hung;
        }
    }

    /// Corrupt the on-disk state. Also crashes the processes.
    pub fn corrupt(&mut self, server: &mut Server) {
        assert_eq!(server.id, self.server);
        for pid in self.pids.drain(..) {
            server.procs.kill(pid);
        }
        self.status = ServiceStatus::Corrupted;
    }

    /// Restore from backup: clears corruption, leaving the instance
    /// stopped and startable.
    pub fn restore(&mut self) -> bool {
        if self.status == ServiceStatus::Corrupted {
            self.status = ServiceStatus::Stopped;
            true
        } else {
            false
        }
    }

    /// React to the hosting server having crashed: our processes are
    /// gone with it.
    pub fn on_server_crash(&mut self) {
        self.pids.clear();
        if self.status != ServiceStatus::Corrupted && self.status != ServiceStatus::Stopped {
            self.status = ServiceStatus::Crashed;
        }
    }

    /// Does the live process table match the SLKT expectation? Returns
    /// the list of `(process name, expected, found)` mismatches — what a
    /// service intelliagent reports when diagnosing.
    pub fn process_mismatches(&self, server: &Server) -> Vec<(String, u32, u32)> {
        let mut out = Vec::new();
        for pe in &self.spec.processes {
            let found = server.procs.live_count(&pe.name) as u32;
            if found < pe.count {
                out.push((pe.name.clone(), pe.count, found));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DbEngine;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::Site;

    fn server() -> Server {
        Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN-DC1"),
        )
    }

    fn db_instance() -> ServiceInstance {
        ServiceInstance::new(
            ServiceId(0),
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        )
    }

    #[test]
    fn start_spawns_expected_processes() {
        let mut srv = server();
        let mut svc = db_instance();
        let until = svc.start(&mut srv, SimTime::ZERO).unwrap();
        assert_eq!(until, SimTime::from_secs(1600));
        assert!(matches!(svc.status, ServiceStatus::Starting { .. }));
        assert_eq!(srv.procs.live_count("ora_pmon"), 1);
        assert_eq!(srv.procs.live_count("ora_dbw"), 2);
        assert_eq!(svc.pids.len(), 4);
        assert!(svc.process_mismatches(&srv).is_empty());
    }

    #[test]
    fn startup_completes_on_time() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        assert!(!svc.maybe_complete_start(SimTime::from_secs(1599)));
        assert!(svc.maybe_complete_start(SimTime::from_secs(1600)));
        assert!(svc.status.is_serving());
        assert_eq!(svc.restarts, 1);
        assert_eq!(svc.last_started, Some(SimTime::from_secs(1600)));
    }

    #[test]
    fn cannot_start_twice() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        assert!(matches!(
            svc.start(&mut srv, SimTime::from_secs(1)),
            Err(ServiceError::BadState(_))
        ));
        svc.maybe_complete_start(SimTime::from_secs(1600));
        assert!(matches!(
            svc.start(&mut srv, SimTime::from_secs(1601)),
            Err(ServiceError::BadState(_))
        ));
    }

    #[test]
    fn crash_removes_processes_and_allows_restart() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        svc.maybe_complete_start(SimTime::from_secs(1600));
        svc.crash(&mut srv);
        assert_eq!(svc.status, ServiceStatus::Crashed);
        assert_eq!(srv.procs.live_count("ora_pmon"), 0);
        let mismatches = svc.process_mismatches(&srv);
        assert_eq!(mismatches.len(), 3); // all three process groups gone
                                         // Crashed → startable again (the agents' restart path).
        svc.start(&mut srv, SimTime::from_secs(2000)).unwrap();
    }

    #[test]
    fn hang_keeps_processes_but_is_faulted() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        svc.maybe_complete_start(SimTime::from_secs(1600));
        svc.hang();
        assert_eq!(svc.status, ServiceStatus::Hung);
        assert!(svc.status.is_faulted());
        // Processes still visible: a bare ps-based check would be fooled.
        assert_eq!(srv.procs.live_count("ora_pmon"), 1);
        assert!(svc.process_mismatches(&srv).is_empty());
        // A hung service cannot be started without stopping first.
        assert!(matches!(
            svc.start(&mut srv, SimTime::from_secs(1630)),
            Err(ServiceError::BadState(_))
        ));
        svc.stop(&mut srv);
        svc.start(&mut srv, SimTime::from_secs(1640)).unwrap();
    }

    #[test]
    fn corruption_blocks_start_until_restore() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        svc.maybe_complete_start(SimTime::from_secs(1600));
        svc.corrupt(&mut srv);
        assert!(matches!(
            svc.start(&mut srv, SimTime::from_secs(1630)),
            Err(ServiceError::Corrupted)
        ));
        assert!(svc.restore());
        assert!(!svc.restore()); // idempotence check
        svc.start(&mut srv, SimTime::from_secs(1640)).unwrap();
    }

    #[test]
    fn start_requires_server_up_and_mounts() {
        let mut srv = server();
        let mut svc = db_instance();
        srv.crash();
        assert_eq!(
            svc.start(&mut srv, SimTime::ZERO),
            Err(ServiceError::ServerDown)
        );
        srv.begin_reboot(SimTime::ZERO);
        srv.maybe_complete_reboot(SimTime::from_mins(10));
        srv.fs.set_mounted("/apps", false);
        assert!(matches!(
            svc.start(&mut srv, SimTime::from_mins(10)),
            Err(ServiceError::MountMissing(_))
        ));
        srv.fs.set_mounted("/apps", true);
        assert!(svc.start(&mut srv, SimTime::from_mins(10)).is_ok());
    }

    #[test]
    fn server_crash_propagates() {
        let mut srv = server();
        let mut svc = db_instance();
        svc.start(&mut srv, SimTime::ZERO).unwrap();
        svc.maybe_complete_start(SimTime::from_secs(1600));
        srv.crash();
        svc.on_server_crash();
        assert_eq!(svc.status, ServiceStatus::Crashed);
        assert!(svc.pids.is_empty());
    }

    #[test]
    fn stopped_instance_survives_server_crash_as_stopped() {
        let mut svc = db_instance();
        svc.on_server_crash();
        assert_eq!(svc.status, ServiceStatus::Stopped);
    }
}
