//! The datacenter-wide service registry.
//!
//! Owns every [`ServiceInstance`], indexes them by server, kind, and
//! name, and enforces the SLKT dependency ordering on start ("all
//! interdependent distributed application components must be up and
//! running for the distributed service to be considered healthy").

use std::collections::BTreeMap;

use intelliqos_simkern::SimTime;

use intelliqos_cluster::ids::ServerId;
use intelliqos_cluster::server::Server;

use crate::instance::{ServiceError, ServiceId, ServiceInstance, ServiceStatus};
use crate::spec::{ServiceKind, ServiceSpec};

/// All deployed services.
#[derive(Debug, Clone, Default)]
pub struct ServiceRegistry {
    instances: BTreeMap<ServiceId, ServiceInstance>,
    by_server: BTreeMap<ServerId, Vec<ServiceId>>,
    next_id: u32,
}

impl ServiceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ServiceRegistry::default()
    }

    /// Deploy a service spec onto a server (initially stopped).
    ///
    /// # Panics
    /// Panics if another service already uses the same name — service
    /// names key the dependency graph and the ontologies.
    pub fn deploy(&mut self, spec: ServiceSpec, server: ServerId) -> ServiceId {
        assert!(
            self.by_name(&spec.name).is_none(),
            "duplicate service name {}",
            spec.name
        );
        let id = ServiceId(self.next_id);
        self.next_id += 1;
        self.instances
            .insert(id, ServiceInstance::new(id, spec, server));
        self.by_server.entry(server).or_default().push(id);
        id
    }

    /// Instance by id.
    pub fn get(&self, id: ServiceId) -> Option<&ServiceInstance> {
        self.instances.get(&id)
    }

    /// Mutable instance by id.
    pub fn get_mut(&mut self, id: ServiceId) -> Option<&mut ServiceInstance> {
        self.instances.get_mut(&id)
    }

    /// Instance by unique name.
    pub fn by_name(&self, name: &str) -> Option<&ServiceInstance> {
        self.instances.values().find(|s| s.spec.name == name)
    }

    /// All instances, id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceInstance> {
        self.instances.values()
    }

    /// All instances, mutable.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut ServiceInstance> {
        self.instances.values_mut()
    }

    /// Instances hosted on `server` (indexed; O(services-on-server)).
    pub fn on_server(&self, server: ServerId) -> impl Iterator<Item = &ServiceInstance> {
        self.by_server
            .get(&server)
            .into_iter()
            .flatten()
            .filter_map(move |id| self.instances.get(id))
    }

    /// Ids of instances hosted on `server`.
    pub fn ids_on_server(&self, server: ServerId) -> Vec<ServiceId> {
        self.by_server.get(&server).cloned().unwrap_or_default()
    }

    /// Instances of a kind.
    pub fn of_kind(&self, kind: ServiceKind) -> impl Iterator<Item = &ServiceInstance> + '_ {
        self.instances.values().filter(move |s| s.spec.kind == kind)
    }

    /// All database instances (either engine).
    pub fn databases(&self) -> impl Iterator<Item = &ServiceInstance> {
        self.instances
            .values()
            .filter(|s| s.spec.kind.is_database())
    }

    /// Count of instances currently serving.
    pub fn running_count(&self) -> usize {
        self.instances
            .values()
            .filter(|s| s.status.is_serving())
            .count()
    }

    /// Ids of every faulted instance (hung/crashed/corrupted).
    pub fn faulted(&self) -> Vec<ServiceId> {
        self.instances
            .values()
            .filter(|s| s.status.is_faulted())
            .map(|s| s.id)
            .collect()
    }

    /// Are all named dependencies of `id` currently serving?
    pub fn dependencies_satisfied(&self, id: ServiceId) -> Result<(), String> {
        let svc = match self.instances.get(&id) {
            Some(s) => s,
            None => return Err(format!("unknown service {id}")),
        };
        for dep in &svc.spec.depends_on {
            match self.by_name(dep) {
                Some(d) if d.status.is_serving() => {}
                Some(_) => return Err(dep.clone()),
                None => return Err(format!("{dep} (not deployed)")),
            }
        }
        Ok(())
    }

    /// Start a service, enforcing dependency ordering. `server` must be
    /// the hosting server.
    pub fn start(
        &mut self,
        id: ServiceId,
        server: &mut Server,
        now: SimTime,
    ) -> Result<SimTime, ServiceError> {
        if let Err(dep) = self.dependencies_satisfied(id) {
            return Err(ServiceError::DependencyDown(dep));
        }
        self.instances
            .get_mut(&id)
            // qoslint::allow(no-panic, presence was checked at the top of this fn)
            .expect("checked above")
            .start(server, now)
    }

    /// Propagate a server crash to every service it hosted.
    pub fn on_server_crash(&mut self, server: ServerId) -> Vec<ServiceId> {
        let ids = self.ids_on_server(server);
        let mut affected = Vec::new();
        for id in ids {
            // qoslint::allow(no-panic, id comes from the registry index one line up)
            let svc = self.instances.get_mut(&id).expect("indexed id exists");
            if !matches!(
                svc.status,
                ServiceStatus::Stopped | ServiceStatus::Corrupted
            ) {
                svc.on_server_crash();
                affected.push(id);
            }
        }
        affected
    }

    /// Complete any pending startups whose time has arrived; returns the
    /// ids that transitioned to `Running`.
    pub fn complete_pending_starts(&mut self, now: SimTime) -> Vec<ServiceId> {
        let mut done = Vec::new();
        for svc in self.instances.values_mut() {
            if svc.maybe_complete_start(now) {
                done.push(svc.id);
            }
        }
        done
    }

    /// Total number of deployed services.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when nothing is deployed.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DbEngine;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::Site;

    fn server(id: u32) -> Server {
        Server::new(
            ServerId(id),
            format!("host{id:03}"),
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        )
    }

    fn registry_with_stack() -> (ServiceRegistry, Server, ServiceId, ServiceId, ServiceId) {
        let mut reg = ServiceRegistry::new();
        let mut srv = server(0);
        let db = reg.deploy(
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        );
        let web = reg.deploy(ServiceSpec::web_server("web-1"), ServerId(0));
        let fe = reg.deploy(
            ServiceSpec::front_end("analyst-fe", "trades-db", "web-1"),
            ServerId(0),
        );
        // Bring up db and web.
        reg.start(db, &mut srv, SimTime::ZERO).unwrap();
        reg.start(web, &mut srv, SimTime::ZERO).unwrap();
        reg.complete_pending_starts(SimTime::from_secs(1600));
        (reg, srv, db, web, fe)
    }

    #[test]
    fn deploy_and_lookup() {
        let (reg, _, db, _, _) = registry_with_stack();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.by_name("trades-db").unwrap().id, db);
        assert_eq!(reg.databases().count(), 1);
        assert_eq!(reg.ids_on_server(ServerId(0)).len(), 3);
        assert_eq!(reg.of_kind(ServiceKind::WebServer).count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate service name")]
    fn duplicate_names_rejected() {
        let mut reg = ServiceRegistry::new();
        reg.deploy(ServiceSpec::web_server("w"), ServerId(0));
        reg.deploy(ServiceSpec::web_server("w"), ServerId(1));
    }

    #[test]
    fn dependency_ordering_enforced() {
        let mut reg = ServiceRegistry::new();
        let mut srv = server(0);
        let _db = reg.deploy(
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        );
        let _web = reg.deploy(ServiceSpec::web_server("web-1"), ServerId(0));
        let fe = reg.deploy(
            ServiceSpec::front_end("analyst-fe", "trades-db", "web-1"),
            ServerId(0),
        );
        // Dependencies not running yet.
        assert!(reg.start(fe, &mut srv, SimTime::ZERO).is_err());
        assert!(reg.dependencies_satisfied(fe).is_err());
    }

    #[test]
    fn start_after_dependencies_up() {
        let (mut reg, mut srv, _, _, fe) = registry_with_stack();
        assert!(reg.dependencies_satisfied(fe).is_ok());
        reg.start(fe, &mut srv, SimTime::from_secs(1600)).unwrap();
        let done = reg.complete_pending_starts(SimTime::from_secs(1700));
        assert_eq!(done, vec![fe]);
        assert_eq!(reg.running_count(), 3);
    }

    #[test]
    fn missing_dependency_is_reported_by_name() {
        let mut reg = ServiceRegistry::new();
        let fe = reg.deploy(
            ServiceSpec::front_end("fe", "ghost-db", "ghost-web"),
            ServerId(0),
        );
        let err = reg.dependencies_satisfied(fe).unwrap_err();
        assert!(err.contains("ghost-db"), "err = {err}");
    }

    #[test]
    fn server_crash_propagates_to_hosted_services() {
        let (mut reg, mut srv, db, web, _) = registry_with_stack();
        srv.crash();
        let affected = reg.on_server_crash(ServerId(0));
        assert!(affected.contains(&db) && affected.contains(&web));
        assert_eq!(reg.running_count(), 0);
        assert_eq!(reg.faulted().len(), 2); // fe was never started ⇒ stopped
    }

    #[test]
    fn faulted_lists_only_faulted() {
        let (mut reg, mut srv, db, _, _) = registry_with_stack();
        assert!(reg.faulted().is_empty());
        reg.get_mut(db).unwrap().crash(&mut srv);
        assert_eq!(reg.faulted(), vec![db]);
    }
}
