//! # intelliqos-services
//!
//! Application/service models for the `intelliqos` reproduction of
//! Corsava & Getov (IPDPS 2003): service specifications (the ground
//! truth SLKTs describe), runtime state machines, health probes
//! ("connect and run a basic command, read the exit code"), the
//! datacenter-wide registry with dependency ordering, and distributed
//! multi-component applications with the end-to-end dummy transaction.

#![warn(missing_docs)]

pub mod distributed;
pub mod instance;
pub mod probe;
pub mod registry;
pub mod spec;

pub use distributed::{DistributedApp, E2eResult};
pub use instance::{ServiceError, ServiceId, ServiceInstance, ServiceStatus};
pub use probe::{probe, probe_latency_ms, ProbeKind, ProbeResult};
pub use registry::ServiceRegistry;
pub use spec::{DbEngine, ProcessExpectation, ServiceKind, ServiceSpec, StartupStep};
