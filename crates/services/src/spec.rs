//! Service kinds and specifications.
//!
//! A [`ServiceSpec`] is the ground truth a **static local knowledge
//! template (SLKT)** describes: which application should run on a
//! server, its version, port, expected process names and counts, its
//! startup sequence with component ordering, external dependencies, and
//! the connectivity timeout the specialized application developers
//! provided (§3.2).

use std::fmt;

use intelliqos_simkern::SimDuration;

/// Database engines at the customer site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DbEngine {
    /// Oracle RDBMS.
    Oracle,
    /// Sybase ASE.
    Sybase,
}

impl fmt::Display for DbEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbEngine::Oracle => f.write_str("Oracle"),
            DbEngine::Sybase => f.write_str("Sybase"),
        }
    }
}

/// Application/service types the intelliagents manage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceKind {
    /// A database server instance.
    Database(DbEngine),
    /// An HTTP server.
    WebServer,
    /// A user-facing financial application front end.
    FrontEnd,
    /// The LSF master batch daemon.
    LsfMaster,
    /// A name service (DNS/NIS/LDAP).
    NameServer,
    /// A market-data feed handler.
    MarketDataFeed,
}

impl ServiceKind {
    /// Short type string used in ontologies and DGSPL entries.
    pub fn type_str(self) -> &'static str {
        match self {
            ServiceKind::Database(DbEngine::Oracle) => "db-oracle",
            ServiceKind::Database(DbEngine::Sybase) => "db-sybase",
            ServiceKind::WebServer => "web",
            ServiceKind::FrontEnd => "frontend",
            ServiceKind::LsfMaster => "lsf-master",
            ServiceKind::NameServer => "nameserver",
            ServiceKind::MarketDataFeed => "mktdata",
        }
    }

    /// Is this a database of either engine?
    pub fn is_database(self) -> bool {
        matches!(self, ServiceKind::Database(_))
    }
}

impl fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.type_str())
    }
}

/// One step of a startup sequence ("application component startup
/// sequences" in the SLKT definition).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StartupStep {
    /// Component name, e.g. `listener`, `dbwriter`.
    pub component: String,
    /// How long this step takes.
    pub duration: SimDuration,
}

/// Expected process-table footprint: (command name, expected count).
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessExpectation {
    /// Exact command name, e.g. `oracle_pmon`.
    pub name: String,
    /// How many instances a healthy service shows.
    pub count: u32,
    /// CPU demand per instance at nominal load (compute-power units).
    pub cpu_demand: f64,
    /// Resident memory per instance, MB.
    pub mem_mb: f64,
    /// I/O demand per instance (fraction of server disk capacity).
    pub io_demand: f64,
}

/// Full specification of one service deployment.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSpec {
    /// Unique service name within the datacenter, e.g. `trades-db-07`.
    pub name: String,
    /// Application type.
    pub kind: ServiceKind,
    /// Application version string, e.g. `8.1.7`.
    pub version: String,
    /// TCP port the service listens on (0 = none).
    pub port: u16,
    /// Expected processes and their resource demands.
    pub processes: Vec<ProcessExpectation>,
    /// Startup sequence, in order.
    pub startup: Vec<StartupStep>,
    /// How long a clean shutdown takes.
    pub shutdown: SimDuration,
    /// Names of services that must be `Running` before this one starts.
    pub depends_on: Vec<String>,
    /// Mount points that must be mounted for the service to run.
    pub required_mounts: Vec<String>,
    /// Where the binaries live.
    pub binary_path: String,
    /// Application-specific connectivity timeout for health probes,
    /// provided by the application developers (§3.2).
    pub connect_timeout: SimDuration,
    /// Unix user the service runs as.
    pub run_as: String,
}

impl ServiceSpec {
    /// Total startup time across all steps.
    pub fn startup_duration(&self) -> SimDuration {
        self.startup.iter().map(|s| s.duration).sum()
    }

    /// Canonical spec for a database of the given engine.
    pub fn database(name: impl Into<String>, engine: DbEngine) -> ServiceSpec {
        let (version, proc_prefix, startup_secs, recovery_secs) = match engine {
            // Instance start is fast; crash *recovery* (rolling the redo
            // forward after an unclean stop) dominates a post-crash
            // restart on these databases.
            DbEngine::Oracle => ("8.1.7", "ora", 90, 1500),
            DbEngine::Sybase => ("12.0", "syb", 60, 1080),
        };
        let name = name.into();
        ServiceSpec {
            kind: ServiceKind::Database(engine),
            version: version.to_string(),
            port: 1521,
            processes: vec![
                ProcessExpectation {
                    name: format!("{proc_prefix}_pmon"),
                    count: 1,
                    cpu_demand: 0.05,
                    mem_mb: 64.0,
                    io_demand: 0.01,
                },
                ProcessExpectation {
                    name: format!("{proc_prefix}_dbw"),
                    count: 2,
                    cpu_demand: 0.2,
                    mem_mb: 256.0,
                    io_demand: 0.08,
                },
                ProcessExpectation {
                    name: format!("{proc_prefix}_lsnr"),
                    count: 1,
                    cpu_demand: 0.05,
                    mem_mb: 32.0,
                    io_demand: 0.0,
                },
            ],
            startup: vec![
                StartupStep {
                    component: "listener".into(),
                    duration: SimDuration::from_secs(10),
                },
                StartupStep {
                    component: "instance".into(),
                    duration: SimDuration::from_secs(startup_secs),
                },
                StartupStep {
                    component: "recovery".into(),
                    duration: SimDuration::from_secs(recovery_secs),
                },
            ],
            shutdown: SimDuration::from_secs(30),
            depends_on: vec![],
            required_mounts: vec!["/apps".into()],
            binary_path: "/apps/db/bin".into(),
            connect_timeout: SimDuration::from_secs(30),
            run_as: "dba".into(),
            name,
        }
    }

    /// Canonical spec for a web server.
    pub fn web_server(name: impl Into<String>) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::WebServer,
            version: "1.3.26".into(),
            port: 80,
            processes: vec![ProcessExpectation {
                name: "httpd".into(),
                count: 4,
                cpu_demand: 0.05,
                mem_mb: 24.0,
                io_demand: 0.005,
            }],
            startup: vec![StartupStep {
                component: "httpd".into(),
                duration: SimDuration::from_secs(8),
            }],
            shutdown: SimDuration::from_secs(5),
            depends_on: vec![],
            required_mounts: vec!["/apps".into()],
            binary_path: "/apps/web/bin".into(),
            connect_timeout: SimDuration::from_secs(10),
            run_as: "web".into(),
        }
    }

    /// Canonical spec for a financial front-end application, which
    /// depends on a database and a web tier by name.
    pub fn front_end(
        name: impl Into<String>,
        db_dep: impl Into<String>,
        web_dep: impl Into<String>,
    ) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::FrontEnd,
            version: "4.2".into(),
            port: 9000,
            processes: vec![
                ProcessExpectation {
                    name: "fe_gui".into(),
                    count: 2,
                    cpu_demand: 0.1,
                    mem_mb: 96.0,
                    io_demand: 0.005,
                },
                ProcessExpectation {
                    name: "fe_calc".into(),
                    count: 1,
                    cpu_demand: 0.3,
                    mem_mb: 256.0,
                    io_demand: 0.01,
                },
            ],
            startup: vec![
                StartupStep {
                    component: "calc-engine".into(),
                    duration: SimDuration::from_secs(20),
                },
                StartupStep {
                    component: "gui".into(),
                    duration: SimDuration::from_secs(10),
                },
            ],
            shutdown: SimDuration::from_secs(10),
            depends_on: vec![db_dep.into(), web_dep.into()],
            required_mounts: vec!["/apps".into()],
            binary_path: "/apps/frontend/bin".into(),
            connect_timeout: SimDuration::from_secs(15),
            run_as: "fin".into(),
        }
    }

    /// Canonical spec for the LSF master daemon pair.
    pub fn lsf_master(name: impl Into<String>) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::LsfMaster,
            version: "4.1".into(),
            port: 6879,
            processes: vec![
                ProcessExpectation {
                    name: "lsf_mbatchd".into(),
                    count: 1,
                    cpu_demand: 0.1,
                    mem_mb: 48.0,
                    io_demand: 0.002,
                },
                ProcessExpectation {
                    name: "lsf_lim".into(),
                    count: 1,
                    cpu_demand: 0.05,
                    mem_mb: 16.0,
                    io_demand: 0.0,
                },
            ],
            startup: vec![StartupStep {
                component: "mbatchd".into(),
                duration: SimDuration::from_secs(15),
            }],
            shutdown: SimDuration::from_secs(5),
            depends_on: vec![],
            required_mounts: vec!["/apps".into()],
            binary_path: "/apps/lsf/bin".into(),
            connect_timeout: SimDuration::from_secs(10),
            run_as: "lsfadmin".into(),
        }
    }

    /// Canonical spec for a name server.
    pub fn name_server(name: impl Into<String>) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::NameServer,
            version: "8.2".into(),
            port: 53,
            processes: vec![ProcessExpectation {
                name: "named".into(),
                count: 1,
                cpu_demand: 0.05,
                mem_mb: 32.0,
                io_demand: 0.0,
            }],
            startup: vec![StartupStep {
                component: "named".into(),
                duration: SimDuration::from_secs(5),
            }],
            shutdown: SimDuration::from_secs(3),
            depends_on: vec![],
            required_mounts: vec![],
            binary_path: "/apps/dns/bin".into(),
            connect_timeout: SimDuration::from_secs(5),
            run_as: "named".into(),
        }
    }

    /// Canonical spec for a market-data feed handler, which needs a
    /// name server to resolve upstream feeds.
    pub fn market_data_feed(name: impl Into<String>, ns_dep: impl Into<String>) -> ServiceSpec {
        ServiceSpec {
            name: name.into(),
            kind: ServiceKind::MarketDataFeed,
            version: "2.0".into(),
            port: 8500,
            processes: vec![ProcessExpectation {
                name: "mdfeed".into(),
                count: 2,
                cpu_demand: 0.25,
                mem_mb: 128.0,
                io_demand: 0.02,
            }],
            startup: vec![StartupStep {
                component: "feed".into(),
                duration: SimDuration::from_secs(12),
            }],
            shutdown: SimDuration::from_secs(5),
            depends_on: vec![ns_dep.into()],
            required_mounts: vec!["/apps".into()],
            binary_path: "/apps/mktdata/bin".into(),
            connect_timeout: SimDuration::from_secs(10),
            run_as: "mktdata".into(),
        }
    }

    /// Total nominal resource demand of a healthy instance.
    pub fn nominal_load(&self) -> (f64, f64, f64) {
        let mut cpu = 0.0;
        let mut mem = 0.0;
        let mut io = 0.0;
        for p in &self.processes {
            cpu += p.cpu_demand * p.count as f64;
            mem += p.mem_mb * p.count as f64;
            io += p.io_demand * p.count as f64;
        }
        (cpu, mem, io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_specs_differ_by_engine() {
        let ora = ServiceSpec::database("db1", DbEngine::Oracle);
        let syb = ServiceSpec::database("db2", DbEngine::Sybase);
        assert_eq!(ora.kind, ServiceKind::Database(DbEngine::Oracle));
        assert!(ora.startup_duration() > syb.startup_duration());
        assert!(ora.processes.iter().any(|p| p.name == "ora_pmon"));
        assert!(syb.processes.iter().any(|p| p.name == "syb_pmon"));
    }

    #[test]
    fn startup_duration_sums_steps() {
        let db = ServiceSpec::database("db", DbEngine::Oracle);
        assert_eq!(db.startup_duration(), SimDuration::from_secs(1600));
    }

    #[test]
    fn front_end_depends_on_db_and_web() {
        let fe = ServiceSpec::front_end("fe1", "trades-db", "web-1");
        assert_eq!(
            fe.depends_on,
            vec!["trades-db".to_string(), "web-1".to_string()]
        );
        assert_eq!(fe.kind, ServiceKind::FrontEnd);
    }

    #[test]
    fn nominal_load_accounts_for_counts() {
        let web = ServiceSpec::web_server("w");
        let (cpu, mem, io) = web.nominal_load();
        assert!((cpu - 0.2).abs() < 1e-12); // 4 × 0.05
        assert!((mem - 96.0).abs() < 1e-12); // 4 × 24
        assert!((io - 0.02).abs() < 1e-12);
    }

    #[test]
    fn type_strings_are_stable() {
        assert_eq!(
            ServiceKind::Database(DbEngine::Oracle).type_str(),
            "db-oracle"
        );
        assert_eq!(ServiceKind::LsfMaster.type_str(), "lsf-master");
        assert!(ServiceKind::Database(DbEngine::Sybase).is_database());
        assert!(!ServiceKind::WebServer.is_database());
    }

    #[test]
    fn all_canonical_specs_have_processes_and_startup() {
        let specs = [
            ServiceSpec::database("a", DbEngine::Oracle),
            ServiceSpec::web_server("b"),
            ServiceSpec::front_end("c", "a", "b"),
            ServiceSpec::lsf_master("d"),
            ServiceSpec::name_server("e"),
            ServiceSpec::market_data_feed("f", "e"),
        ];
        for s in &specs {
            assert!(!s.processes.is_empty(), "{} has no processes", s.name);
            assert!(!s.startup.is_empty(), "{} has no startup steps", s.name);
            assert!(!s.connect_timeout.is_zero());
        }
    }
}
