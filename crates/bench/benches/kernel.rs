//! Criterion micro-benchmarks for the simulation kernel: these bound
//! the cost of the primitives every simulated year leans on.

use intelliqos_bench::{black_box, criterion_group, criterion_main, Criterion};

use intelliqos_simkern::{
    CircularQueue, EventQueue, SimDuration, SimRng, SimTime, Subsystem, TimeSeries, Trace,
};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_secs((i * 7919) % 86_400 + 86_400), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            black_box(acc)
        })
    });
    c.bench_function("event_queue/cancel_heavy", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let tokens: Vec<_> = (0..1000u64)
                .map(|i| q.schedule(SimTime::from_secs(i + 1), i))
                .collect();
            for t in tokens.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
    // Cancelling 99% of 100k events: with the old retain()-per-cancel
    // this was O(n) each (quadratic overall); the live-set design makes
    // each cancel O(1) with an amortised lazy purge.
    c.bench_function("event_queue/mass_cancel_100k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let tokens: Vec<_> = (0..100_000u64)
                .map(|i| q.schedule(SimTime::from_secs(i + 1), i))
                .collect();
            for t in &tokens[..99_000] {
                q.cancel(*t);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_trace(c: &mut Criterion) {
    // The whole point of the disabled path: a run with tracing off must
    // pay only a branch per emit — the detail closure never runs.
    c.bench_function("trace/emit_disabled_100k", |b| {
        let mut trace = Trace::disabled();
        b.iter(|| {
            for i in 0..100_000u64 {
                trace.emit(SimTime::from_secs(i), Subsystem::Kernel, "tick", || {
                    format!("expensive detail {i}")
                });
            }
            black_box(trace.total())
        })
    });
    c.bench_function("trace/emit_enabled_100k", |b| {
        b.iter(|| {
            let mut trace = Trace::enabled();
            for i in 0..100_000u64 {
                trace.emit(SimTime::from_secs(i), Subsystem::Kernel, "tick", || {
                    format!("detail {i}")
                });
            }
            black_box(trace.total())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/exponential_1k", |b| {
        let mut rng = SimRng::stream(1, "bench");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.exponential(300.0);
            }
            black_box(acc)
        })
    });
    c.bench_function("rng/lognormal_1k", |b| {
        let mut rng = SimRng::stream(1, "bench");
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.lognormal_median(7200.0, 0.5);
            }
            black_box(acc)
        })
    });
}

fn bench_collections(c: &mut Criterion) {
    c.bench_function("circular_queue/push_wrap_10k", |b| {
        b.iter(|| {
            let mut q = CircularQueue::new(512);
            for i in 0..10_000u32 {
                q.push(i);
            }
            black_box(q.len())
        })
    });
    c.bench_function("timeseries/push_and_resample", |b| {
        b.iter(|| {
            let mut ts = TimeSeries::new();
            for i in 0..2_000u64 {
                ts.push(SimTime::from_secs(i * 30), (i % 100) as f64);
            }
            black_box(ts.resample_mean(SimTime::ZERO, SimDuration::from_mins(30), 32))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_trace,
    bench_rng,
    bench_collections
);
criterion_main!(benches);
