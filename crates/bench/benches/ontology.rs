//! Criterion micro-benchmarks for the ontology layer: flat-ASCII codec
//! throughput, full-datacenter DGSPL generation, shortlist ranking, and
//! causal rule inference — the operations the admin servers repeat every
//! 15 minutes across 215 hosts.

use intelliqos_bench::{black_box, criterion_group, criterion_main, Criterion};

use intelliqos_core::rulesets;
use intelliqos_ontology::dgspl::Dgspl;
use intelliqos_ontology::dlsp::{Dlsp, DlspService};
use intelliqos_ontology::flat::FlatDoc;
use intelliqos_ontology::rules::FactBase;

fn site_dlsps(n: usize) -> Vec<Dlsp> {
    (0..n)
        .map(|i| Dlsp {
            hostname: format!("db{i:03}"),
            generated_at_secs: 900,
            model: if i % 3 == 0 {
                "Sun-E10000".into()
            } else {
                "Sun-E4500".into()
            },
            os: "Solaris".into(),
            cpus: 8,
            ram_gb: 8,
            load_score: (i % 13) as f64 / 13.0,
            free_mem_mb: 2048.0,
            cpu_idle_pct: 60.0,
            users: (i % 7) as u32,
            location: "London".into(),
            site: "LDN-DC1".into(),
            services: vec![DlspService {
                name: format!("trades-db-{i:03}"),
                app_type: "db-oracle".into(),
                version: "8.1.7".into(),
                status: "running".into(),
                latency_ms: Some(120.0),
            }],
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let dlsps = site_dlsps(215);
    let dgspl = Dgspl::from_dlsps(&dlsps, 900, |_, cpus| cpus as f64 * 0.9);
    let text = dgspl.to_doc().to_text();
    c.bench_function("codec/dgspl_serialize_215", |b| {
        b.iter(|| black_box(dgspl.to_doc().to_text()))
    });
    c.bench_function("codec/dgspl_parse_215", |b| {
        b.iter(|| black_box(Dgspl::parse_text(&text).unwrap()))
    });
    let dlsp_text = dlsps[0].to_doc().to_text();
    c.bench_function("codec/dlsp_roundtrip", |b| {
        b.iter(|| {
            let d = Dlsp::parse_text(&dlsp_text).unwrap();
            black_box(d.to_doc().to_lines())
        })
    });
    c.bench_function("codec/flatdoc_parse", |b| {
        b.iter(|| black_box(FlatDoc::parse_text(&text).unwrap()))
    });
}

fn bench_dgspl(c: &mut Criterion) {
    let dlsps = site_dlsps(215);
    c.bench_function("dgspl/generate_from_215_dlsps", |b| {
        b.iter(|| black_box(Dgspl::from_dlsps(&dlsps, 900, |_, cpus| cpus as f64 * 0.9)))
    });
    let dgspl = Dgspl::from_dlsps(&dlsps, 900, |_, cpus| cpus as f64 * 0.9);
    c.bench_function("dgspl/shortlist_215", |b| {
        b.iter(|| black_box(dgspl.shortlist("db-oracle").len()))
    });
    c.bench_function("dgspl/replacement_shortlist_215", |b| {
        b.iter(|| {
            black_box(
                dgspl
                    .replacement_shortlist("db-oracle", "Sun-E4500", 7.2, 8)
                    .len(),
            )
        })
    });
}

fn bench_rules(c: &mut Criterion) {
    let engine = rulesets::service_rules();
    c.bench_function("rules/diagnose_crashed_service", |b| {
        b.iter(|| {
            let mut facts = FactBase::new();
            facts.assert_fact("probe", "refused");
            facts.assert_fact("procs_missing", 3.0);
            facts.assert_fact("cpu_util", 0.4);
            black_box(engine.diagnose(&mut facts))
        })
    });
    c.bench_function("rules/healthy_no_fire", |b| {
        b.iter(|| {
            let mut facts = FactBase::new();
            facts.assert_fact("probe", "ok");
            facts.assert_fact("procs_missing", 0.0);
            black_box(engine.infer(&mut facts).len())
        })
    });
    let hw = rulesets::hardware_rules();
    c.bench_function("rules/hardware_18_rules_infer", |b| {
        b.iter(|| {
            let mut facts = FactBase::new();
            for class in ["cpu", "memory", "board", "disk", "nic", "psu"] {
                facts.assert_fact(format!("degraded_{class}"), 0.0);
                facts.assert_fact(format!("failed_{class}"), 0.0);
            }
            facts.assert_fact("degraded_disk", 1.0);
            black_box(hw.infer(&mut facts).len())
        })
    });
}

criterion_group!(benches, bench_codec, bench_dgspl, bench_rules);
criterion_main!(benches);
