//! Criterion macro-benchmark: whole-world simulation throughput — one
//! simulated day of the small datacenter under each management mode.
//! This is the number that bounds how fast the figure harnesses run.

use intelliqos_bench::{black_box, criterion_group, criterion_main, Criterion};

use intelliqos_core::{ManagementMode, ScenarioConfig, World};
use intelliqos_simkern::{SimDuration, SimTime, DAY};

fn one_day(mode: ManagementMode) -> f64 {
    let mut cfg = ScenarioConfig::small(3, mode);
    cfg.horizon = SimDuration::from_days(1);
    let mut w = World::build(cfg);
    w.run_until(SimTime::from_secs(DAY));
    w.ledger.total_downtime_hours()
}

fn bench_world(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    g.bench_function("one_day_small_manual", |b| {
        b.iter(|| black_box(one_day(ManagementMode::ManualOps)))
    });
    g.bench_function("one_day_small_agents", |b| {
        b.iter(|| black_box(one_day(ManagementMode::Intelliagents)))
    });
    g.bench_function("build_small_world", |b| {
        b.iter(|| {
            let cfg = ScenarioConfig::small(3, ManagementMode::Intelliagents);
            black_box(World::build(cfg).now())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_world);
criterion_main!(benches);
