//! Criterion micro-benchmarks for the batch-scheduling path: candidate
//! snapshots, policy selection over 100 database servers, and the
//! dispatch loop itself.

use std::collections::BTreeMap;

use intelliqos_bench::{black_box, criterion_group, criterion_main, Criterion};

use intelliqos_cluster::hardware::ServerModel;
use intelliqos_cluster::ids::{ServerId, Site};
use intelliqos_cluster::server::Server;
use intelliqos_core::DgsplSelector;
use intelliqos_lsf::cluster::LsfCluster;
use intelliqos_lsf::job::{Job, JobId, JobKind, JobSpec};
use intelliqos_lsf::select::{LeastLoadedSelector, ManualStickySelector, ServerSelector};
use intelliqos_ontology::dgspl::{Dgspl, DgsplEntry};
use intelliqos_simkern::{SimRng, SimTime};

fn servers(n: u32) -> BTreeMap<ServerId, Server> {
    (0..n)
        .map(|i| {
            let model = if i % 10 < 7 {
                ServerModel::SunE4500
            } else {
                ServerModel::SunE10k
            };
            (
                ServerId(i),
                Server::new(
                    ServerId(i),
                    format!("db{i:03}"),
                    model.default_spec(),
                    Site::new("London", "LDN-DC1"),
                ),
            )
        })
        .collect()
}

fn dgspl(n: u32) -> Dgspl {
    Dgspl {
        generated_at_secs: 900,
        entries: (0..n)
            .map(|i| DgsplEntry {
                hostname: format!("db{i:03}"),
                server_type: "Sun-E4500".into(),
                os: "Solaris".into(),
                ram_gb: 8,
                cpus: 8,
                compute_power: 7.2,
                app_type: "db-oracle".into(),
                version: "8.1.7".into(),
                load: (i % 17) as f64 / 17.0,
                users: 0,
                location: "London".into(),
                site: "LDN".into(),
                service: format!("db-{i}"),
            })
            .collect(),
    }
}

fn bench_selectors(c: &mut Criterion) {
    let srv = servers(100);
    let lsf = LsfCluster::new(srv.keys().copied().collect(), 3);
    let cands = lsf.candidates(&srv, |_| true);
    let job = Job::new(
        JobId(0),
        JobSpec::defaults_for(JobKind::DataMining, "analyst07"),
        SimTime::ZERO,
    );
    c.bench_function("select/manual_sticky_100", |b| {
        let mut sel = ManualStickySelector::new(SimRng::stream(1, "m"));
        b.iter(|| black_box(sel.select(&job, &cands)))
    });
    c.bench_function("select/least_loaded_100", |b| {
        b.iter(|| black_box(LeastLoadedSelector.select(&job, &cands)))
    });
    c.bench_function("select/dgspl_shortlist_100", |b| {
        let host_ids: BTreeMap<String, ServerId> =
            srv.values().map(|s| (s.hostname.clone(), s.id)).collect();
        let mut sel = DgsplSelector::new(dgspl(100), host_ids, "db-oracle");
        b.iter(|| black_box(sel.select(&job, &cands)))
    });
}

fn bench_dispatch(c: &mut Criterion) {
    c.bench_function("dispatch/50_jobs_over_100_servers", |b| {
        b.iter(|| {
            let mut srv = servers(100);
            let mut lsf = LsfCluster::new(srv.keys().copied().collect(), 3);
            for i in 0..50 {
                lsf.submit(
                    JobSpec::defaults_for(JobKind::Report, format!("analyst{:02}", i % 20)),
                    SimTime::ZERO,
                );
            }
            let d =
                lsf.dispatch_pending(&mut LeastLoadedSelector, &mut srv, |_| true, SimTime::ZERO);
            black_box(d.len())
        })
    });
    c.bench_function("dispatch/candidates_snapshot_100", |b| {
        let srv = servers(100);
        let lsf = LsfCluster::new(srv.keys().copied().collect(), 3);
        b.iter(|| black_box(lsf.candidates(&srv, |_| true).len()))
    });
}

criterion_group!(benches, bench_selectors, bench_dispatch);
criterion_main!(benches);
