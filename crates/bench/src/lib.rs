//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation
//! section and prints the paper's reported values next to the measured
//! ones, so EXPERIMENTS.md rows can be filled mechanically. Common CLI:
//!
//! * `--seed N` — scenario seed (default 11);
//! * `--days N` — horizon override in days (default: one year for the
//!   headline figures, shorter for sweeps — see each binary);
//! * `--full` — force the full-scale, full-year configuration;
//! * `--profile` — run self-measured (metrics registry + wall-clock
//!   profiler), print the time-share table, and drop the evidence JSON
//!   under `results/evidence/`;
//! * `--trace` — run with the structured trace enabled and include it
//!   in the evidence JSON (combines with `--profile`);
//! * `--trace-file DIR` — flight-recorder mode: spill every trace event
//!   to chunked JSONL under `DIR/<mode>/` (implies `--trace`; nothing
//!   is evicted no matter how long the run);
//! * `--trace-cap N` / `--trace-cap tag=N` — in-memory trace capacity,
//!   globally or as a dedicated ring for one subsystem (repeatable);
//! * `--trace-only tag[,tag...]` — record only the named subsystems.
//! * `--evdb DIR` — after the evidence lands, rebuild the indexed
//!   evidence store at `DIR` (`evdb ingest` inline), so queries and
//!   indexed triage are available immediately after the run.
//! * `--scope all|service|client` — which failure classes burn the SLO
//!   error budget (default `service`: only actionable service faults
//!   page; `all` restores the pre-taxonomy behaviour).
//!
//! Instrumented runs also drop a schema-validated `slo_report`
//! (`<bin>_<label>_slo.json`) with per-service availability, downtime
//! budgets, MTTR, and burn-rate alerts.

pub mod microbench;

pub use microbench::{black_box, Bencher, Criterion};

use std::path::{Path, PathBuf};

use intelliqos_core::slo::SloScope;
use intelliqos_core::{run_export_json, ManagementMode, ProfileReport, ScenarioConfig, World};
use intelliqos_simkern::{SimDuration, SpillConfig, Subsystem, TraceOptions};

/// Paper reference values for Figure 2 (downtime hours by category).
/// Order matches `FaultCategory::ALL`:
/// mid-crash, human, performance, front-end, LSF, FW/NW,
/// completely-down, hardware.
pub const FIG2_YEAR1: [f64; 8] = [345.0, 60.0, 50.0, 40.0, 30.0, 10.0, 5.0, 10.0];

/// Figure 2 year-2 per-category hours as printed in the paper's text.
/// (They sum to 39 h although the paper claims a 31 h total — both
/// recorded; see DESIGN.md on the inconsistency.)
pub const FIG2_YEAR2: [f64; 8] = [8.0, 2.0, 9.0, 3.0, 1.0, 8.0, 2.0, 6.0];

/// Paper total downtime, year 1.
pub const FIG2_YEAR1_TOTAL: f64 = 550.0;
/// Paper total downtime, year 2 (as claimed).
pub const FIG2_YEAR2_TOTAL: f64 = 31.0;

/// Figure 3: BMC Patrol CPU % samples (8 half-hour samples at peak).
pub const FIG3_BMC_CPU: [f64; 8] = [0.33, 0.30, 0.50, 0.58, 0.47, 1.10, 0.20, 0.17];
/// Figure 3: intelliagent CPU % samples.
pub const FIG3_AGENT_CPU: [f64; 8] = [0.045, 0.047, 0.043, 0.045, 0.045, 0.046, 0.046, 0.042];

/// Figure 4: BMC Patrol memory samples (MB).
pub const FIG4_BMC_MEM: [f64; 8] = [32.0, 46.0, 45.0, 37.0, 50.0, 58.0, 38.0, 51.0];
/// Figure 4: intelliagent memory (MB), flat.
pub const FIG4_AGENT_MEM: f64 = 1.6;

/// In-text detection latencies under BMC Patrol (hours).
pub const DETECT_DAYTIME_H: f64 = 1.0;
/// Overnight detection latency (hours).
pub const DETECT_OVERNIGHT_H: f64 = 10.0;
/// Weekend detection latency (hours).
pub const DETECT_WEEKEND_H: f64 = 25.0;
/// Agent detection bound: the run frequency (minutes).
pub const DETECT_AGENT_MIN: f64 = 5.0;

/// In-text manual repair times (hours).
pub const MTTR_SIMPLE_H: f64 = 2.0;
/// Complex (multi-expert) manual repair (hours).
pub const MTTR_COMPLEX_H: f64 = 4.0;

/// Parsed common CLI options.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Scenario seed.
    pub seed: u64,
    /// Horizon in days.
    pub days: u64,
    /// Full-scale flag.
    pub full: bool,
    /// Self-measure the run (metrics + profiler) and emit evidence.
    pub profile: bool,
    /// Run with the structured trace enabled and emit evidence.
    pub trace: bool,
    /// Spill the trace to chunked JSONL under this directory (implies
    /// `trace`; paired runs write into `<dir>/<mode>` subdirectories).
    pub trace_file: Option<String>,
    /// Override the in-memory trace capacity (ring size, or spill tail).
    pub trace_cap: Option<usize>,
    /// Dedicated per-subsystem ring capacities (`--trace-cap tag=N`).
    pub trace_caps: Vec<(Subsystem, usize)>,
    /// Record only these subsystems (`--trace-only tag[,tag...]`).
    pub trace_only: Option<Vec<Subsystem>>,
    /// Rebuild the indexed evidence store here after the run
    /// (`--evdb DIR`).
    pub evdb: Option<String>,
    /// Which failure classes burn the error budget (`--scope`).
    pub scope: SloScope,
}

impl HarnessOpts {
    /// Parse `--seed`, `--days`, `--full`, `--profile`, `--trace`,
    /// `--trace-file DIR`, `--trace-cap N` / `--trace-cap tag=N`
    /// (repeatable), `--trace-only tag[,tag...]`, `--evdb DIR`, and
    /// `--scope all|service|client` from `std::env::args`, with the
    /// given default horizon.
    pub fn parse(default_days: u64) -> HarnessOpts {
        Self::parse_from(std::env::args().skip(1), default_days)
    }

    /// [`HarnessOpts::parse`] over an explicit argument list (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>, default_days: u64) -> HarnessOpts {
        let args: Vec<String> = args.into_iter().collect();
        let mut opts = HarnessOpts {
            seed: 11,
            days: default_days,
            full: false,
            profile: false,
            trace: false,
            trace_file: None,
            trace_cap: None,
            trace_caps: Vec::new(),
            trace_only: None,
            evdb: None,
            scope: SloScope::Service,
        };
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.seed);
                    i += 1;
                }
                "--days" => {
                    opts.days = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.days);
                    i += 1;
                }
                "--full" => opts.full = true,
                "--profile" => opts.profile = true,
                "--trace" => opts.trace = true,
                "--trace-file" => {
                    opts.trace_file = args.get(i + 1).cloned();
                    i += 1;
                }
                "--trace-cap" => {
                    if let Some(v) = args.get(i + 1) {
                        match v.split_once('=') {
                            Some((tag, n)) => {
                                if let (Some(sub), Ok(cap)) =
                                    (Subsystem::from_tag(tag), n.parse::<usize>())
                                {
                                    opts.trace_caps.push((sub, cap));
                                } else {
                                    eprintln!("ignoring bad --trace-cap value: {v}");
                                }
                            }
                            None => match v.parse::<usize>() {
                                Ok(cap) => opts.trace_cap = Some(cap),
                                Err(_) => eprintln!("ignoring bad --trace-cap value: {v}"),
                            },
                        }
                    }
                    i += 1;
                }
                "--trace-only" => {
                    if let Some(v) = args.get(i + 1) {
                        let subs: Vec<Subsystem> =
                            v.split(',').filter_map(Subsystem::from_tag).collect();
                        if subs.is_empty() {
                            eprintln!("ignoring bad --trace-only value: {v}");
                        } else {
                            opts.trace_only = Some(subs);
                        }
                    }
                    i += 1;
                }
                "--evdb" => {
                    opts.evdb = args.get(i + 1).cloned();
                    i += 1;
                }
                "--scope" => {
                    if let Some(v) = args.get(i + 1) {
                        // `abort` exists internally for the arithmetic
                        // cross-check but is not an operator-facing
                        // burn policy.
                        match SloScope::parse(v) {
                            Some(s) if s != SloScope::Abort => opts.scope = s,
                            _ => eprintln!("ignoring bad --scope value: {v} (all|service|client)"),
                        }
                    }
                    i += 1;
                }
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Whether this invocation runs traced at all (`--trace`, or any of
    /// the trace-shaping flags, which imply it).
    pub fn traced(&self) -> bool {
        self.trace
            || self.trace_file.is_some()
            || self.trace_cap.is_some()
            || !self.trace_caps.is_empty()
            || self.trace_only.is_some()
    }

    /// Whether this invocation should drop evidence JSON.
    pub fn wants_evidence(&self) -> bool {
        self.profile || self.traced()
    }

    /// The trace configuration for a run in `mode` (the spill directory
    /// gets a per-mode subdirectory so paired runs never collide).
    pub fn trace_options(&self, mode: ManagementMode) -> TraceOptions {
        let mut topts = TraceOptions::default();
        if let Some(cap) = self.trace_cap {
            topts.capacity = cap;
        }
        topts.per_subsystem = self.trace_caps.clone();
        topts.only = self.trace_only.clone();
        if let Some(dir) = &self.trace_file {
            let sub = format!("{mode:?}").to_lowercase();
            topts.spill = Some(SpillConfig::new(Path::new(dir).join(sub)));
        }
        topts
    }

    /// Apply the `--profile`/`--trace*` flags to a freshly built world.
    pub fn instrument(&self, mut world: World) -> World {
        if self.traced() {
            let topts = self.trace_options(world.cfg.mode);
            world = world.enable_trace_with(topts);
        }
        if self.profile {
            world = world.enable_profile();
        }
        world
    }

    /// The full financial-site configuration with this seed/horizon.
    pub fn site(&self, mode: ManagementMode) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::financial_site(self.seed, mode);
        if !self.full {
            cfg.horizon = SimDuration::from_days(self.days);
        }
        cfg.slo.burn_scope = self.scope;
        cfg
    }

    /// Scale factor from the simulated horizon to one year (for
    /// presenting short runs as annualised hours).
    pub fn annualize(&self) -> f64 {
        if self.full {
            1.0
        } else {
            365.0 / self.days as f64
        }
    }
}

/// Where the figure/table binaries drop their run evidence.
pub fn evidence_dir() -> PathBuf {
    Path::new("results").join("evidence")
}

/// Validate-then-write one evidence document. The JSON is parsed with
/// the in-tree reader before it touches disk, so a malformed document
/// is an error, never a published artifact.
pub fn write_evidence_json(bin: &str, label: &str, json: &str) -> Result<PathBuf, String> {
    intelliqos_core::jsonv::parse(json).map_err(|e| format!("{bin}_{label}: invalid JSON: {e}"))?;
    let dir = evidence_dir();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = dir.join(format!("{bin}_{label}.json"));
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Emit a finished world's evidence per the flags: print the profile
/// table on `--profile`, and write the full run export (ledger + trace
/// + profile) under [`evidence_dir`]. No-op without `--profile`/`--trace`.
pub fn emit_run_evidence(opts: &HarnessOpts, bin: &str, label: &str, world: &World) {
    if !opts.wants_evidence() {
        return;
    }
    if opts.profile {
        println!("\n--- profile: {label} ---");
        print!("{}", ProfileReport::from_world(world).render_table());
    }
    match write_evidence_json(bin, label, &run_export_json(world)) {
        Ok(path) => println!("evidence: {}", path.display()),
        Err(e) => {
            eprintln!("evidence FAILED: {e}");
            std::process::exit(1);
        }
    }
    let slo_json = world
        .slo
        .report(world.cfg.horizon)
        .to_json_with_run(world.cfg.seed, &format!("{:?}", world.cfg.mode));
    match write_evidence_json(bin, &format!("{label}_slo"), &slo_json) {
        Ok(path) => println!("evidence: {}", path.display()),
        Err(e) => {
            eprintln!("evidence FAILED: {e}");
            std::process::exit(1);
        }
    }
    if world.trace.sink_kind() == "spill" {
        println!(
            "trace: sink=spill total={} dropped={}",
            world.trace.total(),
            world.trace.dropped()
        );
    }
}

/// Build, instrument (per the flags), and run one scenario, returning
/// the finished world (the evidence carrier) together with its report.
pub fn run_world(
    opts: &HarnessOpts,
    cfg: ScenarioConfig,
) -> (World, intelliqos_core::ScenarioReport) {
    let mut world = opts.instrument(World::build(cfg));
    let report = world.run_to_end();
    (world, report)
}

/// Run the paired (manual, intelliagents) site scenario on parallel
/// threads, honouring the instrumentation flags, and emit both runs'
/// evidence under `<bin>_manual.json` / `<bin>_agents.json`.
pub fn run_paired_site(
    opts: &HarnessOpts,
    bin: &str,
) -> (
    intelliqos_core::ScenarioReport,
    intelliqos_core::ScenarioReport,
) {
    let ((manual_world, manual), (agents_world, agents)) = std::thread::scope(|s| {
        let m = s.spawn(|| run_world(opts, opts.site(ManagementMode::ManualOps)));
        let a = s.spawn(|| run_world(opts, opts.site(ManagementMode::Intelliagents)));
        // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
        (m.join().expect("manual run"), a.join().expect("agent run"))
    });
    emit_run_evidence(opts, bin, "manual", &manual_world);
    emit_run_evidence(opts, bin, "agents", &agents_world);
    maybe_build_evdb(opts);
    (manual, agents)
}

/// Rebuild the indexed evidence store (`--evdb DIR`) over the default
/// evidence directory, once the run's evidence is on disk. No-op
/// without the flag; a failed ingest is fatal — a run asked to index
/// its evidence must not exit 0 having silently skipped it.
pub fn maybe_build_evdb(opts: &HarnessOpts) {
    let Some(dir) = &opts.evdb else {
        return;
    };
    match intelliqos_evdb::Store::build(&evidence_dir(), Path::new(dir)) {
        Ok(report) => {
            for w in &report.warnings {
                eprintln!("evdb warning: {w}");
            }
            println!(
                "evdb: {} record(s) from {} source file(s) indexed at {dir} \
                 ({} segment(s), {} index file(s))",
                report.records,
                report.sources.len(),
                report.segments,
                report.index_files
            );
        }
        Err(e) => {
            eprintln!("evdb ingest FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// Render a float slice as a JSON array (non-finite values become 0,
/// matching the profile exporter's convention).
pub fn json_arr_f64(xs: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, x) in xs.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        if x.is_finite() {
            out.push_str(&format!("{x}"));
        } else {
            out.push('0');
        }
    }
    out.push(']');
    out
}

/// Evidence path for binaries whose artifact is a sampled model rather
/// than a world run (FIG3/FIG4): validate + write the given JSON.
/// No-op without `--profile`/`--trace`.
pub fn emit_sample_evidence(opts: &HarnessOpts, bin: &str, label: &str, json: &str) {
    if !opts.wants_evidence() {
        return;
    }
    match write_evidence_json(bin, label, json) {
        Ok(path) => println!("evidence: {}", path.display()),
        Err(e) => {
            eprintln!("evidence FAILED: {e}");
            std::process::exit(1);
        }
    }
}

/// Format one comparison row: label, paper value, measured value.
pub fn row(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    let ratio = if paper.abs() > 1e-9 {
        measured / paper
    } else {
        f64::NAN
    };
    format!(
        "{label:<18} paper {paper:>8.2}{unit:<4} measured {measured:>8.2}{unit:<4} (x{ratio:.2})"
    )
}

/// Pretty banner for a harness binary.
pub fn banner(id: &str, what: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_consistent() {
        let y1: f64 = FIG2_YEAR1.iter().sum();
        assert!((y1 - FIG2_YEAR1_TOTAL).abs() < 1e-9);
        // The paper's own year-2 inconsistency: categories sum to 39,
        // claimed total is 31. Both facts are preserved on purpose.
        let y2: f64 = FIG2_YEAR2.iter().sum();
        assert!((y2 - 39.0).abs() < 1e-9);
        assert!(y2 > FIG2_YEAR2_TOTAL);
    }

    #[test]
    fn annualize_scales() {
        let opts = HarnessOpts::parse_from(std::iter::empty::<String>(), 73);
        assert!((opts.annualize() - 5.0).abs() < 1e-9);
        let full = HarnessOpts { full: true, ..opts };
        assert_eq!(full.annualize(), 1.0);
    }

    #[test]
    fn trace_flags_parse_and_imply_tracing() {
        let args = [
            "--seed",
            "7",
            "--trace-file",
            "out/spill",
            "--trace-cap",
            "1024",
            "--trace-cap",
            "fault=4096",
            "--trace-only",
            "fault,agent",
            "--evdb",
            "out/evdb",
        ]
        .map(String::from);
        let opts = HarnessOpts::parse_from(args, 365);
        assert_eq!(opts.seed, 7);
        assert!(!opts.trace, "--trace itself was not passed");
        assert!(opts.traced(), "trace-shaping flags imply tracing");
        assert!(opts.wants_evidence());
        assert_eq!(opts.trace_file.as_deref(), Some("out/spill"));
        assert_eq!(opts.trace_cap, Some(1024));
        assert_eq!(opts.trace_caps, vec![(Subsystem::Fault, 4096)]);
        assert_eq!(
            opts.trace_only,
            Some(vec![Subsystem::Fault, Subsystem::Agent])
        );
        assert_eq!(opts.evdb.as_deref(), Some("out/evdb"));
        // Paired runs spill into per-mode subdirectories.
        let manual = opts.trace_options(ManagementMode::ManualOps);
        let agents = opts.trace_options(ManagementMode::Intelliagents);
        let (m, a) = (manual.spill.unwrap().dir, agents.spill.unwrap().dir);
        assert_ne!(m, a);
        assert!(m.ends_with("manualops"));
        assert!(a.ends_with("intelliagents"));
        assert_eq!(manual.capacity, 1024);
    }

    #[test]
    fn scope_flag_parses_and_reaches_the_scenario() {
        let opts = HarnessOpts::parse_from(std::iter::empty::<String>(), 7);
        assert_eq!(opts.scope, SloScope::Service, "actionable-only default");
        let args = ["--scope", "all"].map(String::from);
        let opts = HarnessOpts::parse_from(args, 7);
        assert_eq!(opts.scope, SloScope::All);
        let cfg = opts.site(ManagementMode::ManualOps);
        assert_eq!(cfg.slo.burn_scope, SloScope::All);
        // `abort` and garbage are rejected, keeping the default.
        for bad in ["abort", "everything"] {
            let args = ["--scope", bad].map(String::from);
            let opts = HarnessOpts::parse_from(args, 7);
            assert_eq!(opts.scope, SloScope::Service, "{bad} must not parse");
        }
    }

    #[test]
    fn row_formats() {
        let r = row("Mid-crash", 345.0, 322.0, "h");
        assert!(r.contains("345.00"));
        assert!(r.contains("322.00"));
        assert!(r.contains("x0.93"));
    }
}
