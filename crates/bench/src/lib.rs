//! Shared harness utilities for the figure/table reproduction binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation
//! section and prints the paper's reported values next to the measured
//! ones, so EXPERIMENTS.md rows can be filled mechanically. Common CLI:
//!
//! * `--seed N` — scenario seed (default 11);
//! * `--days N` — horizon override in days (default: one year for the
//!   headline figures, shorter for sweeps — see each binary);
//! * `--full` — force the full-scale, full-year configuration.

pub mod microbench;

pub use microbench::{black_box, Bencher, Criterion};

use intelliqos_core::{ManagementMode, ScenarioConfig};
use intelliqos_simkern::SimDuration;

/// Paper reference values for Figure 2 (downtime hours by category).
/// Order matches `FaultCategory::ALL`:
/// mid-crash, human, performance, front-end, LSF, FW/NW,
/// completely-down, hardware.
pub const FIG2_YEAR1: [f64; 8] = [345.0, 60.0, 50.0, 40.0, 30.0, 10.0, 5.0, 10.0];

/// Figure 2 year-2 per-category hours as printed in the paper's text.
/// (They sum to 39 h although the paper claims a 31 h total — both
/// recorded; see DESIGN.md on the inconsistency.)
pub const FIG2_YEAR2: [f64; 8] = [8.0, 2.0, 9.0, 3.0, 1.0, 8.0, 2.0, 6.0];

/// Paper total downtime, year 1.
pub const FIG2_YEAR1_TOTAL: f64 = 550.0;
/// Paper total downtime, year 2 (as claimed).
pub const FIG2_YEAR2_TOTAL: f64 = 31.0;

/// Figure 3: BMC Patrol CPU % samples (8 half-hour samples at peak).
pub const FIG3_BMC_CPU: [f64; 8] = [0.33, 0.30, 0.50, 0.58, 0.47, 1.10, 0.20, 0.17];
/// Figure 3: intelliagent CPU % samples.
pub const FIG3_AGENT_CPU: [f64; 8] = [0.045, 0.047, 0.043, 0.045, 0.045, 0.046, 0.046, 0.042];

/// Figure 4: BMC Patrol memory samples (MB).
pub const FIG4_BMC_MEM: [f64; 8] = [32.0, 46.0, 45.0, 37.0, 50.0, 58.0, 38.0, 51.0];
/// Figure 4: intelliagent memory (MB), flat.
pub const FIG4_AGENT_MEM: f64 = 1.6;

/// In-text detection latencies under BMC Patrol (hours).
pub const DETECT_DAYTIME_H: f64 = 1.0;
/// Overnight detection latency (hours).
pub const DETECT_OVERNIGHT_H: f64 = 10.0;
/// Weekend detection latency (hours).
pub const DETECT_WEEKEND_H: f64 = 25.0;
/// Agent detection bound: the run frequency (minutes).
pub const DETECT_AGENT_MIN: f64 = 5.0;

/// In-text manual repair times (hours).
pub const MTTR_SIMPLE_H: f64 = 2.0;
/// Complex (multi-expert) manual repair (hours).
pub const MTTR_COMPLEX_H: f64 = 4.0;

/// Parsed common CLI options.
#[derive(Debug, Clone, Copy)]
pub struct HarnessOpts {
    /// Scenario seed.
    pub seed: u64,
    /// Horizon in days.
    pub days: u64,
    /// Full-scale flag.
    pub full: bool,
}

impl HarnessOpts {
    /// Parse `--seed`, `--days`, `--full` from `std::env::args`, with
    /// the given default horizon.
    pub fn parse(default_days: u64) -> HarnessOpts {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = HarnessOpts {
            seed: 11,
            days: default_days,
            full: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    opts.seed = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.seed);
                    i += 1;
                }
                "--days" => {
                    opts.days = args
                        .get(i + 1)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(opts.days);
                    i += 1;
                }
                "--full" => opts.full = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// The full financial-site configuration with this seed/horizon.
    pub fn site(&self, mode: ManagementMode) -> ScenarioConfig {
        let mut cfg = ScenarioConfig::financial_site(self.seed, mode);
        if !self.full {
            cfg.horizon = SimDuration::from_days(self.days);
        }
        cfg
    }

    /// Scale factor from the simulated horizon to one year (for
    /// presenting short runs as annualised hours).
    pub fn annualize(&self) -> f64 {
        if self.full {
            1.0
        } else {
            365.0 / self.days as f64
        }
    }
}

/// Format one comparison row: label, paper value, measured value.
pub fn row(label: &str, paper: f64, measured: f64, unit: &str) -> String {
    let ratio = if paper.abs() > 1e-9 {
        measured / paper
    } else {
        f64::NAN
    };
    format!(
        "{label:<18} paper {paper:>8.2}{unit:<4} measured {measured:>8.2}{unit:<4} (x{ratio:.2})"
    )
}

/// Pretty banner for a harness binary.
pub fn banner(id: &str, what: &str) {
    println!("================================================================");
    println!("{id}: {what}");
    println!("================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_consistent() {
        let y1: f64 = FIG2_YEAR1.iter().sum();
        assert!((y1 - FIG2_YEAR1_TOTAL).abs() < 1e-9);
        // The paper's own year-2 inconsistency: categories sum to 39,
        // claimed total is 31. Both facts are preserved on purpose.
        let y2: f64 = FIG2_YEAR2.iter().sum();
        assert!((y2 - 39.0).abs() < 1e-9);
        assert!(y2 > FIG2_YEAR2_TOTAL);
    }

    #[test]
    fn annualize_scales() {
        let opts = HarnessOpts {
            seed: 1,
            days: 73,
            full: false,
        };
        assert!((opts.annualize() - 5.0).abs() < 1e-9);
        let full = HarnessOpts {
            seed: 1,
            days: 73,
            full: true,
        };
        assert_eq!(full.annualize(), 1.0);
    }

    #[test]
    fn row_formats() {
        let r = row("Mid-crash", 345.0, 322.0, "h");
        assert!(r.contains("345.00"));
        assert!(r.contains("322.00"));
        assert!(r.contains("x0.93"));
    }
}
