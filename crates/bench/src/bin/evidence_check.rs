//! EVIDENCE-CHECK — validate evidence JSON documents.
//!
//! CI's smoke gate: after a figure binary runs with `--profile`
//! (`--trace`), the documents it dropped under `results/evidence/` must
//! exist, parse with the in-tree JSON reader, and — when they are world
//! run exports — carry an *enabled* profile with per-subsystem time
//! shares and per-event-kind counts. Sample-evidence documents (FIG3/
//! FIG4) only need to parse.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin evidence_check [PATH ...] [--evdb DIR ...]
//! ```
//!
//! With no arguments, checks every `*.json` under `results/evidence/`
//! plus every trace spill directory (any subdirectory holding a
//! `manifest.json`) — a truncated final chunk or a record-count
//! mismatch is a failure. Taxonomy-era documents face two extra gates:
//! an SLO report carrying `burn_scope` must have its per-scope columns
//! close exactly (`all == service + client + abort` for every integer
//! column, per service and fleet-wide), and a run export whose ledger
//! is marked `"taxonomy": 1` must classify every incident with a
//! closed-world `failure_class` whose `is_actionable` bit matches.
//! Pre-taxonomy documents (no marker, no `burn_scope`) still validate
//! under the original rules, so old evidence keeps passing unmodified. Directory arguments are validated as spill
//! directories; a directory argument under which no spill
//! `manifest.json` exists is itself a failure (never a silent fallback
//! to the default sweep). `--evdb DIR` validates an indexed evidence
//! store built by `evdb ingest`: segment headers and row counts against
//! the store manifest, index references in bounds, and the recorded
//! source files still present with the ingested byte sizes (a stale
//! store is a failure). Exit status: 0 when every document checks out;
//! 1 otherwise.

use std::path::PathBuf;

use intelliqos_bench::evidence_dir;
use intelliqos_core::jsonv::{parse, JsonValue};
use intelliqos_evdb::Store;

/// Structural checks on a run export's `profile` section. Returns the
/// list of complaints (empty = good).
fn check_profile(profile: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    if profile.get("enabled").and_then(|v| v.as_bool()) != Some(true) {
        bad.push("profile.enabled is not true".to_string());
        return bad; // a disabled profile is legitimately empty
    }
    match profile.get("events_processed").and_then(|v| v.as_u64()) {
        Some(n) if n > 0 => {}
        _ => bad.push("profile.events_processed missing or zero".to_string()),
    }
    match profile.get("subsystems").and_then(|v| v.as_arr()) {
        Some(subs) if !subs.is_empty() => {
            let total: f64 = subs
                .iter()
                .filter_map(|s| s.get("share").and_then(|v| v.as_f64()))
                .sum();
            if (total - 1.0).abs() > 1e-6 {
                bad.push(format!("subsystem shares sum to {total}, not 1"));
            }
        }
        _ => bad.push("profile.subsystems missing or empty".to_string()),
    }
    match profile.get("kinds").and_then(|v| v.as_arr()) {
        Some(kinds) if !kinds.is_empty() => {
            for k in kinds {
                let named = k.get("kind").and_then(|v| v.as_str()).is_some();
                let counted = k
                    .get("count")
                    .and_then(|v| v.as_u64())
                    .is_some_and(|c| c > 0);
                let timed = k
                    .get("ns")
                    .and_then(|v| v.get("p99_ns"))
                    .and_then(|v| v.as_u64())
                    .is_some();
                if !(named && counted && timed) {
                    bad.push("kinds entry lacks kind/count/ns percentiles".to_string());
                    break;
                }
            }
        }
        _ => bad.push("profile.kinds missing or empty".to_string()),
    }
    bad
}

/// Structural checks on an `ontology_check` report document. Returns
/// the list of complaints (empty = good).
fn check_ontology_report(doc: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    let scenarios = match doc.get("scenarios").and_then(|v| v.as_arr()) {
        Some(s) if !s.is_empty() => s,
        _ => {
            bad.push("scenarios missing or empty".to_string());
            return bad;
        }
    };
    let mut per_scenario_total = 0u64;
    for s in scenarios {
        if s.get("scenario").and_then(|v| v.as_str()).is_none() {
            bad.push("scenarios entry lacks a scenario name".to_string());
        }
        match s.get("findings").and_then(|v| v.as_u64()) {
            Some(n) => per_scenario_total += n,
            None => bad.push("scenarios entry lacks a findings count".to_string()),
        }
    }
    let findings = doc.get("findings").and_then(|v| v.as_u64());
    if findings != Some(per_scenario_total) {
        bad.push(format!(
            "findings total {findings:?} disagrees with per-scenario sum {per_scenario_total}"
        ));
    }
    match doc.get("diagnostics").and_then(|v| v.as_arr()) {
        Some(diags) => {
            if Some(diags.len() as u64) != findings {
                bad.push(format!(
                    "diagnostics array has {} entries, findings says {findings:?}",
                    diags.len()
                ));
            }
            for d in diags {
                let complete = d.get("rule").and_then(|v| v.as_str()).is_some()
                    && d.get("severity").and_then(|v| v.as_str()).is_some()
                    && d.get("location").and_then(|v| v.as_str()).is_some()
                    && d.get("message").and_then(|v| v.as_str()).is_some();
                if !complete {
                    bad.push("diagnostics entry lacks rule/severity/location/message".to_string());
                    break;
                }
            }
        }
        None => bad.push("diagnostics array missing".to_string()),
    }
    bad
}

/// Structural checks on an `slo` report document. Returns the list of
/// complaints (empty = good).
fn check_slo_report(doc: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    for key in ["target", "fleet_availability"] {
        match doc.get(key).and_then(|v| v.as_f64()) {
            Some(x) if (0.0..=1.0).contains(&x) => {}
            other => bad.push(format!("{key} missing or outside [0,1]: {other:?}")),
        }
    }
    let horizon = doc.get("horizon_secs").and_then(|v| v.as_u64());
    let fleet = doc.get("fleet_size").and_then(|v| v.as_u64());
    if horizon.is_none_or(|h| h == 0) {
        bad.push("horizon_secs missing or zero".to_string());
    }
    if fleet.is_none_or(|f| f == 0) {
        bad.push("fleet_size missing or zero".to_string());
    }
    let Some(services) = doc.get("services").and_then(|v| v.as_arr()) else {
        bad.push("services array missing".to_string());
        return bad;
    };
    let mut downtime_sum = 0u64;
    let mut alert_sum = 0u64;
    for s in services {
        let named = s.get("service").and_then(|v| v.as_str()).is_some();
        let avail = s.get("availability").and_then(|v| v.as_f64());
        let down = s.get("downtime_secs").and_then(|v| v.as_u64());
        let budgeted = s.get("budget_remaining_secs").and_then(|v| v.as_f64());
        let mttr = s.get("mttr_secs").and_then(|v| v.as_f64());
        if !named || down.is_none() || budgeted.is_none() || mttr.is_none() {
            bad.push("services entry lacks service/downtime/budget/mttr".to_string());
            break;
        }
        if avail.is_none_or(|a| !(0.0..=1.0).contains(&a)) {
            bad.push(format!("service availability outside [0,1]: {avail:?}"));
        }
        downtime_sum += down.unwrap_or(0);
        alert_sum += s.get("burn_alerts").and_then(|v| v.as_u64()).unwrap_or(0);
    }
    if doc.get("total_downtime_secs").and_then(|v| v.as_u64()) != Some(downtime_sum) {
        bad.push(format!(
            "total_downtime_secs disagrees with per-service sum {downtime_sum}"
        ));
    }
    // Fleet availability must be consistent with the recorded downtime.
    if let (Some(avail), Some(h), Some(f)) = (
        doc.get("fleet_availability").and_then(|v| v.as_f64()),
        horizon,
        fleet,
    ) {
        if h > 0 && f > 0 {
            let expect = (1.0 - downtime_sum as f64 / (h * f) as f64).clamp(0.0, 1.0);
            if (avail - expect).abs() > 1e-6 {
                bad.push(format!(
                    "fleet_availability {avail} inconsistent with downtime (expect {expect:.8})"
                ));
            }
        }
    }
    match doc.get("alerts").and_then(|v| v.as_arr()) {
        Some(alerts) => {
            if alerts.len() as u64 != alert_sum {
                bad.push(format!(
                    "alerts array has {} entries, per-service burn_alerts sum to {alert_sum}",
                    alerts.len()
                ));
            }
            for a in alerts {
                let complete = a.get("at").and_then(|v| v.as_u64()).is_some()
                    && a.get("service").and_then(|v| v.as_str()).is_some()
                    && a.get("burn_rate").and_then(|v| v.as_f64()).is_some();
                if !complete {
                    bad.push("alerts entry lacks at/service/burn_rate".to_string());
                    break;
                }
            }
        }
        None => bad.push("alerts array missing".to_string()),
    }
    bad
}

const FAILURE_CLASSES: [&str; 3] = ["service-fault", "client-workload", "transient-abort"];
const SCOPES: [&str; 4] = ["all", "service", "client", "abort"];

/// Per-scope arithmetic on one `scopes` object: every integer column's
/// `all` row must equal the sum of the three class rows. Returns the
/// summed columns as (incidents, downtime_secs) for the caller's own
/// cross-checks.
fn check_scope_arithmetic(scopes: &JsonValue, who: &str, bad: &mut Vec<String>) -> (u64, u64) {
    let col = |scope: &str, key: &str| -> u64 {
        scopes
            .get(scope)
            .and_then(|s| s.get(key))
            .and_then(|v| v.as_u64())
            .unwrap_or(0)
    };
    for scope in SCOPES {
        if scopes.get(scope).is_none() {
            bad.push(format!("{who}: scopes lacks the {scope:?} row"));
            return (0, 0);
        }
    }
    for key in ["incidents", "downtime_secs", "repair_secs"] {
        let parts = col("service", key) + col("client", key) + col("abort", key);
        if col("all", key) != parts {
            bad.push(format!(
                "{who}: scope {key} does not close: all {} != service+client+abort {parts}",
                col("all", key)
            ));
        }
    }
    (col("all", "incidents"), col("all", "downtime_secs"))
}

/// Taxonomy checks on an SLO report that declares a `burn_scope`.
/// Pre-taxonomy reports (no such key) skip this entirely.
fn check_slo_scopes(doc: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    let Some(scope) = doc.get("burn_scope").and_then(|v| v.as_str()) else {
        return bad;
    };
    if !SCOPES.contains(&scope) {
        bad.push(format!("burn_scope {scope:?} is not a failure scope"));
    }
    match doc.get("scope_downtime_secs") {
        Some(sd) => {
            let get = |s: &str| sd.get(s).and_then(|v| v.as_u64()).unwrap_or(0);
            let parts = get("service") + get("client") + get("abort");
            if get("all") != parts {
                bad.push(format!(
                    "scope_downtime_secs does not close: all {} != service+client+abort {parts}",
                    get("all")
                ));
            }
            if doc.get("total_downtime_secs").and_then(|v| v.as_u64()) != Some(get("all")) {
                bad.push("total_downtime_secs disagrees with scope_downtime_secs.all".to_string());
            }
        }
        None => bad.push("burn_scope present but scope_downtime_secs missing".to_string()),
    }
    for s in doc.get("services").and_then(|v| v.as_arr()).unwrap_or(&[]) {
        let name = s.get("service").and_then(|v| v.as_str()).unwrap_or("?");
        match s.get("target").and_then(|v| v.as_f64()) {
            Some(t) if (0.0..=1.0).contains(&t) => {}
            other => bad.push(format!(
                "{name}: target missing or outside [0,1]: {other:?}"
            )),
        }
        let Some(scopes) = s.get("scopes") else {
            bad.push(format!("{name}: taxonomy-era row lacks a scopes object"));
            continue;
        };
        let (all_inc, all_down) = check_scope_arithmetic(scopes, name, &mut bad);
        // The legacy columns are defined as the all-scope view.
        if s.get("incidents").and_then(|v| v.as_u64()) != Some(all_inc) {
            bad.push(format!("{name}: legacy incidents != scopes.all.incidents"));
        }
        if s.get("downtime_secs").and_then(|v| v.as_u64()) != Some(all_down) {
            bad.push(format!(
                "{name}: legacy downtime_secs != scopes.all.downtime_secs"
            ));
        }
    }
    bad
}

/// Taxonomy checks on a run export's ledger: once the export is marked
/// `"taxonomy": 1`, an unclassified or inconsistently classified
/// incident is a failure. Unmarked (pre-taxonomy) ledgers pass — their
/// classification is backfilled at evdb ingest instead.
fn check_ledger_taxonomy(ledger: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    if ledger.get("taxonomy").and_then(|v| v.as_u64()) != Some(1) {
        return bad;
    }
    for inc in ledger
        .get("incidents")
        .and_then(|v| v.as_arr())
        .unwrap_or(&[])
    {
        let id = inc.get("id").and_then(|v| v.as_u64()).unwrap_or(0);
        let class = inc.get("failure_class").and_then(|v| v.as_str());
        match class {
            Some(c) if FAILURE_CLASSES.contains(&c) => {
                let expect = c == "service-fault";
                if inc.get("is_actionable").and_then(|v| v.as_bool()) != Some(expect) {
                    bad.push(format!(
                        "incident {id}: is_actionable disagrees with class {c:?}"
                    ));
                }
            }
            Some(c) => bad.push(format!(
                "incident {id}: failure_class {c:?} is not in the closed world"
            )),
            None => bad.push(format!(
                "incident {id}: unclassified in a taxonomy-marked export"
            )),
        }
    }
    bad
}

fn check_file(path: &PathBuf) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return vec![format!("invalid JSON: {e}")],
    };
    // Ontology reports announce themselves; run exports carry a
    // profile section; sample evidence needs only to parse.
    if doc.get("report").and_then(|v| v.as_str()) == Some("ontology_check") {
        return check_ontology_report(&doc);
    }
    if doc.get("report").and_then(|v| v.as_str()) == Some("slo") {
        let mut bad = check_slo_report(&doc);
        bad.extend(check_slo_scopes(&doc));
        return bad;
    }
    let mut bad = match doc.get("profile") {
        Some(profile) => check_profile(profile),
        None => Vec::new(),
    };
    if let Some(ledger) = doc.get("ledger") {
        bad.extend(check_ledger_taxonomy(ledger));
    }
    bad
}

/// Recursively collect every directory under `dir` (inclusive) that
/// holds a trace-spill `manifest.json`.
fn find_spill_dirs(dir: &std::path::Path, out: &mut Vec<PathBuf>) {
    if dir.join("manifest.json").is_file() {
        out.push(dir.to_path_buf());
    }
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let p = e.path();
            if p.is_dir() {
                find_spill_dirs(&p, out);
            }
        }
    }
}

fn main() {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut args: Vec<PathBuf> = Vec::new();
    let mut evdb_dirs: Vec<PathBuf> = Vec::new();
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        if a == "--evdb" {
            match it.next() {
                Some(dir) => evdb_dirs.push(PathBuf::from(dir)),
                None => {
                    eprintln!("--evdb needs a directory");
                    std::process::exit(2);
                }
            }
        } else {
            args.push(PathBuf::from(a));
        }
    }

    let mut failures = 0usize;
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut spill_dirs: Vec<PathBuf> = Vec::new();
    let explicit = !args.is_empty();
    for a in args {
        if a.is_dir() {
            let before = spill_dirs.len();
            find_spill_dirs(&a, &mut spill_dirs);
            if spill_dirs.len() == before {
                failures += 1;
                println!(
                    "FAIL {}: no spill manifest.json under directory",
                    a.display()
                );
            }
        } else {
            paths.push(a);
        }
    }
    if !explicit && evdb_dirs.is_empty() {
        let dir = evidence_dir();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "json") {
                    paths.push(p);
                } else if p.is_dir() {
                    find_spill_dirs(&p, &mut spill_dirs);
                }
            }
        }
        paths.sort();
        if paths.is_empty() {
            eprintln!("no evidence documents under {}", dir.display());
            std::process::exit(1);
        }
    }
    spill_dirs.sort();

    for path in &paths {
        let bad = check_file(path);
        if bad.is_empty() {
            println!("ok   {}", path.display());
        } else {
            failures += 1;
            for b in &bad {
                println!("FAIL {}: {b}", path.display());
            }
        }
    }
    for dir in &spill_dirs {
        let bad = intelliqos_core::validate_spill_dir(dir);
        if bad.is_empty() {
            println!("ok   {} (spill)", dir.display());
        } else {
            failures += 1;
            for b in &bad {
                println!("FAIL {}: {b}", dir.display());
            }
        }
    }
    for dir in &evdb_dirs {
        let bad = match Store::open(dir) {
            Ok(store) => store.validate(),
            Err(e) => vec![e],
        };
        if bad.is_empty() {
            println!("ok   {} (evdb store)", dir.display());
        } else {
            failures += 1;
            for b in &bad {
                println!("FAIL {}: {b}", dir.display());
            }
        }
    }
    println!(
        "{} document(s), {} spill dir(s), {} evdb store(s), {failures} failure(s)",
        paths.len(),
        spill_dirs.len(),
        evdb_dirs.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
