//! EVIDENCE-CHECK — validate evidence JSON documents.
//!
//! CI's smoke gate: after a figure binary runs with `--profile`
//! (`--trace`), the documents it dropped under `results/evidence/` must
//! exist, parse with the in-tree JSON reader, and — when they are world
//! run exports — carry an *enabled* profile with per-subsystem time
//! shares and per-event-kind counts. Sample-evidence documents (FIG3/
//! FIG4) only need to parse.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin evidence_check [PATH ...]
//! ```
//!
//! With no arguments, checks every `*.json` under `results/evidence/`.
//! Exit status: 0 when every document checks out; 1 otherwise.

use std::path::PathBuf;

use intelliqos_bench::evidence_dir;
use intelliqos_core::jsonv::{parse, JsonValue};

/// Structural checks on a run export's `profile` section. Returns the
/// list of complaints (empty = good).
fn check_profile(profile: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    if profile.get("enabled").and_then(|v| v.as_bool()) != Some(true) {
        bad.push("profile.enabled is not true".to_string());
        return bad; // a disabled profile is legitimately empty
    }
    match profile.get("events_processed").and_then(|v| v.as_u64()) {
        Some(n) if n > 0 => {}
        _ => bad.push("profile.events_processed missing or zero".to_string()),
    }
    match profile.get("subsystems").and_then(|v| v.as_arr()) {
        Some(subs) if !subs.is_empty() => {
            let total: f64 = subs
                .iter()
                .filter_map(|s| s.get("share").and_then(|v| v.as_f64()))
                .sum();
            if (total - 1.0).abs() > 1e-6 {
                bad.push(format!("subsystem shares sum to {total}, not 1"));
            }
        }
        _ => bad.push("profile.subsystems missing or empty".to_string()),
    }
    match profile.get("kinds").and_then(|v| v.as_arr()) {
        Some(kinds) if !kinds.is_empty() => {
            for k in kinds {
                let named = k.get("kind").and_then(|v| v.as_str()).is_some();
                let counted = k
                    .get("count")
                    .and_then(|v| v.as_u64())
                    .is_some_and(|c| c > 0);
                let timed = k
                    .get("ns")
                    .and_then(|v| v.get("p99_ns"))
                    .and_then(|v| v.as_u64())
                    .is_some();
                if !(named && counted && timed) {
                    bad.push("kinds entry lacks kind/count/ns percentiles".to_string());
                    break;
                }
            }
        }
        _ => bad.push("profile.kinds missing or empty".to_string()),
    }
    bad
}

/// Structural checks on an `ontology_check` report document. Returns
/// the list of complaints (empty = good).
fn check_ontology_report(doc: &JsonValue) -> Vec<String> {
    let mut bad = Vec::new();
    let scenarios = match doc.get("scenarios").and_then(|v| v.as_arr()) {
        Some(s) if !s.is_empty() => s,
        _ => {
            bad.push("scenarios missing or empty".to_string());
            return bad;
        }
    };
    let mut per_scenario_total = 0u64;
    for s in scenarios {
        if s.get("scenario").and_then(|v| v.as_str()).is_none() {
            bad.push("scenarios entry lacks a scenario name".to_string());
        }
        match s.get("findings").and_then(|v| v.as_u64()) {
            Some(n) => per_scenario_total += n,
            None => bad.push("scenarios entry lacks a findings count".to_string()),
        }
    }
    let findings = doc.get("findings").and_then(|v| v.as_u64());
    if findings != Some(per_scenario_total) {
        bad.push(format!(
            "findings total {findings:?} disagrees with per-scenario sum {per_scenario_total}"
        ));
    }
    match doc.get("diagnostics").and_then(|v| v.as_arr()) {
        Some(diags) => {
            if Some(diags.len() as u64) != findings {
                bad.push(format!(
                    "diagnostics array has {} entries, findings says {findings:?}",
                    diags.len()
                ));
            }
            for d in diags {
                let complete = d.get("rule").and_then(|v| v.as_str()).is_some()
                    && d.get("severity").and_then(|v| v.as_str()).is_some()
                    && d.get("location").and_then(|v| v.as_str()).is_some()
                    && d.get("message").and_then(|v| v.as_str()).is_some();
                if !complete {
                    bad.push("diagnostics entry lacks rule/severity/location/message".to_string());
                    break;
                }
            }
        }
        None => bad.push("diagnostics array missing".to_string()),
    }
    bad
}

fn check_file(path: &PathBuf) -> Vec<String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return vec![format!("unreadable: {e}")],
    };
    let doc = match parse(&text) {
        Ok(d) => d,
        Err(e) => return vec![format!("invalid JSON: {e}")],
    };
    // Ontology reports announce themselves; run exports carry a
    // profile section; sample evidence needs only to parse.
    if doc.get("report").and_then(|v| v.as_str()) == Some("ontology_check") {
        return check_ontology_report(&doc);
    }
    match doc.get("profile") {
        Some(profile) => check_profile(profile),
        None => Vec::new(),
    }
}

fn main() {
    let mut paths: Vec<PathBuf> = std::env::args().skip(1).map(PathBuf::from).collect();
    if paths.is_empty() {
        let dir = evidence_dir();
        if let Ok(entries) = std::fs::read_dir(&dir) {
            for e in entries.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "json") {
                    paths.push(p);
                }
            }
        }
        paths.sort();
        if paths.is_empty() {
            eprintln!("no evidence documents under {}", dir.display());
            std::process::exit(1);
        }
    }

    let mut failures = 0usize;
    for path in &paths {
        let bad = check_file(path);
        if bad.is_empty() {
            println!("ok   {}", path.display());
        } else {
            failures += 1;
            for b in &bad {
                println!("FAIL {}: {b}", path.display());
            }
        }
    }
    println!("{} document(s), {failures} failure(s)", paths.len());
    if failures > 0 {
        std::process::exit(1);
    }
}
