//! ABL-PARTS — ablation of the five agent parts.
//!
//! §3.3: "Each of the five intelliagent parts can get activated or
//! deactivated either during installation or subsequently." This
//! harness runs the same year with parts progressively disabled to show
//! what each stage buys: monitoring off (blind), diagnosing off (sees
//! but can't conclude), healing off (detect-and-page only), and the
//! full pipeline.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin abl_agent_parts [--seed N] [--days N]
//! ```

use intelliqos_bench::{banner, emit_run_evidence, maybe_build_evdb, run_world, HarnessOpts};
use intelliqos_core::{AgentParts, ManagementMode, ScenarioReport, World};

fn main() {
    let opts = HarnessOpts::parse(21);
    banner("ABL-PARTS", "which of the five agent parts buys what");
    println!("seed={} horizon={}d per variant\n", opts.seed, opts.days);

    let variants: Vec<(&str, &str, AgentParts)> = vec![
        ("all parts", "all-parts", AgentParts::all()),
        (
            "healing off",
            "healing-off",
            AgentParts {
                healing: false,
                ..AgentParts::all()
            },
        ),
        (
            "diagnosing off",
            "diagnosing-off",
            AgentParts {
                diagnosing: false,
                healing: false,
                ..AgentParts::all()
            },
        ),
        (
            "monitoring off",
            "monitoring-off",
            AgentParts {
                monitoring: false,
                ..AgentParts::all()
            },
        ),
    ];

    let mut runs: Vec<(&str, &str, World, ScenarioReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = variants
            .iter()
            .map(|(name, label, parts)| {
                let mut cfg = opts.site(ManagementMode::Intelliagents);
                cfg.agent_parts = *parts;
                let (name, label) = (*name, *label);
                let opts = opts.clone();
                s.spawn(move || {
                    let (world, report) = run_world(&opts, cfg);
                    (name, label, world, report)
                })
            })
            .collect();
        handles
            .into_iter()
            // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            .map(|h| h.join().expect("run"))
            .collect()
    });
    // Manual baseline for reference.
    {
        let (world, report) = run_world(&opts, opts.site(ManagementMode::ManualOps));
        runs.push(("(manual ops)", "manual", world, report));
    }
    for (_, label, world, _) in &runs {
        emit_run_evidence(&opts, "abl_agent_parts", label, world);
    }
    maybe_build_evdb(&opts);
    let results: Vec<(&str, &ScenarioReport)> = runs.iter().map(|(n, _, _, r)| (*n, r)).collect();

    println!(
        "{:<16} {:>12} {:>10} {:>10} {:>14}",
        "variant", "downtime h", "incidents", "auto-fix", "notifications"
    );
    for (name, r) in &results {
        let auto: u64 = r.categories.values().map(|t| t.auto_repaired).sum();
        println!(
            "{:<16} {:>12.1} {:>10} {:>10} {:>14}",
            name, r.total_downtime_hours, r.incidents, auto, r.notifications
        );
    }
    println!(
        "\nreading: healing is where the downtime reduction lives; with it\n\
         off, fast detection still helps (humans get paged within one\n\
         sweep instead of the 1–25 h console windows), and with\n\
         monitoring off the agent layer contributes nothing at all."
    );
}
