//! FIG2 — Figure 2: downtime hours by error category, the year before
//! vs the year after intelliagents.
//!
//! Runs the full 215-server financial site for one simulated year twice
//! on the **same fault and workload tapes** (same seed): once under
//! manual operations (BMC-Patrol-style notify-only monitoring + human
//! repair), once with the intelliagent layer. The two runs execute on
//! parallel threads.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin fig2_downtime \
//!     [--seed N] [--days N | --full] [--profile] [--trace]
//! ```
//!
//! With `--profile`/`--trace`, each run's self-measurement evidence
//! (ledger + trace + profile) lands under `results/evidence/`.

use intelliqos_bench::{
    banner, emit_run_evidence, maybe_build_evdb, row, HarnessOpts, FIG2_YEAR1, FIG2_YEAR1_TOTAL,
    FIG2_YEAR2, FIG2_YEAR2_TOTAL,
};
use intelliqos_cluster::faults::FaultCategory;
use intelliqos_core::{ManagementMode, World};

fn main() {
    let opts = HarnessOpts::parse(365);
    banner(
        "FIG2",
        "downtime by error category, year before vs year after (paired tapes)",
    );
    println!("seed={} horizon={}d\n", opts.seed, opts.days);

    // Both years on parallel threads — the simulations are independent.
    let run = |mode| {
        let mut world = opts.instrument(World::build(opts.site(mode)));
        let report = world.run_to_end();
        (world, report)
    };
    let ((before_world, before), (after_world, after)) = std::thread::scope(|s| {
        let b = s.spawn(|| run(ManagementMode::ManualOps));
        let a = s.spawn(|| run(ManagementMode::Intelliagents));
        // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
        (b.join().expect("manual run"), a.join().expect("agent run"))
    });

    let k = opts.annualize();
    println!("--- year 1 (manual operations) ---");
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        println!(
            "{}",
            row(cat.label(), FIG2_YEAR1[i], before.hours(*cat) * k, "h")
        );
    }
    println!(
        "{}\n",
        row(
            "TOTAL",
            FIG2_YEAR1_TOTAL,
            before.total_downtime_hours * k,
            "h"
        )
    );

    println!("--- year 2 (intelliagents) ---");
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        println!(
            "{}",
            row(cat.label(), FIG2_YEAR2[i], after.hours(*cat) * k, "h")
        );
    }
    println!(
        "{}",
        row(
            "TOTAL (claimed)",
            FIG2_YEAR2_TOTAL,
            after.total_downtime_hours * k,
            "h"
        )
    );
    println!("(note: the paper's year-2 categories sum to 39 h against its claimed 31 h total)\n");

    let reduction = before.total_downtime_hours / after.total_downtime_hours.max(0.01);
    let paper_reduction = FIG2_YEAR1_TOTAL / FIG2_YEAR2_TOTAL;
    println!("--- headline ---");
    println!(
        "{}",
        row("downtime reduction", paper_reduction, reduction, "x")
    );
    println!(
        "db mid-job crashes: {} (manual) vs {} (agents); auto-repaired incidents: {}",
        before.db_crashes,
        after.db_crashes,
        after
            .categories
            .values()
            .map(|t| t.auto_repaired)
            .sum::<u64>()
    );
    println!(
        "incidents: {} vs {}; open at horizon: {} vs {}",
        before.incidents, after.incidents, before.open_incidents, after.open_incidents
    );

    emit_run_evidence(&opts, "fig2_downtime", "manual", &before_world);
    emit_run_evidence(&opts, "fig2_downtime", "agents", &after_world);
    maybe_build_evdb(&opts);
}
