//! FIG2 — Figure 2: downtime hours by error category, the year before
//! vs the year after intelliagents.
//!
//! Runs the full 215-server financial site for one simulated year twice
//! on the **same fault and workload tapes** (same seed): once under
//! manual operations (BMC-Patrol-style notify-only monitoring + human
//! repair), once with the intelliagent layer. The two runs execute on
//! parallel threads.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin fig2_downtime \
//!     [--seed N] [--days N | --full] [--profile] [--trace] [--scope all|service|client]
//! ```
//!
//! With `--profile`/`--trace`, each run's self-measurement evidence
//! (ledger + trace + profile) lands under `results/evidence/`, and
//! `--profile` additionally drops the machine-readable bin summary at
//! `results/BENCH_fig2.json`. The paper comparison tables always count
//! every failure class (that is what Figure 2 measured); the extra
//! scoped section restricts the bins to the `--scope` failure classes
//! so actionable service-fault downtime can be read off separately.

use intelliqos_bench::{
    banner, emit_run_evidence, maybe_build_evdb, row, HarnessOpts, FIG2_YEAR1, FIG2_YEAR1_TOTAL,
    FIG2_YEAR2, FIG2_YEAR2_TOTAL,
};
use intelliqos_cluster::faults::FaultCategory;
use intelliqos_core::{ManagementMode, World};

fn json_str(s: &str) -> String {
    format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\""))
}

/// Write the machine-readable bin summary (`results/BENCH_fig2.json`):
/// annualised hours per category for both runs, all-class next to the
/// `--scope` restriction, validated before it touches disk.
fn write_bench_json(
    opts: &HarnessOpts,
    before_world: &World,
    after_world: &World,
    k: f64,
) -> Result<std::path::PathBuf, String> {
    let all_b = before_world.ledger.figure2_rows();
    let all_a = after_world.ledger.figure2_rows();
    let sc_b = before_world.ledger.figure2_rows_scoped(opts.scope);
    let sc_a = after_world.ledger.figure2_rows_scoped(opts.scope);
    let mut bins = String::new();
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        if i > 0 {
            bins.push_str(",\n");
        }
        bins.push_str(&format!(
            "    {{\"category\": {}, \"manual_h\": {:.4}, \"agents_h\": {:.4}, \
             \"manual_scoped_h\": {:.4}, \"agents_scoped_h\": {:.4}}}",
            json_str(cat.label()),
            all_b[i].1 * k,
            all_a[i].1 * k,
            sc_b[i].1 * k,
            sc_a[i].1 * k
        ));
    }
    let total = |rows: &[(FaultCategory, f64)]| rows.iter().map(|(_, h)| h).sum::<f64>() * k;
    let json = format!(
        "{{\n  \"report\": \"bench_fig2\",\n  \"seed\": {},\n  \"days\": {},\n  \
         \"scope\": {},\n  \"paper_year1_total_h\": {FIG2_YEAR1_TOTAL},\n  \
         \"paper_year2_total_h\": {FIG2_YEAR2_TOTAL},\n  \
         \"manual_total_h\": {:.4},\n  \"agents_total_h\": {:.4},\n  \
         \"manual_scoped_total_h\": {:.4},\n  \"agents_scoped_total_h\": {:.4},\n  \
         \"bins\": [\n{bins}\n  ]\n}}\n",
        opts.seed,
        opts.days,
        json_str(&opts.scope.to_string()),
        total(&all_b),
        total(&all_a),
        total(&sc_b),
        total(&sc_a)
    );
    intelliqos_core::jsonv::parse(&json).map_err(|e| format!("BENCH_fig2: invalid JSON: {e}"))?;
    let path = std::path::Path::new("results").join("BENCH_fig2.json");
    std::fs::create_dir_all("results").map_err(|e| format!("create results: {e}"))?;
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

fn main() {
    let opts = HarnessOpts::parse(365);
    banner(
        "FIG2",
        "downtime by error category, year before vs year after (paired tapes)",
    );
    println!("seed={} horizon={}d\n", opts.seed, opts.days);

    // Both years on parallel threads — the simulations are independent.
    let run = |mode| {
        let mut world = opts.instrument(World::build(opts.site(mode)));
        let report = world.run_to_end();
        (world, report)
    };
    let ((before_world, before), (after_world, after)) = std::thread::scope(|s| {
        let b = s.spawn(|| run(ManagementMode::ManualOps));
        let a = s.spawn(|| run(ManagementMode::Intelliagents));
        // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
        (b.join().expect("manual run"), a.join().expect("agent run"))
    });

    let k = opts.annualize();
    println!("--- year 1 (manual operations) ---");
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        println!(
            "{}",
            row(cat.label(), FIG2_YEAR1[i], before.hours(*cat) * k, "h")
        );
    }
    println!(
        "{}\n",
        row(
            "TOTAL",
            FIG2_YEAR1_TOTAL,
            before.total_downtime_hours * k,
            "h"
        )
    );

    println!("--- year 2 (intelliagents) ---");
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        println!(
            "{}",
            row(cat.label(), FIG2_YEAR2[i], after.hours(*cat) * k, "h")
        );
    }
    println!(
        "{}",
        row(
            "TOTAL (claimed)",
            FIG2_YEAR2_TOTAL,
            after.total_downtime_hours * k,
            "h"
        )
    );
    println!("(note: the paper's year-2 categories sum to 39 h against its claimed 31 h total)\n");

    let reduction = before.total_downtime_hours / after.total_downtime_hours.max(0.01);
    let paper_reduction = FIG2_YEAR1_TOTAL / FIG2_YEAR2_TOTAL;
    println!("--- headline ---");
    println!(
        "{}",
        row("downtime reduction", paper_reduction, reduction, "x")
    );
    println!(
        "db mid-job crashes: {} (manual) vs {} (agents); auto-repaired incidents: {}",
        before.db_crashes,
        after.db_crashes,
        after
            .categories
            .values()
            .map(|t| t.auto_repaired)
            .sum::<u64>()
    );
    println!(
        "incidents: {} vs {}; open at horizon: {} vs {}",
        before.incidents, after.incidents, before.open_incidents, after.open_incidents
    );

    println!("\n--- bins restricted to scope {} ---", opts.scope);
    let sc_before = before_world.ledger.figure2_rows_scoped(opts.scope);
    let sc_after = after_world.ledger.figure2_rows_scoped(opts.scope);
    println!("{:<18} {:>12} {:>12}", "category", "manual(h)", "agents(h)");
    for (i, cat) in FaultCategory::ALL.iter().enumerate() {
        println!(
            "{:<18} {:>12.2} {:>12.2}",
            cat.label(),
            sc_before[i].1 * k,
            sc_after[i].1 * k
        );
    }
    let sum = |rows: &[(FaultCategory, f64)]| rows.iter().map(|(_, h)| h).sum::<f64>() * k;
    println!(
        "{:<18} {:>12.2} {:>12.2}",
        "TOTAL",
        sum(&sc_before),
        sum(&sc_after)
    );

    emit_run_evidence(&opts, "fig2_downtime", "manual", &before_world);
    emit_run_evidence(&opts, "fig2_downtime", "agents", &after_world);
    if opts.profile {
        match write_bench_json(&opts, &before_world, &after_world, k) {
            Ok(path) => println!("bench: {}", path.display()),
            Err(e) => {
                eprintln!("bench FAILED: {e}");
                std::process::exit(1);
            }
        }
    }
    maybe_build_evdb(&opts);
}
