//! ABL-NET — ablation of the private intelliagent network.
//!
//! Figure 1's design routes all agent traffic over a dedicated LAN "to
//! avoid loading public LANs", with automatic fallback. This harness
//! measures (a) how much agent traffic the private LAN actually absorbs
//! during normal operation, and (b) that a private-LAN outage neither
//! stops DLSP collection nor meaningfully loads the public LANs.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin abl_private_network [--seed N] [--days N]
//! ```

use intelliqos_bench::{banner, emit_run_evidence, maybe_build_evdb, HarnessOpts};
use intelliqos_cluster::net::SegmentKind;
use intelliqos_core::{ManagementMode, World};
use intelliqos_simkern::{SimTime, DAY};

fn segment_report(w: &mut World, label: &str) {
    w.fabric.roll_all_windows(w.now());
    println!("--- {label} ---");
    for kind in [SegmentKind::PrivateAgent, SegmentKind::Public] {
        for seg in w.fabric.segments_of(kind) {
            // qoslint::allow(no-panic, segment ids come from the scenario topology)
            let s = w.fabric.segment(seg).unwrap();
            println!(
                "{seg} ({kind:?}): mean util {:.6}% of bandwidth, up={}",
                s.mean_utilization() * 100.0,
                s.up
            );
        }
    }
    if let Some(dgspl) = &w.admin.last_dgspl {
        println!(
            "DGSPL age at horizon: {}s ({} entries)",
            w.now().as_secs() - dgspl.generated_at_secs,
            dgspl.entries.len()
        );
    }
    println!();
}

fn main() {
    let opts = HarnessOpts::parse(7);
    banner(
        "ABL-NET",
        "private agent LAN: load absorption and outage fallback",
    );
    println!("seed={} horizon={}d per variant\n", opts.seed, opts.days);

    // Variant A: normal operation.
    let mut w = opts.instrument(World::build(opts.site(ManagementMode::Intelliagents)));
    w.run_until(SimTime::from_secs(opts.days * DAY));
    segment_report(&mut w, "A: private network healthy");
    emit_run_evidence(&opts, "abl_private_network", "healthy", &w);

    // Variant B: private LAN down the whole time — everything reroutes.
    let mut w = opts.instrument(World::build(opts.site(ManagementMode::Intelliagents)));
    let private = w.fabric.segments_of(SegmentKind::PrivateAgent)[0];
    w.fabric.set_segment_up(private, false);
    w.run_until(SimTime::from_secs(opts.days * DAY));
    segment_report(
        &mut w,
        "B: private network down from t=0 (reroute over public)",
    );
    emit_run_evidence(&opts, "abl_private_network", "private-down", &w);
    maybe_build_evdb(&opts);

    println!(
        "reading: in A the private LAN absorbs all agent traffic (public\n\
         LANs see none of it); in B the same traffic rides the public\n\
         LANs — coordination survives, at the cost the paper's design\n\
         set out to avoid. Agent traffic is small in absolute terms, but\n\
         the isolation also bounds interference during market-data bursts."
    );
}
