//! TRIAGE — run a paired (manual vs intelliagents) scenario with the
//! structured trace and profiler enabled, verify the observability
//! invariants, and export the incident ledger + trace + profile of both
//! runs as JSON.
//!
//! This is the tool behind `scripts/triage.sh`: when a paired experiment
//! looks wrong, it answers the first questions — did the exogenous
//! tapes diverge (and where), did a *replay* of the same configuration
//! diverge mid-run (a handler-level determinism regression), did any
//! incident violate its injected → detected → diagnosed →
//! repaired/escalated lifecycle, what did each subsystem actually do,
//! and where did the run spend its wall-clock time.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin triage [--seed N] [--days N]
//! ```
//!
//! Exit status: 0 when every invariant holds and both ledgers are
//! lifecycle-clean; 1 otherwise. JSON lands in `target/triage/`.

use std::path::Path;

use intelliqos_bench::{banner, HarnessOpts};
use intelliqos_core::divergence::{first_divergence, first_trace_divergence};
use intelliqos_core::{run_export_json, ManagementMode, ProfileReport, ScenarioConfig, World};
use intelliqos_simkern::{SimDuration, Subsystem};

fn run_instrumented(seed: u64, days: u64, mode: ManagementMode) -> World {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(days);
    let mut world = World::build(cfg).enable_trace().enable_profile();
    world.run_to_end();
    world
}

fn main() {
    let opts = HarnessOpts::parse(14);
    banner(
        "TRIAGE",
        "paired-run divergence + replay determinism + ledger lifecycle + profile",
    );
    println!("seed={} horizon={}d\n", opts.seed, opts.days);

    let (manual, agents, replay): (World, World, World) = std::thread::scope(|s| {
        let m = s.spawn(|| run_instrumented(opts.seed, opts.days, ManagementMode::ManualOps));
        let a = s.spawn(|| run_instrumented(opts.seed, opts.days, ManagementMode::Intelliagents));
        let r = s.spawn(|| run_instrumented(opts.seed, opts.days, ManagementMode::Intelliagents));
        (
            m.join().expect("manual run"),
            a.join().expect("agent run"),
            r.join().expect("replay run"),
        )
    });

    let mut ok = true;

    println!("--- paired-run invariant ---");
    match first_divergence(&manual, &agents) {
        None => println!("no divergence: fault and workload tapes are identical"),
        Some(d) => {
            ok = false;
            println!("DIVERGENCE at {d}");
        }
    }

    println!("\n--- replay determinism (agents run twice, same config) ---");
    match first_trace_divergence(&agents, &replay) {
        None => println!("no divergence: fault+workload handler streams replay identically"),
        Some(d) => {
            ok = false;
            println!("TRACE DIVERGENCE:\n{d}");
        }
    }

    println!("\n--- incident-ledger lifecycle ---");
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let violations = world.ledger.lifecycle_violations();
        let closed = world.ledger.incidents().count() - world.ledger.open_incidents().len();
        println!(
            "{name}: {} incidents ({closed} closed, {} open), {} lifecycle violations",
            world.ledger.incidents().count(),
            world.ledger.open_incidents().len(),
            violations.len()
        );
        for v in &violations {
            ok = false;
            println!("  VIOLATION {v}");
        }
    }

    println!("\n--- trace counters (events by subsystem) ---");
    println!("{:<10} {:>10} {:>10}", "subsystem", "manual", "agents");
    for sub in Subsystem::ALL {
        println!(
            "{:<10} {:>10} {:>10}",
            sub.tag(),
            manual.trace.count(sub),
            agents.trace.count(sub)
        );
    }
    println!(
        "{:<10} {:>10} {:>10}  (evicted: {} / {})",
        "total",
        manual.trace.total(),
        agents.trace.total(),
        manual.trace.evicted(),
        agents.trace.evicted()
    );

    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        println!("\n--- profile: {name} ---");
        print!("{}", ProfileReport::from_world(world).render_table());
    }

    let out_dir = Path::new("target/triage");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let path = out_dir.join(format!("{name}.json"));
        let json = run_export_json(world);
        if let Err(e) = intelliqos_core::jsonv::parse(&json) {
            ok = false;
            eprintln!("{name} export is not valid JSON: {e}");
            continue;
        }
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                ok = false;
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    }

    if !ok {
        std::process::exit(1);
    }
}
