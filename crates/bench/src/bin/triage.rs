//! TRIAGE — run a paired (manual vs intelliagents) scenario with the
//! structured trace and profiler enabled, verify the observability
//! invariants, and export the incident ledger + trace + profile of both
//! runs as JSON.
//!
//! This is the tool behind `scripts/triage.sh`: when a paired experiment
//! looks wrong, it answers the first questions — did the exogenous
//! tapes diverge (and where), did a *replay* of the same configuration
//! diverge mid-run (a handler-level determinism regression), did any
//! incident violate its injected → detected → diagnosed →
//! repaired/escalated lifecycle, what did each subsystem actually do,
//! and where did the run spend its wall-clock time.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin triage [--seed N] [--days N] [--scope all|service|client]
//! cargo run --release -p intelliqos-bench --bin triage -- --incident N [--seed N] [--days N]
//! cargo run --release -p intelliqos-bench --bin triage -- --incident N --evdb results/evdb
//! cargo run --release -p intelliqos-bench --bin triage -- --incident N --evidence results/evidence
//! ```
//!
//! `--scope` selects which failure classes burn the SLO error budget
//! (default `service`: only actionable service faults). The SLO
//! observatory section reports both the configured burn scope and the
//! scoped vs all-class downtime split, so a noisy client workload can
//! be separated from real service faults at a glance.
//!
//! With `--incident N` the tool instead renders the complete causal
//! timeline of one incident — every trace event carrying that incident's
//! correlation id (inject → pipeline/diagnose → heal/restore/escalate),
//! in both the manual and the agents run, next to the ledger lifecycle.
//!
//! With `--evdb DIR` (indexed evidence store) or `--evidence DIR`
//! (linear reference scan) the incident timeline is answered from
//! previously exported evidence instead of re-running the simulation.
//! Both backends print byte-identical timelines for the same evidence —
//! stats and warnings go to stderr only — which CI verifies with `diff`.
//!
//! Exit status: 0 when every invariant holds and both ledgers are
//! lifecycle-clean; 1 otherwise. JSON lands in `target/triage/`.

use std::path::Path;

use intelliqos_bench::{banner, HarnessOpts};
use intelliqos_core::divergence::{first_divergence, first_trace_divergence};
use intelliqos_core::slo::SloScope;
use intelliqos_core::{
    run_export_json, IncidentId, ManagementMode, ProfileReport, ScenarioConfig, World,
};
use intelliqos_evdb::{render_corr_timelines, scan_query, Query, Rec, Store};
use intelliqos_simkern::{SimDuration, Subsystem};

fn run_instrumented(seed: u64, days: u64, scope: SloScope, mode: ManagementMode) -> World {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(days);
    cfg.slo.burn_scope = scope;
    let mut world = World::build(cfg).enable_trace().enable_profile();
    world.run_to_end();
    world
}

/// Render every trace event correlated to `id`, in causal order, next
/// to the ledger's lifecycle record. Returns false when the incident is
/// unknown to this world.
fn render_incident(world: &World, name: &str, id: IncidentId) -> bool {
    let Some(rec) = world.ledger.get(id) else {
        println!("{name}: no incident {id}");
        return false;
    };
    println!("--- {name}: incident {id} ---");
    println!(
        "category={:?} service={} {:?}",
        rec.category, rec.service, rec.description
    );
    // Plain seconds for grep-ability.
    let stamp = |t: Option<intelliqos_simkern::SimTime>| -> String {
        t.map(|t| t.as_secs().to_string())
            .unwrap_or_else(|| "-".into())
    };
    println!(
        "ledger: onset={} detected={} diagnosed={} restored={} escalated={} \
         class={} actionable={}",
        rec.onset.as_secs(),
        stamp(rec.detected),
        stamp(rec.diagnosed),
        stamp(rec.restored),
        rec.escalated,
        rec.failure_class(),
        rec.is_actionable()
    );
    for a in &rec.attempts {
        println!(
            "attempt: at={} actor={:?} action={} resolved={}",
            a.at.as_secs(),
            a.actor,
            a.action,
            a.resolved
        );
    }
    let mut events: Vec<_> = world
        .trace
        .events()
        .into_iter()
        .filter(|e| e.corr == Some(id.0))
        .collect();
    events.sort_by_key(|e| (e.at, e.seq));
    if events.is_empty() {
        println!("timeline: no correlated trace events retained");
    } else {
        println!("timeline ({} event(s)):", events.len());
        for e in events {
            println!("  {}", e.render());
        }
    }
    println!();
    true
}

/// Answer `--incident N` from exported evidence: the indexed store
/// (`--evdb DIR`) or the linear reference scan (`--evidence DIR`).
///
/// Only the timeline goes to stdout — stats and warnings are stderr —
/// so the two backends are byte-comparable with `diff`. Returns the
/// process exit code: 0 incident found, 1 not found, 2 backend error.
fn evidence_incident(id: u64, evdb_dir: Option<&str>, evidence_dir: Option<&str>) -> i32 {
    let q = Query {
        corr: Some(id),
        ..Query::default()
    };
    let recs = match (evdb_dir, evidence_dir) {
        (Some(dir), _) => {
            let store = match Store::open(Path::new(dir)) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("triage: {e}");
                    return 2;
                }
            };
            match store.query(&q) {
                Ok((recs, stats)) => {
                    eprintln!(
                        "triage: evdb: {} index file(s), {} segment(s), {} row(s) loaded, \
                         {} matched, {} source file(s) re-read",
                        stats.index_files_read,
                        stats.segments_read,
                        stats.rows_loaded,
                        stats.rows_matched,
                        stats.source_files_read
                    );
                    recs
                }
                Err(e) => {
                    eprintln!("triage: {e}");
                    return 2;
                }
            }
        }
        (None, Some(dir)) => match scan_query(Path::new(dir), &q) {
            Ok((recs, stats, warnings)) => {
                for w in &warnings {
                    eprintln!("triage: warning: {w}");
                }
                eprintln!(
                    "triage: scan: {} source file(s), {} row(s) matched",
                    stats.source_files_read, stats.rows_matched
                );
                recs
            }
            Err(e) => {
                eprintln!("triage: {e}");
                return 2;
            }
        },
        (None, None) => unreachable!("caller checks one backend is set"),
    };
    print!("{}", render_corr_timelines(&recs, id));
    let found = recs
        .iter()
        .any(|r| matches!(r, Rec::Incident(inc) if inc.id == id));
    i32::from(!found)
}

fn main() {
    let opts = HarnessOpts::parse(14);
    let args: Vec<String> = std::env::args().collect();
    let incident: Option<u64> = args
        .iter()
        .position(|a| a == "--incident")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    let flag_value = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let evdb_dir = flag_value("--evdb");
    let evidence_dir = flag_value("--evidence");

    if evdb_dir.is_some() || evidence_dir.is_some() {
        let Some(id) = incident else {
            eprintln!("triage: --evdb/--evidence require --incident N");
            std::process::exit(2);
        };
        std::process::exit(evidence_incident(
            id,
            evdb_dir.as_deref(),
            evidence_dir.as_deref(),
        ));
    }

    if let Some(id) = incident {
        let id = IncidentId(id);
        banner("TRIAGE", "incident-correlated causal timeline");
        println!("seed={} horizon={}d incident={id}\n", opts.seed, opts.days);
        let (manual, agents): (World, World) = std::thread::scope(|s| {
            let m = s.spawn(|| {
                run_instrumented(opts.seed, opts.days, opts.scope, ManagementMode::ManualOps)
            });
            let a = s.spawn(|| {
                run_instrumented(
                    opts.seed,
                    opts.days,
                    opts.scope,
                    ManagementMode::Intelliagents,
                )
            });
            // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            (m.join().expect("manual run"), a.join().expect("agent run"))
        });
        let mut found = false;
        for (name, world) in [("manual", &manual), ("agents", &agents)] {
            found |= render_incident(world, name, id);
            println!("{}", world.slo.report(world.cfg.horizon).render_summary());
        }
        if !found {
            std::process::exit(1);
        }
        return;
    }

    banner(
        "TRIAGE",
        "paired-run divergence + replay determinism + ledger lifecycle + profile",
    );
    println!("seed={} horizon={}d\n", opts.seed, opts.days);

    let (manual, agents, replay): (World, World, World) = std::thread::scope(|s| {
        let m = s.spawn(|| {
            run_instrumented(opts.seed, opts.days, opts.scope, ManagementMode::ManualOps)
        });
        let a = s.spawn(|| {
            run_instrumented(
                opts.seed,
                opts.days,
                opts.scope,
                ManagementMode::Intelliagents,
            )
        });
        let r = s.spawn(|| {
            run_instrumented(
                opts.seed,
                opts.days,
                opts.scope,
                ManagementMode::Intelliagents,
            )
        });
        (
            // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            m.join().expect("manual run"),
            a.join().expect("agent run"), // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            r.join().expect("replay run"), // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
        )
    });

    let mut ok = true;

    println!("--- paired-run invariant ---");
    match first_divergence(&manual, &agents) {
        None => println!("no divergence: fault and workload tapes are identical"),
        Some(d) => {
            ok = false;
            println!("DIVERGENCE at {d}");
        }
    }

    println!("\n--- replay determinism (agents run twice, same config) ---");
    match first_trace_divergence(&agents, &replay) {
        None => println!("no divergence: fault+workload handler streams replay identically"),
        Some(d) => {
            ok = false;
            println!("TRACE DIVERGENCE:\n{d}");
        }
    }

    println!("\n--- incident-ledger lifecycle ---");
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let violations = world.ledger.lifecycle_violations();
        let closed = world.ledger.incidents().count() - world.ledger.open_incidents().len();
        println!(
            "{name}: {} incidents ({closed} closed, {} open), {} lifecycle violations",
            world.ledger.incidents().count(),
            world.ledger.open_incidents().len(),
            violations.len()
        );
        for v in &violations {
            ok = false;
            println!("  VIOLATION {v}");
        }
    }

    println!("\n--- slo observatory (burn scope {}) ---", opts.scope);
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let report = world.slo.report(world.cfg.horizon);
        println!("{name}: {}", report.render_summary());
        println!(
            "{name}: scope {}: downtime {}s of {}s all-class, availability {:.5}",
            opts.scope,
            report.scope_downtime_secs(opts.scope),
            report.scope_downtime_secs(SloScope::All),
            report.fleet_availability_scoped(opts.scope)
        );
    }

    println!("\n--- trace counters (events by subsystem) ---");
    println!("{:<10} {:>10} {:>10}", "subsystem", "manual", "agents");
    for sub in Subsystem::ALL {
        println!(
            "{:<10} {:>10} {:>10}",
            sub.tag(),
            manual.trace.count(sub),
            agents.trace.count(sub)
        );
    }
    println!(
        "{:<10} {:>10} {:>10}  (evicted: {} / {})",
        "total",
        manual.trace.total(),
        agents.trace.total(),
        manual.trace.evicted(),
        agents.trace.evicted()
    );

    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        println!("\n--- profile: {name} ---");
        print!("{}", ProfileReport::from_world(world).render_table());
    }

    let out_dir = Path::new("target/triage");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let path = out_dir.join(format!("{name}.json"));
        let json = run_export_json(world);
        if let Err(e) = intelliqos_core::jsonv::parse(&json) {
            ok = false;
            eprintln!("{name} export is not valid JSON: {e}");
            continue;
        }
        match std::fs::write(&path, json) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => {
                ok = false;
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    }

    if !ok {
        std::process::exit(1);
    }
}
