//! TRIAGE — run a paired (manual vs intelliagents) scenario with the
//! structured trace enabled, verify the observability invariants, and
//! export the incident ledger + trace of both runs as JSON.
//!
//! This is the tool behind `scripts/triage.sh`: when a paired experiment
//! looks wrong, it answers the first three questions — did the exogenous
//! tapes diverge (and where), did any incident violate its
//! injected → detected → diagnosed → repaired/escalated lifecycle, and
//! what did each subsystem actually do.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin triage [--seed N] [--days N]
//! ```
//!
//! Exit status: 0 when the paired-run invariant holds and both ledgers
//! are lifecycle-clean; 1 otherwise. JSON lands in `target/triage/`.

use std::path::Path;

use intelliqos_bench::{banner, HarnessOpts};
use intelliqos_core::divergence::first_divergence;
use intelliqos_core::{run_export_json, ManagementMode, ScenarioConfig, World};
use intelliqos_simkern::{SimDuration, Subsystem};

fn run_traced(seed: u64, days: u64, mode: ManagementMode) -> World {
    let mut cfg = ScenarioConfig::small(seed, mode);
    cfg.horizon = SimDuration::from_days(days);
    let mut world = World::build(cfg).enable_trace();
    world.run_to_end();
    world
}

fn main() {
    let opts = HarnessOpts::parse(14);
    banner(
        "TRIAGE",
        "paired-run divergence + incident-ledger lifecycle check",
    );
    println!("seed={} horizon={}d\n", opts.seed, opts.days);

    let (manual, agents): (World, World) = std::thread::scope(|s| {
        let m = s.spawn(|| run_traced(opts.seed, opts.days, ManagementMode::ManualOps));
        let a = s.spawn(|| run_traced(opts.seed, opts.days, ManagementMode::Intelliagents));
        (m.join().expect("manual run"), a.join().expect("agent run"))
    });

    let mut ok = true;

    println!("--- paired-run invariant ---");
    match first_divergence(&manual, &agents) {
        None => println!("no divergence: fault and workload tapes are identical"),
        Some(d) => {
            ok = false;
            println!("DIVERGENCE at {d}");
        }
    }

    println!("\n--- incident-ledger lifecycle ---");
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let violations = world.ledger.lifecycle_violations();
        let closed = world.ledger.incidents().count() - world.ledger.open_incidents().len();
        println!(
            "{name}: {} incidents ({closed} closed, {} open), {} lifecycle violations",
            world.ledger.incidents().count(),
            world.ledger.open_incidents().len(),
            violations.len()
        );
        for v in &violations {
            ok = false;
            println!("  VIOLATION {v}");
        }
    }

    println!("\n--- trace counters (events by subsystem) ---");
    println!("{:<10} {:>10} {:>10}", "subsystem", "manual", "agents");
    for sub in Subsystem::ALL {
        println!(
            "{:<10} {:>10} {:>10}",
            sub.tag(),
            manual.trace.count(sub),
            agents.trace.count(sub)
        );
    }
    println!(
        "{:<10} {:>10} {:>10}  (evicted: {} / {})",
        "total",
        manual.trace.total(),
        agents.trace.total(),
        manual.trace.evicted(),
        agents.trace.evicted()
    );

    let out_dir = Path::new("target/triage");
    if let Err(e) = std::fs::create_dir_all(out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        std::process::exit(1);
    }
    for (name, world) in [("manual", &manual), ("agents", &agents)] {
        let path = out_dir.join(format!("{name}.json"));
        match std::fs::write(&path, run_export_json(world)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => {
                ok = false;
                eprintln!("cannot write {}: {e}", path.display());
            }
        }
    }

    if !ok {
        std::process::exit(1);
    }
}
