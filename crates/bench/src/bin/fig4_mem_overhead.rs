//! FIG4 — Figure 4: monitoring resident memory on one server at peak,
//! eight half-hour samples: BMC Patrol vs intelliagents.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin fig4_mem_overhead [--seed N]
//! ```

use intelliqos_baseline::ResidentMonitorFootprint;
use intelliqos_bench::{
    banner, emit_sample_evidence, json_arr_f64, row, HarnessOpts, FIG4_AGENT_MEM, FIG4_BMC_MEM,
};
use intelliqos_simkern::SimRng;
use intelliqos_telemetry::AgentFootprint;

fn main() {
    let opts = HarnessOpts::parse(1);
    banner(
        "FIG4",
        "monitoring resident memory (MB) at peak, 8 samples every 30 min",
    );

    let bmc = ResidentMonitorFootprint::default();
    let agent = AgentFootprint::default();
    let mut rng_bmc = SimRng::stream(opts.seed, "fig4-bmc");
    let mut rng_agent = SimRng::stream(opts.seed, "fig4-agent");

    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "sample", "BMC paper", "BMC meas", "agent paper", "agent meas"
    );
    let mut bmc_samples = Vec::new();
    let mut agent_samples = Vec::new();
    for (i, paper_bmc) in FIG4_BMC_MEM.iter().enumerate() {
        let b = bmc.sample_mem_mb(&mut rng_bmc);
        let a = agent.sample_mem_mb(&mut rng_agent);
        bmc_samples.push(b);
        agent_samples.push(a);
        println!(
            "{:<8} {:>10.1}MB {:>10.1}MB {:>12.1}MB {:>12.1}MB",
            i + 1,
            paper_bmc,
            b,
            FIG4_AGENT_MEM,
            a
        );
    }
    let bmc_sum: f64 = bmc_samples.iter().sum();
    let paper_bmc_mean: f64 = FIG4_BMC_MEM.iter().sum::<f64>() / 8.0;
    println!();
    println!("{}", row("BMC mean", paper_bmc_mean, bmc_sum / 8.0, "MB"));
    println!(
        "{}",
        row("agent (flat)", FIG4_AGENT_MEM, agent_samples[0], "MB")
    );
    // Figure 4's key qualitative feature: the agent line is perfectly
    // flat because nothing stays resident between wake-ups.
    let flat = agent_samples
        .iter()
        .all(|&a| (a - agent_samples[0]).abs() < 1e-12);
    println!("agent series flat: {flat} (non-memory-resident design)");
    println!(
        "{}",
        row(
            "BMC/agent ratio",
            paper_bmc_mean / FIG4_AGENT_MEM,
            (bmc_sum / 8.0) / agent_samples[0],
            "x"
        )
    );

    let json = format!(
        "{{\n\"figure\": \"fig4_mem_overhead\",\n\"seed\": {},\n\
         \"bmc_mem_mb\": {},\n\"agent_mem_mb\": {},\n\
         \"paper_bmc_mem_mb\": {},\n\"paper_agent_mem_mb\": {}\n}}",
        opts.seed,
        json_arr_f64(&bmc_samples),
        json_arr_f64(&agent_samples),
        json_arr_f64(&FIG4_BMC_MEM),
        FIG4_AGENT_MEM,
    );
    emit_sample_evidence(&opts, "fig4_mem_overhead", "samples", &json);
}
