//! T-MTTR — in-text table: repair time after detection.
//!
//! Paper: "It could take up to 2 hours at a time for a service or
//! server restart … The whole troubleshooting procedure (and subsequent
//! downtime) could take an average of 4 hours in such cases" (multiple
//! experts). With agents, a restart completes within one sweep plus the
//! application's startup sequence.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin tbl_mttr [--seed N] [--days N]
//! ```

use intelliqos_baseline::ManualRepairModel;
use intelliqos_bench::{banner, row, run_paired_site, HarnessOpts, MTTR_COMPLEX_H, MTTR_SIMPLE_H};
use intelliqos_cluster::faults::{Complexity, FaultCategory};
use intelliqos_simkern::SimRng;

fn main() {
    let opts = HarnessOpts::parse(21);
    banner(
        "T-MTTR",
        "repair time: human pipeline vs agent self-healing",
    );

    // -- part 1: the manual repair model --------------------------------
    let model = ManualRepairModel::default();
    let mut rng = SimRng::stream(opts.seed, "tmttr");
    let n = 20_000;
    let mean = |c: Complexity, rng: &mut SimRng| -> f64 {
        (0..n)
            .map(|_| model.sample_repair(c, rng).as_hours_f64())
            .sum::<f64>()
            / n as f64
    };
    println!("--- manual repair model ({n} samples each) ---");
    println!(
        "{}",
        row(
            "simple (1 admin)",
            MTTR_SIMPLE_H,
            mean(Complexity::Simple, &mut rng),
            "h"
        )
    );
    println!(
        "{}",
        row(
            "complex (experts)",
            MTTR_COMPLEX_H,
            mean(Complexity::Complex, &mut rng),
            "h"
        )
    );

    // -- part 2: measured repair times inside full scenarios -------------
    println!(
        "\n--- measured repair (detected -> restored), {}d, seed {} ---",
        opts.days, opts.seed
    );
    let (before, after) = run_paired_site(&opts, "tbl_mttr");

    println!(
        "{:<18} {:>14} {:>14}",
        "category", "manual repair", "agent repair"
    );
    for cat in FaultCategory::ALL {
        let b = before.categories.get(&cat);
        let a = after.categories.get(&cat);
        let (bi, ai) = (
            b.map(|t| t.incidents).unwrap_or(0),
            a.map(|t| t.incidents).unwrap_or(0),
        );
        if bi == 0 && ai == 0 {
            continue;
        }
        let bh = b
            .map(|t| {
                if t.incidents > 0 {
                    t.repair_hours / t.incidents as f64
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        let ah = a
            .map(|t| {
                if t.incidents > 0 {
                    t.repair_hours / t.incidents as f64
                } else {
                    0.0
                }
            })
            .unwrap_or(0.0);
        println!("{:<18} {:>13.2}h {:>12.1}min", cat.label(), bh, ah * 60.0);
    }
    println!(
        "\nnote: agent-mode FW/NW and hardware repairs remain human work\n\
         (the paper's agents could not heal those) — only their *detection*\n\
         accelerates; database restarts include ~18-25 min of crash recovery."
    );
}
