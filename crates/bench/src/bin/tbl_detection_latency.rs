//! T-DET — in-text table: fault detection latency.
//!
//! Paper: "Faults however, were detected within the first 5 minutes of
//! them happening (the intelliagent run frequency), as opposed to about
//! 1 hour during day time, about 25 hours over the weekends and 10 hours
//! from overnight jobs (data provided by the customer using BMC Patrol)."
//!
//! Part 1 samples the human-detection model per onset window; part 2
//! measures end-to-end detection latency inside full paired scenarios.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin tbl_detection_latency [--seed N] [--days N]
//! ```

use intelliqos_baseline::HumanDetectionModel;
use intelliqos_bench::{
    banner, row, run_paired_site, HarnessOpts, DETECT_AGENT_MIN, DETECT_DAYTIME_H,
    DETECT_OVERNIGHT_H, DETECT_WEEKEND_H,
};
use intelliqos_cluster::faults::FaultCategory;
use intelliqos_simkern::{SimDuration, SimRng, SimTime};

fn main() {
    let opts = HarnessOpts::parse(21);
    banner(
        "T-DET",
        "fault detection latency: human console watch vs agent sweeps",
    );

    // -- part 1: the human-notice model per onset window ----------------
    let model = HumanDetectionModel::default();
    let mut rng = SimRng::stream(opts.seed, "tdet");
    let n = 20_000;
    let mean_delay = |onset: SimTime, rng: &mut SimRng| -> f64 {
        (0..n)
            .map(|_| model.sample_delay(onset, rng).as_hours_f64())
            .sum::<f64>()
            / n as f64
    };
    let day = mean_delay(SimTime::from_hours(10), &mut rng); // Monday 10:00
    let night = mean_delay(SimTime::from_hours(2), &mut rng); // Monday 02:00
    let weekend = mean_delay(
        SimTime::from_days(5) + SimDuration::from_hours(12),
        &mut rng,
    );
    println!("--- notify-only monitoring (model, {n} samples/window) ---");
    println!("{}", row("daytime", DETECT_DAYTIME_H, day, "h"));
    println!("{}", row("overnight", DETECT_OVERNIGHT_H, night, "h"));
    println!("{}", row("weekend", DETECT_WEEKEND_H, weekend, "h"));

    // -- part 2: end-to-end inside paired scenarios ---------------------
    println!(
        "\n--- measured inside full scenarios ({}d, seed {}) ---",
        opts.days, opts.seed
    );
    let (before, after) = run_paired_site(&opts, "tbl_detection_latency");

    println!(
        "{:<18} {:>16} {:>16} {:>10}",
        "category", "manual detect", "agent detect", "incidents"
    );
    for cat in FaultCategory::ALL {
        let b = before.categories.get(&cat);
        let a = after.categories.get(&cat);
        if b.map(|t| t.incidents).unwrap_or(0) == 0 && a.map(|t| t.incidents).unwrap_or(0) == 0 {
            continue;
        }
        println!(
            "{:<18} {:>15.2}h {:>14.1}min {:>6}/{:<4}",
            cat.label(),
            b.map(|t| t.mean_detection_hours()).unwrap_or(0.0),
            a.map(|t| t.mean_detection_hours() * 60.0).unwrap_or(0.0),
            b.map(|t| t.incidents).unwrap_or(0),
            a.map(|t| t.incidents).unwrap_or(0),
        );
    }
    // The headline claim: every agent-mode detection within the sweep
    // period (≤ X = 5 min), modulo the rare fault landing mid-sweep.
    let worst_agent_min = FaultCategory::ALL
        .iter()
        .filter_map(|c| after.categories.get(c))
        .filter(|t| t.incidents > 0)
        .map(|t| t.mean_detection_hours() * 60.0)
        .fold(0.0f64, f64::max);
    println!();
    println!(
        "{}",
        row("agent worst mean", DETECT_AGENT_MIN, worst_agent_min, "min")
    );
}
