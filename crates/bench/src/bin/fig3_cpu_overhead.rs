//! FIG3 — Figure 3: monitoring CPU utilisation on one server at peak,
//! eight half-hour samples: BMC Patrol vs intelliagents.
//!
//! The resident monitor's footprint model and the agents' duty-cycle
//! footprint model (calibrated from §3.3's non-resident design) each
//! produce the eight samples the figure plots.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin fig3_cpu_overhead [--seed N]
//! ```

use intelliqos_baseline::ResidentMonitorFootprint;
use intelliqos_bench::{
    banner, emit_sample_evidence, json_arr_f64, row, HarnessOpts, FIG3_AGENT_CPU, FIG3_BMC_CPU,
};
use intelliqos_simkern::SimRng;
use intelliqos_telemetry::AgentFootprint;

fn main() {
    let opts = HarnessOpts::parse(1);
    banner("FIG3", "monitoring CPU % at peak, 8 samples every 30 min");

    let bmc = ResidentMonitorFootprint::default();
    let agent = AgentFootprint::default();
    let mut rng_bmc = SimRng::stream(opts.seed, "fig3-bmc");
    let mut rng_agent = SimRng::stream(opts.seed, "fig3-agent");

    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>14}",
        "sample", "BMC paper", "BMC meas", "agent paper", "agent meas"
    );
    let mut bmc_samples = Vec::new();
    let mut agent_samples = Vec::new();
    for i in 0..8 {
        let b = bmc.sample_cpu_pct(&mut rng_bmc);
        let a = agent.sample_cpu_pct(&mut rng_agent);
        bmc_samples.push(b);
        agent_samples.push(a);
        println!(
            "{:<8} {:>11.3}% {:>11.3}% {:>13.3}% {:>13.3}%",
            i + 1,
            FIG3_BMC_CPU[i],
            b,
            FIG3_AGENT_CPU[i],
            a
        );
    }
    let bmc_sum: f64 = bmc_samples.iter().sum();
    let agent_sum: f64 = agent_samples.iter().sum();
    let paper_bmc_mean: f64 = FIG3_BMC_CPU.iter().sum::<f64>() / 8.0;
    let paper_agent_mean: f64 = FIG3_AGENT_CPU.iter().sum::<f64>() / 8.0;
    println!();
    println!("{}", row("BMC mean", paper_bmc_mean, bmc_sum / 8.0, "%"));
    println!(
        "{}",
        row("agent mean", paper_agent_mean, agent_sum / 8.0, "%")
    );
    println!(
        "{}",
        row(
            "BMC/agent ratio",
            paper_bmc_mean / paper_agent_mean,
            (bmc_sum / 8.0) / (agent_sum / 8.0),
            "x"
        )
    );
    println!(
        "\nthe agents' mean is a duty cycle: {}s of work every {}s at {:.1}% while running",
        9, 300, 1.5
    );

    let json = format!(
        "{{\n\"figure\": \"fig3_cpu_overhead\",\n\"seed\": {},\n\
         \"bmc_cpu_pct\": {},\n\"agent_cpu_pct\": {},\n\
         \"paper_bmc_cpu_pct\": {},\n\"paper_agent_cpu_pct\": {}\n}}",
        opts.seed,
        json_arr_f64(&bmc_samples),
        json_arr_f64(&agent_samples),
        json_arr_f64(&FIG3_BMC_CPU),
        json_arr_f64(&FIG3_AGENT_CPU),
    );
    emit_sample_evidence(&opts, "fig3_cpu_overhead", "samples", &json);
}
