//! ABL-FREQ — ablation of the agent wake cadence (the paper's X).
//!
//! §3.3 fixes X ≈ 5 minutes without justification. This sweep varies X
//! from 1 to 60 minutes and reports the downtime, detection latency,
//! and per-server monitoring CPU cost at each setting — exposing the
//! knee that makes 5 minutes a sensible choice.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin abl_frequency_sweep [--seed N] [--days N]
//! ```

use intelliqos_bench::{banner, emit_run_evidence, maybe_build_evdb, run_world, HarnessOpts};
use intelliqos_core::{ManagementMode, ScenarioReport, World};
use intelliqos_simkern::SimDuration;
use intelliqos_telemetry::AgentFootprint;

fn main() {
    let opts = HarnessOpts::parse(21);
    banner("ABL-FREQ", "agent wake-period sweep (downtime vs overhead)");
    println!("seed={} horizon={}d per point\n", opts.seed, opts.days);

    let periods_min = [2u64, 5, 15, 45];
    let runs: Vec<(u64, World, ScenarioReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = periods_min
            .iter()
            .map(|&m| {
                let mut cfg = opts.site(ManagementMode::Intelliagents);
                cfg.agent_period = SimDuration::from_mins(m);
                cfg.admin_period = SimDuration::from_mins(m + 5);
                let opts = opts.clone();
                s.spawn(move || {
                    let (world, report) = run_world(&opts, cfg);
                    (m, world, report)
                })
            })
            .collect();
        handles
            .into_iter()
            // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (m, world, _) in &runs {
        emit_run_evidence(&opts, "abl_frequency_sweep", &format!("{m}min"), world);
    }
    maybe_build_evdb(&opts);
    let reports: Vec<(u64, &ScenarioReport)> = runs.iter().map(|(m, _, r)| (*m, r)).collect();

    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12}",
        "period", "downtime h", "mean detect", "agent CPU %", "incidents"
    );
    for (m, r) in &reports {
        let detect_min: f64 = {
            let (sum, n) = r
                .categories
                .values()
                .filter(|t| t.incidents > 0)
                .fold((0.0, 0u64), |(s, n), t| {
                    (s + t.detection_hours, n + t.incidents)
                });
            if n == 0 {
                0.0
            } else {
                sum / n as f64 * 60.0
            }
        };
        let cpu = AgentFootprint::default()
            .with_period(SimDuration::from_mins(*m))
            .mean_cpu_pct();
        println!(
            "{:>7}min {:>12.1} {:>11.1}min {:>13.3}% {:>12}",
            m, r.total_downtime_hours, detect_min, cpu, r.incidents
        );
    }
    println!(
        "\nreading: downtime grows with the period (faults sit undetected\n\
         longer) while CPU cost shrinks hyperbolically; at X=5 min the\n\
         overhead is already ≈0.05 %, the paper's reported band."
    );
}
