//! ONTOLOGY-CHECK — standalone site-ontology validation gate.
//!
//! Runs the qoslint ontology pass (startup-sequence cycles, duplicate
//! ports on co-hosted services, dangling references, ISSL caps, DGSPL
//! schema) over the site ontologies the shipped scenario presets
//! materialise, exactly as `World::try_build` does at construction
//! time. CI runs this so an ontology regression is caught even by jobs
//! that never construct a full world.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin ontology_check [--seed N] [--no-evidence]
//! ```
//!
//! Writes a machine-readable report to
//! `results/evidence/ontology_check_site.json` (validated by
//! `evidence_check`). Exit status: 0 when every preset's ontology is
//! clean; 1 when any rule fires.

use intelliqos_bench::write_evidence_json;
use intelliqos_core::{ManagementMode, ScenarioConfig, World};
use intelliqos_qoslint::diag::{render_report, Diagnostic};

/// Build one preset's world and collect its ontology diagnostics (via
/// the same gate `World::build` applies).
fn check_preset(cfg: ScenarioConfig) -> Vec<Diagnostic> {
    match World::try_build(cfg) {
        Ok(world) => world.ontology_diagnostics(), // empty by construction
        Err(err) => err.diags,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 11u64;
    let mut evidence = true;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" if i + 1 < args.len() => {
                i += 1;
                seed = args[i].parse().unwrap_or(seed);
            }
            "--no-evidence" => evidence = false,
            other => {
                eprintln!("ontology_check: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let presets = [
        (
            "small_manual",
            ScenarioConfig::small(seed, ManagementMode::ManualOps),
        ),
        (
            "small_agents",
            ScenarioConfig::small(seed, ManagementMode::Intelliagents),
        ),
        (
            "financial_site",
            ScenarioConfig::financial_site(seed, ManagementMode::Intelliagents),
        ),
    ];

    let mut findings = 0usize;
    let mut scenario_rows = Vec::new();
    let mut finding_rows = Vec::new();
    for (name, cfg) in presets {
        let diags = check_preset(cfg);
        if diags.is_empty() {
            println!("ok   {name}");
        } else {
            println!("FAIL {name}: {} ontology finding(s)", diags.len());
            print!("{}", render_report(&diags));
        }
        scenario_rows.push(format!(
            "{{\"scenario\": \"{name}\", \"findings\": {}}}",
            diags.len()
        ));
        finding_rows.extend(diags.iter().map(|d| d.to_json()));
        findings += diags.len();
    }

    if evidence {
        let json = format!(
            "{{\n  \"report\": \"ontology_check\",\n  \"seed\": {seed},\n  \
             \"findings\": {findings},\n  \"scenarios\": [{}],\n  \"diagnostics\": [{}]\n}}\n",
            scenario_rows.join(", "),
            finding_rows.join(", ")
        );
        match write_evidence_json("ontology_check", "site", &json) {
            Ok(path) => println!("evidence: {}", path.display()),
            Err(e) => {
                eprintln!("evidence FAILED: {e}");
                std::process::exit(1);
            }
        }
    }

    if findings > 0 {
        std::process::exit(1);
    }
}
