//! Quick calibration probe for the Figure 2 scenario (not a shipped bench).
use intelliqos_core::{run_scenario, ManagementMode, ScenarioConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        // qoslint::allow(wall-clock, progress timing for the operator; never enters results)
        let t0 = std::time::Instant::now();
        let report = run_scenario(ScenarioConfig::financial_site(seed, mode));
        println!("== seed {seed} mode {mode:?} ({:.1?})", t0.elapsed());
        for line in report.figure2_table() {
            println!("{line}");
        }
        println!(
            "jobs: submitted={} completed={} failed={} resub={} db_crashes={} open={}",
            report.lsf.submitted,
            report.lsf.completed,
            report.lsf.failed,
            report.lsf.resubmitted,
            report.db_crashes,
            report.open_incidents
        );
    }
}
