//! T-RESCHED — in-text claim: DGSPL-guided resubmission vs alternatives.
//!
//! Paper: resubmitting failed jobs "not based on the manual LSF settings
//! … but based on the dynamically generated DGSPs" — even random
//! reselection "although not ideal, significantly decreased downtime
//! from database crashes in the middle of a job". Three agent-mode runs
//! on the same tapes differ only in the resubmission policy.
//!
//! ```text
//! cargo run --release -p intelliqos-bench --bin tbl_reschedule_policy [--seed N] [--days N]
//! ```

use intelliqos_bench::{banner, emit_run_evidence, maybe_build_evdb, run_world, HarnessOpts};
use intelliqos_cluster::faults::FaultCategory;
use intelliqos_core::{ManagementMode, ReschedPolicy, ScenarioReport, World};

fn main() {
    let opts = HarnessOpts::parse(21);
    banner(
        "T-RESCHED",
        "failed-job resubmission policy comparison (agents mode)",
    );
    println!(
        "seed={} horizon={}d — same fault/workload tapes per run\n",
        opts.seed, opts.days
    );

    let policies = [
        ("dgspl-shortlist", ReschedPolicy::Dgspl),
        ("random", ReschedPolicy::Random),
        ("manual-sticky", ReschedPolicy::ManualSticky),
    ];
    let runs: Vec<(&str, World, ScenarioReport)> = std::thread::scope(|s| {
        let handles: Vec<_> = policies
            .iter()
            .map(|(name, policy)| {
                let mut cfg = opts.site(ManagementMode::Intelliagents);
                cfg.resched = *policy;
                let opts = opts.clone();
                s.spawn(move || {
                    let (world, report) = run_world(&opts, cfg);
                    (*name, world, report)
                })
            })
            .collect();
        handles
            .into_iter()
            // qoslint::allow(no-panic, join propagates a worker panic; nothing to recover)
            .map(|h| h.join().expect("run"))
            .collect()
    });
    for (name, world, _) in &runs {
        emit_run_evidence(&opts, "tbl_reschedule_policy", name, world);
    }
    maybe_build_evdb(&opts);
    let reports: Vec<(&str, &ScenarioReport)> = runs.iter().map(|(n, _, r)| (*n, r)).collect();

    println!(
        "{:<18} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "policy", "mid-crash h", "db crashes", "job fails", "resubmits", "completed"
    );
    for (name, r) in &reports {
        println!(
            "{:<18} {:>12.1} {:>12} {:>12} {:>12} {:>12}",
            name,
            r.hours(FaultCategory::MidJobDbCrash),
            r.db_crashes,
            r.lsf.failed,
            r.lsf.resubmitted,
            r.lsf.completed,
        );
    }
    let dgspl = &reports[0].1;
    let manual = &reports[2].1;
    println!(
        "\ndgspl vs manual-sticky: {:.0}% of the mid-crash downtime, {:.0}% of the crashes",
        100.0 * dgspl.hours(FaultCategory::MidJobDbCrash)
            / manual.hours(FaultCategory::MidJobDbCrash).max(0.01),
        100.0 * dgspl.db_crashes as f64 / manual.db_crashes.max(1) as f64,
    );
}
