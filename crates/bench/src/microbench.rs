//! Drop-in micro-benchmark harness with a criterion-compatible surface.
//!
//! The build container is fully offline, so `criterion` itself cannot be
//! compiled; this module supplies the small subset of its API the bench
//! targets use (`Criterion::bench_function`, `benchmark_group`,
//! `black_box`, the `criterion_group!`/`criterion_main!` macros) on top
//! of `std::time::Instant`. Each benchmark is warmed up, then timed over
//! batches until a wall-clock budget is spent; the mean, minimum, and
//! maximum per-iteration times are printed in a fixed-width table so
//! runs can be diffed.

// qoslint::allow-file(wall-clock, microbenchmark harness measures real elapsed time by design)
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration timing collected for one benchmark.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest batch, ns/iter.
    pub min_ns: f64,
    /// Slowest batch, ns/iter.
    pub max_ns: f64,
    /// Total iterations measured.
    pub iters: u64,
}

/// The timing loop handle passed to each benchmark closure.
pub struct Bencher {
    batches: Vec<(u64, Duration)>,
    budget: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Time `f` repeatedly: warm up, pick a batch size targeting ~10 ms
    /// per batch, then measure batches until the budget is exhausted.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Warm-up and batch-size calibration.
        let warm_start = Instant::now();
        let mut calib_iters = 0u64;
        while warm_start.elapsed() < self.warmup {
            black_box(f());
            calib_iters += 1;
        }
        let per_iter = self.warmup.as_secs_f64() / calib_iters.max(1) as f64;
        let batch = ((0.010 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let run_start = Instant::now();
        while run_start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.batches.push((batch, t0.elapsed()));
        }
    }

    fn sample(&self) -> Sample {
        let mut iters = 0u64;
        let mut total = 0.0f64;
        let mut min_ns = f64::INFINITY;
        let mut max_ns = 0.0f64;
        for &(n, d) in &self.batches {
            let ns = d.as_nanos() as f64 / n as f64;
            total += d.as_nanos() as f64;
            iters += n;
            min_ns = min_ns.min(ns);
            max_ns = max_ns.max(ns);
        }
        Sample {
            mean_ns: if iters == 0 {
                0.0
            } else {
                total / iters as f64
            },
            min_ns: if min_ns.is_finite() { min_ns } else { 0.0 },
            max_ns,
            iters,
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:9.3} s ", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:9.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:9.3} µs", ns / 1e3)
    } else {
        format!("{ns:9.1} ns")
    }
}

/// Top-level benchmark driver (criterion-compatible subset).
pub struct Criterion {
    budget: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // INTELLIQOS_BENCH_BUDGET_MS trades precision for wall time.
        let ms = std::env::var("INTELLIQOS_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300u64);
        Criterion {
            budget: Duration::from_millis(ms),
            warmup: Duration::from_millis(ms / 6 + 1),
        }
    }
}

impl Criterion {
    /// Run one named benchmark and print its timing row.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut f = f;
        let mut b = Bencher {
            batches: Vec::new(),
            budget: self.budget,
            warmup: self.warmup,
        };
        f(&mut b);
        let s = b.sample();
        println!(
            "{name:<44} mean {} min {} max {}  ({} iters)",
            fmt_ns(s.mean_ns),
            fmt_ns(s.min_ns),
            fmt_ns(s.max_ns),
            s.iters
        );
        self
    }

    /// Open a named group (the name prefixes each row).
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// Grouped benchmarks (criterion-compatible subset).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the wall-clock budget already
    /// bounds sampling.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Criterion-compatible group macro: defines a function running each
/// target against a fresh `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::microbench::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible main macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            warmup: Duration::from_millis(5),
        };
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_prefixes_and_finishes() {
        let mut c = Criterion {
            budget: Duration::from_millis(10),
            warmup: Duration::from_millis(2),
        };
        let mut g = c.benchmark_group("grp");
        g.sample_size(10);
        g.bench_function("noop", |b| b.iter(|| black_box(1)));
        g.finish();
    }

    #[test]
    fn ns_formatting_scales() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(2_500_000_000.0).contains("s"));
    }
}
