//! Timestamped measurement series.
//!
//! §3.5: "Different types of measurements were associated together by
//! matching their timestamps. Measurements were ordered by timestamp and
//! treated as a time series." This module provides exactly that: an
//! append-only `(SimTime, f64)` series with timestamp join, windowed
//! aggregation, and resampling — the operations the performance
//! intelliagents and the figure harnesses need.

use crate::stats::OnlineStats;
use crate::time::{SimDuration, SimTime};

/// An append-only, timestamp-ordered series of scalar measurements.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a point.
    ///
    /// # Panics
    /// Panics if `t` precedes the last appended timestamp — series are
    /// produced by a monotone simulation clock, so out-of-order appends
    /// indicate a bug in the caller.
    pub fn push(&mut self, t: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(t >= last, "time series must be appended in order");
        }
        self.points.push((t, value));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been appended.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// All points, oldest first.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Latest value, if any.
    pub fn last_value(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Value at or immediately before `t` (step interpolation — a
    /// measurement holds until the next one). `None` before the first
    /// point.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Summary statistics over points in `[from, to)`.
    pub fn window_stats(&self, from: SimTime, to: SimTime) -> OnlineStats {
        let mut s = OnlineStats::new();
        for &(t, v) in &self.points {
            if t >= from && t < to {
                s.push(v);
            }
        }
        s
    }

    /// Mean over the whole series (0 when empty).
    pub fn mean(&self) -> f64 {
        self.window_stats(SimTime::ZERO, SimTime(u64::MAX)).mean()
    }

    /// Resample onto a regular grid of `step` starting at `start`,
    /// producing `n` buckets, each the mean of the points inside it
    /// (empty buckets carry the previous bucket's value, or `None`-like
    /// `f64::NAN` when nothing has been seen yet).
    pub fn resample_mean(&self, start: SimTime, step: SimDuration, n: usize) -> Vec<f64> {
        assert!(!step.is_zero(), "resample step must be positive");
        let mut out = Vec::with_capacity(n);
        let mut last = f64::NAN;
        for i in 0..n {
            let lo = start + step.times(i as u64);
            let hi = start + step.times(i as u64 + 1);
            let stats = self.window_stats(lo, hi);
            if stats.count() > 0 {
                last = stats.mean();
            }
            out.push(last);
        }
        out
    }

    /// Join two series on (exactly) matching timestamps, applying `f` to
    /// each matched pair. This is the paper's "associate measurements by
    /// matching their timestamps".
    pub fn join_with<F: FnMut(SimTime, f64, f64) -> f64>(
        &self,
        other: &TimeSeries,
        mut f: F,
    ) -> TimeSeries {
        let mut out = TimeSeries::new();
        let (mut i, mut j) = (0, 0);
        while i < self.points.len() && j < other.points.len() {
            let (ta, va) = self.points[i];
            let (tb, vb) = other.points[j];
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(ta, f(ta, va, vb));
                    i += 1;
                    j += 1;
                }
            }
        }
        out
    }

    /// Count of points whose value strictly exceeds `threshold` within
    /// `[from, to)` — used by threshold-breach accounting.
    pub fn breaches(&self, threshold: f64, from: SimTime, to: SimTime) -> usize {
        self.points
            .iter()
            .filter(|&&(t, v)| t >= from && t < to && v > threshold)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn push_and_query() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        s.push(t(20), 2.5); // equal timestamps allowed
        assert_eq!(s.len(), 3);
        assert_eq!(s.last_value(), Some(2.5));
    }

    #[test]
    #[should_panic(expected = "appended in order")]
    fn out_of_order_push_panics() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(5), 2.0);
    }

    #[test]
    fn step_interpolation() {
        let mut s = TimeSeries::new();
        s.push(t(10), 1.0);
        s.push(t(20), 2.0);
        assert_eq!(s.value_at(t(5)), None);
        assert_eq!(s.value_at(t(10)), Some(1.0));
        assert_eq!(s.value_at(t(15)), Some(1.0));
        assert_eq!(s.value_at(t(20)), Some(2.0));
        assert_eq!(s.value_at(t(99)), Some(2.0));
    }

    #[test]
    fn window_stats_bounds_are_half_open() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i * 10), i as f64);
        }
        let w = s.window_stats(t(20), t(50)); // points at 20,30,40
        assert_eq!(w.count(), 3);
        assert!((w.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn resample_mean_fills_gaps() {
        let mut s = TimeSeries::new();
        s.push(t(0), 10.0);
        s.push(t(5), 20.0);
        s.push(t(25), 40.0);
        let r = s.resample_mean(t(0), SimDuration::from_secs(10), 4);
        assert_eq!(r[0], 15.0); // mean of 10 and 20
        assert_eq!(r[1], 15.0); // empty bucket carries forward
        assert_eq!(r[2], 40.0);
        assert_eq!(r[3], 40.0);
    }

    #[test]
    fn resample_before_first_point_is_nan() {
        let mut s = TimeSeries::new();
        s.push(t(100), 1.0);
        let r = s.resample_mean(t(0), SimDuration::from_secs(10), 2);
        assert!(r[0].is_nan() && r[1].is_nan());
    }

    #[test]
    fn timestamp_join() {
        let mut a = TimeSeries::new();
        let mut b = TimeSeries::new();
        a.push(t(0), 1.0);
        a.push(t(10), 2.0);
        a.push(t(20), 3.0);
        b.push(t(10), 10.0);
        b.push(t(15), 99.0);
        b.push(t(20), 20.0);
        let joined = a.join_with(&b, |_, x, y| x + y);
        assert_eq!(joined.points(), &[(t(10), 12.0), (t(20), 23.0)]);
    }

    #[test]
    fn breach_counting() {
        let mut s = TimeSeries::new();
        for i in 0..10 {
            s.push(t(i), i as f64);
        }
        assert_eq!(s.breaches(6.0, t(0), t(10)), 3); // 7, 8, 9
        assert_eq!(s.breaches(6.0, t(0), t(8)), 1); // 7 only
    }
}
