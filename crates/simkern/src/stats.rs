//! Online statistics and histograms for measurement collection.

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
///
/// Numerically stable over millions of samples, O(1) memory — suitable
/// for the per-metric accumulators the telemetry layer keeps for a whole
/// simulated year.
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples folded in.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample seen (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest sample seen (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Fixed-width-bin histogram over `[lo, hi)` with overflow/underflow
/// buckets, supporting percentile queries.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// `bins` equal-width buckets covering `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `hi <= lo` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total samples recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Raw bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`) by walking the bins;
    /// returns the upper edge of the bucket containing the quantile.
    /// Underflow maps to `lo`, overflow to `hi`. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + w * (i + 1) as f64);
            }
        }
        Some(self.hi)
    }

    /// Merge another histogram with identical shape.
    ///
    /// # Panics
    /// Panics when the ranges or bin counts differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.lo.to_bits(), other.lo.to_bits());
        assert_eq!(self.hi.to_bits(), other.hi.to_bits());
        assert_eq!(self.bins.len(), other.bins.len());
        for (a, b) in self.bins.iter_mut().zip(&other.bins) {
            *a += b;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_basic_moments() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn stats_empty_is_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut left = OnlineStats::new();
        let mut right = OnlineStats::new();
        xs[..37].iter().for_each(|&x| left.push(x));
        xs[37..].iter().for_each(|&x| right.push(x));
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-9);
        assert!((left.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn stats_merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(3.0);
        let b = OnlineStats::new();
        a.merge(&b);
        assert_eq!(a.count(), 1);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 3.0);
    }

    #[test]
    fn histogram_bins_and_edges() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(-1.0); // underflow
        h.record(0.0); // bin 0
        h.record(9.999); // bin 9
        h.record(10.0); // overflow
        h.record(5.5); // bin 5
        assert_eq!(h.count(), 5);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.bins()[0], 1);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let med = h.quantile(0.5).unwrap();
        assert!((med - 50.0).abs() <= 1.0, "median = {med}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((p99 - 99.0).abs() <= 1.0, "p99 = {p99}");
        assert_eq!(h.quantile(0.0).unwrap(), 1.0); // first non-empty bin edge
    }

    #[test]
    fn histogram_quantile_empty_is_none() {
        let h = Histogram::new(0.0, 1.0, 4);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        a.record(1.0);
        b.record(9.0);
        b.record(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.overflow(), 1);
        assert_eq!(a.bins()[0], 1);
        assert_eq!(a.bins()[4], 1);
    }

    #[test]
    #[should_panic]
    fn histogram_merge_shape_mismatch_panics() {
        let mut a = Histogram::new(0.0, 10.0, 5);
        let b = Histogram::new(0.0, 10.0, 6);
        a.merge(&b);
    }
}
