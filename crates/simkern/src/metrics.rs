//! In-tree metrics registry and wall-clock span profiler.
//!
//! The simulation's published numbers (Figure 2 tables, ablation rows)
//! need attached *evidence*: what the run actually did and where the
//! wall-clock time went. This module supplies the measurement layer:
//!
//! * [`MetricsRegistry`] — monotonic counters, gauges, and log-bucketed
//!   value histograms keyed by `&'static str` names;
//! * [`LogHistogram`] — power-of-two-bucketed `u64` histogram (latency
//!   in nanoseconds, sizes in bytes) with p50/p90/p99/max summaries and
//!   an exact running sum, O(1) memory regardless of sample count;
//! * [`Profiler`] — named wall-clock spans recorded into log histograms
//!   via a start/record pair that borrows nothing across the measured
//!   region (so it drops into `&mut self` event handlers).
//!
//! Everything follows the same discipline as [`crate::trace::Trace`]:
//! **zero cost when disabled**. A disabled registry's `inc`/`observe`
//! are a single branch; a disabled profiler's [`Profiler::start`] does
//! not even read the clock (it returns an empty [`SpanTimer`]), and
//! `record` returns immediately. Production runs pay nothing.
//!
//! Wall-clock readings come from [`std::time::Instant`] and are the one
//! deliberately non-deterministic measurement in the kernel: they never
//! feed back into simulation state, only into the emitted profile.

// qoslint::allow-file(wall-clock, this module IS the sanctioned clock shim: readings feed the emitted profile only, never simulation state)
use std::collections::BTreeMap;
use std::time::Instant;

/// Number of buckets in a [`LogHistogram`]: bucket 0 holds the value 0,
/// bucket `b` (1 ≤ b ≤ 64) holds values whose highest set bit is
/// `b - 1`, i.e. the range `[2^(b-1), 2^b)`.
pub const LOG_BUCKETS: usize = 65;

/// Log-bucketed `u64` histogram with exact count/sum/max and
/// percentile estimates from the bucket boundaries.
///
/// Quantile queries return the upper edge of the bucket holding the
/// requested rank (clamped to the exact maximum), so estimates are
/// accurate to within one power of two — plenty for "where did the time
/// go" profiles while keeping memory at a fixed 65 counters.
#[derive(Debug, Clone)]
pub struct LogHistogram {
    buckets: [u64; LOG_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; LOG_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        (64 - v.leading_zeros()) as usize
    }

    /// Upper edge (inclusive) of bucket `b`.
    fn bucket_hi(b: usize) -> u64 {
        if b == 0 {
            0
        } else if b >= 64 {
            u64::MAX
        } else {
            (1u64 << b) - 1
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Exact maximum sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// `q`-quantile estimate (`0.0 ≤ q ≤ 1.0`): upper edge of the bucket
    /// containing the rank, clamped to the exact max. `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_hi(b).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Condensed summary: count, sum, p50/p90/p99, max.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
            max: self.max,
        }
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// The five numbers a histogram row reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of samples.
    pub sum: u64,
    /// Median estimate.
    pub p50: u64,
    /// 90th-percentile estimate.
    pub p90: u64,
    /// 99th-percentile estimate.
    pub p99: u64,
    /// Exact maximum.
    pub max: u64,
}

/// Monotonic counters, gauges, and log histograms under one roof.
///
/// Disabled by default: every mutator is a single branch, and the maps
/// stay empty (no allocation). Enable with [`MetricsRegistry::enabled`].
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    enabled: bool,
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, LogHistogram>,
}

impl MetricsRegistry {
    /// A disabled registry (the default): mutators are no-ops.
    pub fn disabled() -> Self {
        MetricsRegistry::default()
    }

    /// An enabled, empty registry.
    pub fn enabled() -> Self {
        MetricsRegistry {
            enabled: true,
            ..MetricsRegistry::default()
        }
    }

    /// Is the registry recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, name: &'static str, n: u64) {
        if !self.enabled {
            return;
        }
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Set a gauge to `v` (last write wins).
    #[inline]
    pub fn set_gauge(&mut self, name: &'static str, v: f64) {
        if !self.enabled {
            return;
        }
        self.gauges.insert(name, v);
    }

    /// Record one sample into the named log histogram.
    #[inline]
    pub fn observe(&mut self, name: &'static str, v: u64) {
        if !self.enabled {
            return;
        }
        self.hists.entry(name).or_default().record(v);
    }

    /// Current value of a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.hists.get(name)
    }

    /// All counters, name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges, name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms, name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.hists.iter().map(|(&k, v)| (k, v))
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the other side's value, histograms merge. Used to combine
    /// per-subsystem (or per-shard) registries into one run total.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, v) in &other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name, *v);
        }
        for (name, h) in &other.hists {
            self.hists.entry(name).or_default().merge(h);
        }
    }
}

/// An in-flight span measurement. Empty when the profiler was disabled
/// at [`Profiler::start`] — the clock is never read on that path.
#[derive(Debug, Clone, Copy)]
pub struct SpanTimer(Option<Instant>);

impl SpanTimer {
    /// A timer that will record nothing.
    pub fn noop() -> Self {
        SpanTimer(None)
    }
}

/// Wall-clock span profiler: named spans accumulated into log
/// histograms of nanoseconds.
///
/// Usage is a start/record pair rather than a guard or closure so the
/// measured region can freely take `&mut self` on the world:
///
/// ```
/// # use intelliqos_simkern::metrics::Profiler;
/// let mut p = Profiler::enabled();
/// let t = p.start();
/// // ... measured work ...
/// p.record("sweep.service", t);
/// assert_eq!(p.span("sweep.service").unwrap().count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    enabled: bool,
    spans: BTreeMap<&'static str, LogHistogram>,
}

impl Profiler {
    /// A disabled profiler (the default): `start` never reads the
    /// clock, `record` is a no-op.
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// An enabled, empty profiler.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            spans: BTreeMap::new(),
        }
    }

    /// Is the profiler recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Begin a span. Cheap when disabled: no clock read, no allocation.
    #[inline]
    pub fn start(&self) -> SpanTimer {
        if self.enabled {
            SpanTimer(Some(Instant::now()))
        } else {
            SpanTimer(None)
        }
    }

    /// Close a span under `name`, returning the elapsed nanoseconds
    /// recorded (0 when the timer was empty / profiler disabled).
    #[inline]
    pub fn record(&mut self, name: &'static str, timer: SpanTimer) -> u64 {
        let Some(start) = timer.0 else {
            return 0;
        };
        if !self.enabled {
            return 0;
        }
        let ns = start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        self.spans.entry(name).or_default().record(ns);
        ns
    }

    /// The named span's histogram (nanoseconds), if it ever closed.
    pub fn span(&self, name: &str) -> Option<&LogHistogram> {
        self.spans.get(name)
    }

    /// Total nanoseconds accumulated under `name`.
    pub fn total_ns(&self, name: &str) -> u64 {
        self.spans.get(name).map(|h| h.sum()).unwrap_or(0)
    }

    /// All spans, name order.
    pub fn spans(&self) -> impl Iterator<Item = (&'static str, &LogHistogram)> + '_ {
        self.spans.iter().map(|(&k, v)| (k, v))
    }

    /// Fold another profiler's spans into this one.
    pub fn merge(&mut self, other: &Profiler) {
        for (name, h) in &other.spans {
            self.spans.entry(name).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_partition_the_u64_range() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(1023), 10);
        assert_eq!(LogHistogram::bucket_of(1024), 11);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        // Edges agree with membership: hi(b) is the largest value in b.
        for b in 1..64usize {
            assert_eq!(LogHistogram::bucket_of(LogHistogram::bucket_hi(b)), b);
            assert_eq!(
                LogHistogram::bucket_of(LogHistogram::bucket_hi(b) + 1),
                b + 1
            );
        }
    }

    #[test]
    fn histogram_counts_sums_and_max_are_exact() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 5, 100, 1000, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1_001_106);
        assert_eq!(h.max(), 1_000_000);
        assert!((h.mean() - 1_001_106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_bound_true_values_within_a_bucket() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.5).unwrap();
        // True median 500; estimate is the bucket edge above it.
        assert!((500..=1023).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99).unwrap();
        assert!((990..=1023).contains(&p99), "p99 = {p99}");
        // Max is exact, and q=1.0 returns it.
        assert_eq!(h.quantile(1.0), Some(1000));
        assert_eq!(h.summary().max, 1000);
    }

    #[test]
    fn quantile_of_empty_is_none() {
        assert_eq!(LogHistogram::new().quantile(0.5), None);
        assert_eq!(LogHistogram::new().summary(), HistSummary::default());
    }

    #[test]
    fn histogram_merge_equals_sequential() {
        let mut whole = LogHistogram::new();
        let mut left = LogHistogram::new();
        let mut right = LogHistogram::new();
        for v in 0..500u64 {
            whole.record(v * 7);
            if v % 2 == 0 {
                left.record(v * 7);
            } else {
                right.record(v * 7);
            }
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert_eq!(left.sum(), whole.sum());
        assert_eq!(left.max(), whole.max());
        assert_eq!(left.quantile(0.9), whole.quantile(0.9));
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let mut m = MetricsRegistry::disabled();
        m.inc("a");
        m.add("a", 10);
        m.set_gauge("g", 1.0);
        m.observe("h", 42);
        assert_eq!(m.counter("a"), 0);
        assert_eq!(m.gauge("g"), None);
        assert!(m.histogram("h").is_none());
        assert_eq!(m.counters().count(), 0);
    }

    #[test]
    fn enabled_registry_counts_and_observes() {
        let mut m = MetricsRegistry::enabled();
        m.inc("events");
        m.add("events", 4);
        m.set_gauge("load", 0.75);
        m.set_gauge("load", 0.5);
        m.observe("latency", 100);
        m.observe("latency", 200);
        assert_eq!(m.counter("events"), 5);
        assert_eq!(m.gauge("load"), Some(0.5));
        assert_eq!(m.histogram("latency").unwrap().count(), 2);
        assert_eq!(m.histogram("latency").unwrap().sum(), 300);
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::enabled();
        let mut b = MetricsRegistry::enabled();
        a.add("fault.injected", 3);
        b.add("fault.injected", 4);
        b.add("lsf.dispatched", 9);
        a.observe("bytes", 10);
        b.observe("bytes", 1000);
        b.set_gauge("dgspl.entries", 12.0);
        a.merge(&b);
        assert_eq!(a.counter("fault.injected"), 7);
        assert_eq!(a.counter("lsf.dispatched"), 9);
        assert_eq!(a.histogram("bytes").unwrap().count(), 2);
        assert_eq!(a.histogram("bytes").unwrap().max(), 1000);
        assert_eq!(a.gauge("dgspl.entries"), Some(12.0));
    }

    #[test]
    fn disabled_profiler_never_reads_the_clock() {
        let mut p = Profiler::disabled();
        let t = p.start();
        assert!(t.0.is_none(), "disabled start must not capture an instant");
        assert_eq!(p.record("x", t), 0);
        assert!(p.span("x").is_none());
        assert_eq!(p.spans().count(), 0);
    }

    #[test]
    fn enabled_profiler_accumulates_spans() {
        let mut p = Profiler::enabled();
        for _ in 0..3 {
            let t = p.start();
            std::hint::black_box(());
            p.record("work", t);
        }
        let h = p.span("work").unwrap();
        assert_eq!(h.count(), 3);
        assert_eq!(p.total_ns("work"), h.sum());
        assert!(h.summary().max >= h.summary().p50);
    }

    #[test]
    fn profiler_merge_combines_span_histograms() {
        let mut a = Profiler::enabled();
        let mut b = Profiler::enabled();
        let t = a.start();
        a.record("s", t);
        let t = b.start();
        b.record("s", t);
        let t = b.start();
        b.record("other", t);
        a.merge(&b);
        assert_eq!(a.span("s").unwrap().count(), 2);
        assert_eq!(a.span("other").unwrap().count(), 1);
    }

    /// qoslint's determinism contract in miniature: exported metric
    /// order is name order, never insertion order — two registries fed
    /// the same facts in different orders export identically, and so
    /// does a merged (shard-combined) registry. This is what keeps
    /// paired-run and multi-site evidence JSON byte-comparable.
    #[test]
    fn export_order_is_name_order_not_insertion_order() {
        let mut fwd = MetricsRegistry::enabled();
        fwd.inc("alpha");
        fwd.inc("mid");
        fwd.inc("zeta");
        fwd.set_gauge("g_a", 1.0);
        fwd.set_gauge("g_z", 2.0);

        let mut rev = MetricsRegistry::enabled();
        rev.set_gauge("g_z", 2.0);
        rev.set_gauge("g_a", 1.0);
        rev.inc("zeta");
        rev.inc("mid");
        rev.inc("alpha");

        let names = |r: &MetricsRegistry| {
            (
                r.counters().map(|(k, _)| k).collect::<Vec<_>>(),
                r.gauges().map(|(k, _)| k).collect::<Vec<_>>(),
            )
        };
        assert_eq!(names(&fwd), names(&rev));
        assert_eq!(names(&fwd).0, vec!["alpha", "mid", "zeta"]);

        // A merged registry (the sharded-run combine path) keeps the
        // same canonical order regardless of merge direction.
        let mut ab = fwd.clone();
        ab.merge(&rev);
        let mut ba = rev.clone();
        ba.merge(&fwd);
        assert_eq!(
            ab.counters().collect::<Vec<_>>(),
            ba.counters().collect::<Vec<_>>()
        );
    }
}
