//! Structured event tracing for the simulation kernel.
//!
//! Every subsystem (fault injector, intelliagents, admin pair, LSF
//! dispatcher, baseline ops) can emit structured events into a single
//! [`Trace`] owned by the run. The trace is **zero-cost when disabled**:
//! `emit` takes the detail as a closure and returns before evaluating it
//! unless tracing is on, so a production run pays one branch per call
//! site and nothing else.
//!
//! Retention follows the paper's circular-measurement-file discipline
//! (§3.5): a bounded ring keeps the most recent events, per-subsystem
//! counters keep exact lifetime totals even after eviction. Rendered
//! lines use the same pipe-delimited flat-ASCII shape as the ontology
//! documents, so a trace dump greps like everything else in the system.

use crate::ring::CircularQueue;
use crate::time::SimTime;

/// Which layer of the system emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The fault tape / injector.
    Fault,
    /// Any intelliagent sweep.
    Agent,
    /// The administration-pair (DLSP collection, DGSPL regeneration,
    /// rescheduling decisions).
    Admin,
    /// The LSF-like batch dispatcher.
    Lsf,
    /// Manual-operations baseline (human detection/repair).
    Manual,
    /// Workload tape: job arrivals and completions.
    Workload,
    /// The simulation kernel itself (run lifecycle markers).
    Kernel,
}

impl Subsystem {
    /// All subsystems, in counter order.
    pub const ALL: [Subsystem; 7] = [
        Subsystem::Fault,
        Subsystem::Agent,
        Subsystem::Admin,
        Subsystem::Lsf,
        Subsystem::Manual,
        Subsystem::Workload,
        Subsystem::Kernel,
    ];

    /// Short lower-case tag used in rendered lines.
    pub fn tag(self) -> &'static str {
        match self {
            Subsystem::Fault => "fault",
            Subsystem::Agent => "agent",
            Subsystem::Admin => "admin",
            Subsystem::Lsf => "lsf",
            Subsystem::Manual => "manual",
            Subsystem::Workload => "work",
            Subsystem::Kernel => "kern",
        }
    }

    fn index(self) -> usize {
        match self {
            Subsystem::Fault => 0,
            Subsystem::Agent => 1,
            Subsystem::Admin => 2,
            Subsystem::Lsf => 3,
            Subsystem::Manual => 4,
            Subsystem::Workload => 5,
            Subsystem::Kernel => 6,
        }
    }
}

/// One retained trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number over the trace's lifetime (0-based);
    /// survives ring eviction, so gaps at the front reveal how much
    /// history was dropped.
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Short machine-stable event code, e.g. `inject`, `detect`, `repair`.
    pub code: &'static str,
    /// Free-form detail (already rendered; escaped on output).
    pub detail: String,
}

impl TraceEvent {
    /// Pipe-delimited single-line rendering:
    /// `seq|at_secs|subsystem|code|detail` with `|` and newlines escaped
    /// inside the detail so the line stays greppable and splittable.
    pub fn render(&self) -> String {
        let mut detail = String::with_capacity(self.detail.len());
        for ch in self.detail.chars() {
            match ch {
                '|' => detail.push_str("\\p"),
                '\\' => detail.push_str("\\\\"),
                '\n' => detail.push_str("\\n"),
                '\r' => detail.push_str("\\r"),
                c => detail.push(c),
            }
        }
        format!(
            "{}|{}|{}|{}|{}",
            self.seq,
            self.at.as_secs(),
            self.subsystem.tag(),
            self.code,
            detail
        )
    }
}

/// Default ring capacity: enough for the interesting tail of a year-long
/// run without letting a pathological run grow without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// A run-wide structured event log.
///
/// Construct with [`Trace::disabled`] (the default for production
/// simulations — every `emit` is a single branch) or [`Trace::enabled`].
#[derive(Debug, Clone)]
pub struct Trace {
    enabled: bool,
    ring: CircularQueue<TraceEvent>,
    next_seq: u64,
    counts: [u64; Subsystem::ALL.len()],
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A disabled trace: `emit` returns immediately, nothing is retained.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            // Capacity 1: the ring is never pushed to while disabled.
            ring: CircularQueue::new(1),
            next_seq: 0,
            counts: [0; Subsystem::ALL.len()],
        }
    }

    /// An enabled trace retaining the last [`DEFAULT_TRACE_CAPACITY`]
    /// events.
    pub fn enabled() -> Self {
        Trace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled trace retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace {
            enabled: true,
            ring: CircularQueue::new(capacity),
            next_seq: 0,
            counts: [0; Subsystem::ALL.len()],
        }
    }

    /// Is the trace recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event. `detail` is only evaluated when the trace is
    /// enabled — pass the formatting closure, not a formatted string, at
    /// hot call sites.
    #[inline]
    pub fn emit(
        &mut self,
        at: SimTime,
        subsystem: Subsystem,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counts[subsystem.index()] += 1;
        self.ring.push(TraceEvent {
            seq,
            at,
            subsystem,
            code,
            detail: detail(),
        });
    }

    /// Lifetime event count for one subsystem (evicted events included).
    pub fn count(&self, subsystem: Subsystem) -> u64 {
        self.counts[subsystem.index()]
    }

    /// Lifetime event count across all subsystems.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// How many events the ring has dropped.
    pub fn evicted(&self) -> u64 {
        self.ring.evicted_count()
    }

    /// Retained events, oldest → newest.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Retained events rendered as pipe-delimited lines, oldest → newest.
    pub fn render_lines(&self) -> Vec<String> {
        self.ring.iter().map(TraceEvent::render).collect()
    }

    /// Per-subsystem lifetime counters as `(tag, count)` pairs, in
    /// [`Subsystem::ALL`] order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Subsystem::ALL
            .iter()
            .map(|&s| (s.tag(), self.counts[s.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_never_evaluates_detail() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.emit(SimTime::ZERO, Subsystem::Fault, "inject", || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated);
        assert_eq!(t.total(), 0);
        assert_eq!(t.count(Subsystem::Fault), 0);
        assert!(t.events().next().is_none());
    }

    #[test]
    fn enabled_trace_records_and_counts() {
        let mut t = Trace::enabled();
        t.emit(SimTime::from_secs(5), Subsystem::Fault, "inject", || {
            "db000|MidJobDbCrash".into()
        });
        t.emit(SimTime::from_secs(9), Subsystem::Agent, "detect", || {
            "db000".into()
        });
        assert_eq!(t.total(), 2);
        assert_eq!(t.count(Subsystem::Fault), 1);
        assert_eq!(t.count(Subsystem::Agent), 1);
        assert_eq!(t.count(Subsystem::Lsf), 0);
        let lines = t.render_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "0|5|fault|inject|db000\\pMidJobDbCrash");
        assert_eq!(lines[1], "1|9|agent|detect|db000");
    }

    #[test]
    fn ring_evicts_but_counters_survive() {
        let mut t = Trace::with_capacity(4);
        for i in 0..10u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Workload, "arrive", || {
                String::new()
            });
        }
        assert_eq!(t.total(), 10);
        assert_eq!(t.count(Subsystem::Workload), 10);
        assert_eq!(t.evicted(), 6);
        let seqs: Vec<u64> = t.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn render_escapes_structural_characters() {
        let e = TraceEvent {
            seq: 3,
            at: SimTime::from_secs(60),
            subsystem: Subsystem::Admin,
            code: "dgspl",
            detail: "a|b\\c\nd\re".into(),
        };
        assert_eq!(e.render(), "3|60|admin|dgspl|a\\pb\\\\c\\nd\\re");
        // Exactly five pipe-separated columns survive.
        assert_eq!(e.render().split('|').count(), 5);
    }

    #[test]
    fn counters_listing_covers_all_subsystems() {
        let t = Trace::enabled();
        let tags: Vec<&str> = t.counters().into_iter().map(|(tag, _)| tag).collect();
        assert_eq!(
            tags,
            vec!["fault", "agent", "admin", "lsf", "manual", "work", "kern"]
        );
    }
}
