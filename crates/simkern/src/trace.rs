//! Structured event tracing for the simulation kernel.
//!
//! Every subsystem (fault injector, intelliagents, admin pair, LSF
//! dispatcher, baseline ops) can emit structured events into a single
//! [`Trace`] owned by the run. The trace is **zero-cost when disabled**:
//! `emit` takes the detail as a closure and returns before evaluating it
//! unless tracing is on, so a production run pays one branch per call
//! site and nothing else.
//!
//! Retention is pluggable behind the [`TraceSink`] trait:
//!
//! * [`RingSink`] follows the paper's circular-measurement-file
//!   discipline (§3.5): a bounded ring keeps the most recent events
//!   (with optional dedicated per-subsystem rings), per-subsystem
//!   counters keep exact lifetime totals even after eviction.
//! * [`SpillSink`] is the flight recorder: every event is appended to
//!   chunked JSONL files on disk (nothing is ever lost), while a
//!   bounded in-memory tail keeps recent events available to
//!   in-process consumers (divergence finder, `triage`).
//!
//! Rendered lines use the same pipe-delimited flat-ASCII shape as the
//! ontology documents, so a trace dump greps like everything else in
//! the system.
//!
//! Events may carry a **correlation id** (the incident id they belong
//! to) so a post-hoc reader can reassemble the complete causal
//! timeline of one incident: inject → detect → diagnose → heal or
//! escalate. Correlation ids never appear in the rendered pipe lines —
//! the flat-ASCII shape is stable — but they are written to spill
//! records and are queryable in-process.

use std::io::Write;
use std::path::PathBuf;

use crate::ring::CircularQueue;
use crate::time::SimTime;

/// Which layer of the system emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Subsystem {
    /// The fault tape / injector.
    Fault,
    /// Any intelliagent sweep.
    Agent,
    /// The administration-pair (DLSP collection, DGSPL regeneration,
    /// rescheduling decisions).
    Admin,
    /// The LSF-like batch dispatcher.
    Lsf,
    /// Manual-operations baseline (human detection/repair).
    Manual,
    /// Workload tape: job arrivals and completions.
    Workload,
    /// The simulation kernel itself (run lifecycle markers).
    Kernel,
    /// The online SLO observatory (availability budgets, burn alerts).
    Slo,
}

impl Subsystem {
    /// All subsystems, in counter order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::Fault,
        Subsystem::Agent,
        Subsystem::Admin,
        Subsystem::Lsf,
        Subsystem::Manual,
        Subsystem::Workload,
        Subsystem::Kernel,
        Subsystem::Slo,
    ];

    /// Short lower-case tag used in rendered lines.
    pub fn tag(self) -> &'static str {
        match self {
            Subsystem::Fault => "fault",
            Subsystem::Agent => "agent",
            Subsystem::Admin => "admin",
            Subsystem::Lsf => "lsf",
            Subsystem::Manual => "manual",
            Subsystem::Workload => "work",
            Subsystem::Kernel => "kern",
            Subsystem::Slo => "slo",
        }
    }

    /// Inverse of [`Subsystem::tag`]; used by CLI per-subsystem options.
    pub fn from_tag(tag: &str) -> Option<Subsystem> {
        Subsystem::ALL.iter().copied().find(|s| s.tag() == tag)
    }

    fn index(self) -> usize {
        match self {
            Subsystem::Fault => 0,
            Subsystem::Agent => 1,
            Subsystem::Admin => 2,
            Subsystem::Lsf => 3,
            Subsystem::Manual => 4,
            Subsystem::Workload => 5,
            Subsystem::Kernel => 6,
            Subsystem::Slo => 7,
        }
    }
}

/// One declared trace category: a `(Subsystem, code)` pair plus the
/// one-line documentation that makes the taxonomy reviewable.
///
/// The registry below is the **closed world** of trace categories.
/// Three layers consume it: `Trace::emit`/`emit_corr` panic on an
/// unregistered pair (when tracing is enabled), qoslint's trace
/// ontology rules check every emit call site statically, and evdb
/// validates `--category` / `--subsystem` query arguments against it —
/// so a typo'd category can neither be emitted, committed, nor silently
/// queried into an empty result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategorySpec {
    /// The only subsystem allowed to emit this code.
    pub subsystem: Subsystem,
    /// The machine-stable event code, e.g. `"db-crash"`.
    pub code: &'static str,
    /// What an event with this code means. Must be non-empty — the
    /// `trace-undocumented` lint rule and a unit test both enforce it.
    pub doc: &'static str,
}

/// Every `(Subsystem, code)` pair the system may emit. Adding a
/// category means adding a row here (with documentation) *first*; both
/// the runtime validator and the static checker refuse anything else.
pub const TRACE_REGISTRY: &[CategorySpec] = &[
    CategorySpec {
        subsystem: Subsystem::Fault,
        code: "inject",
        doc: "the fault tape injected a fault into the world",
    },
    CategorySpec {
        subsystem: Subsystem::Fault,
        code: "db-crash",
        doc: "the mid-job database crash mechanism fired",
    },
    CategorySpec {
        subsystem: Subsystem::Agent,
        code: "diagnose",
        doc: "an intelliagent sweep pinned a fault down to a cause",
    },
    CategorySpec {
        subsystem: Subsystem::Agent,
        code: "local-heal",
        doc: "an intelliagent repaired the fault locally on the server",
    },
    CategorySpec {
        subsystem: Subsystem::Agent,
        code: "e2e-fail",
        doc: "an end-to-end probe failed: detected, but not locally repairable",
    },
    CategorySpec {
        subsystem: Subsystem::Agent,
        code: "restore",
        doc: "an agent-driven service restart brought the service back",
    },
    CategorySpec {
        subsystem: Subsystem::Admin,
        code: "cron-repair",
        doc: "the admin pair re-enabled a disabled crontab",
    },
    CategorySpec {
        subsystem: Subsystem::Admin,
        code: "resubmit",
        doc: "the admin pair resubmitted jobs killed by a fault",
    },
    CategorySpec {
        subsystem: Subsystem::Admin,
        code: "dgspl",
        doc: "DGSPL regeneration produced a new dispatch schedule",
    },
    CategorySpec {
        subsystem: Subsystem::Lsf,
        code: "dispatch",
        doc: "the dispatcher placed a batch job on a server",
    },
    CategorySpec {
        subsystem: Subsystem::Lsf,
        code: "done",
        doc: "a batch job ran to completion",
    },
    CategorySpec {
        subsystem: Subsystem::Manual,
        code: "pipeline",
        doc: "the human detection/paging/repair pipeline was scheduled",
    },
    CategorySpec {
        subsystem: Subsystem::Manual,
        code: "restore",
        doc: "a human repair closed the incident",
    },
    CategorySpec {
        subsystem: Subsystem::Workload,
        code: "submit",
        doc: "the workload tape submitted a batch job",
    },
    CategorySpec {
        subsystem: Subsystem::Kernel,
        code: "run-start",
        doc: "a simulation run began",
    },
    CategorySpec {
        subsystem: Subsystem::Kernel,
        code: "run-end",
        doc: "a simulation run reached its horizon",
    },
    CategorySpec {
        subsystem: Subsystem::Kernel,
        code: "tick",
        doc: "kernel heartbeat used by the bench harness",
    },
    CategorySpec {
        subsystem: Subsystem::Slo,
        code: "burn-alert",
        doc: "an error-budget burn crossed the paging threshold",
    },
    CategorySpec {
        subsystem: Subsystem::Slo,
        code: "classified",
        doc: "an incident was assigned its failure class at ledger close",
    },
    CategorySpec {
        subsystem: Subsystem::Slo,
        code: "burn-scope",
        doc: "a run declared which failure classes burn the error budget",
    },
];

/// Edit distance at or under which an unregistered code is reported as
/// a near-miss of a registered one ("did you mean ...?").
pub const NEAR_MISS_DISTANCE: usize = 2;

/// Look a `(subsystem, code)` pair up in the registry.
pub fn registry_lookup(subsystem: Subsystem, code: &str) -> Option<&'static CategorySpec> {
    TRACE_REGISTRY
        .iter()
        .find(|s| s.subsystem == subsystem && s.code == code)
}

/// All registered codes, sorted and deduplicated — the vocabulary evdb
/// accepts for trace category queries.
pub fn registered_codes() -> Vec<&'static str> {
    let mut codes: Vec<&'static str> = TRACE_REGISTRY.iter().map(|s| s.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

/// Levenshtein edit distance, used for near-miss suggestions.
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The registered code nearest to `code` by edit distance, with the
/// distance. `None` only when the registry is empty.
pub fn nearest_registered_code(code: &str) -> Option<(&'static str, usize)> {
    registered_codes()
        .into_iter()
        .map(|c| (c, edit_distance(code, c)))
        .min_by_key(|&(c, d)| (d, c))
}

/// Check a `(subsystem, code)` pair against the registry. The error
/// string distinguishes the three failure modes — wrong subsystem,
/// near-miss typo, and plain unknown — because each wants a different
/// fix.
pub fn validate_category(subsystem: Subsystem, code: &str) -> Result<(), String> {
    if registry_lookup(subsystem, code).is_some() {
        return Ok(());
    }
    let elsewhere: Vec<&'static str> = TRACE_REGISTRY
        .iter()
        .filter(|s| s.code == code)
        .map(|s| s.subsystem.tag())
        .collect();
    if !elsewhere.is_empty() {
        return Err(format!(
            "trace category {code:?} is registered under `{}`, not `{}`",
            elsewhere.join("`/`"),
            subsystem.tag()
        ));
    }
    match nearest_registered_code(code) {
        Some((near, d)) if d <= NEAR_MISS_DISTANCE => Err(format!(
            "unregistered trace category ({}, {code:?}); did you mean {near:?}?",
            subsystem.tag()
        )),
        _ => Err(format!(
            "unregistered trace category ({}, {code:?}); declare it in \
             simkern::trace::TRACE_REGISTRY",
            subsystem.tag()
        )),
    }
}

/// One retained trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number over the trace's lifetime (0-based);
    /// survives ring eviction, so gaps at the front reveal how much
    /// history was dropped.
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Short machine-stable event code, e.g. `inject`, `detect`, `repair`.
    pub code: &'static str,
    /// Correlation id: the incident this event belongs to, when known.
    /// Not part of the rendered pipe line (the flat-ASCII shape is
    /// stable); written to spill records as `corr`.
    pub corr: Option<u64>,
    /// Free-form detail (already rendered; escaped on output).
    pub detail: String,
}

impl TraceEvent {
    /// Pipe-delimited single-line rendering:
    /// `seq|at_secs|subsystem|code|detail` with `|` and newlines escaped
    /// inside the detail so the line stays greppable and splittable.
    pub fn render(&self) -> String {
        let mut detail = String::with_capacity(self.detail.len());
        for ch in self.detail.chars() {
            match ch {
                '|' => detail.push_str("\\p"),
                '\\' => detail.push_str("\\\\"),
                '\n' => detail.push_str("\\n"),
                '\r' => detail.push_str("\\r"),
                c => detail.push(c),
            }
        }
        format!(
            "{}|{}|{}|{}|{}",
            self.seq,
            self.at.as_secs(),
            self.subsystem.tag(),
            self.code,
            detail
        )
    }

    /// One spill record: a single JSON object per line (JSONL). The
    /// `corr` key is present only when the event is incident-correlated.
    pub fn render_jsonl(&self) -> String {
        let mut line = String::with_capacity(self.detail.len() + 64);
        line.push_str("{\"seq\":");
        line.push_str(&self.seq.to_string());
        line.push_str(",\"at\":");
        line.push_str(&self.at.as_secs().to_string());
        line.push_str(",\"subsystem\":\"");
        line.push_str(self.subsystem.tag());
        line.push_str("\",\"code\":\"");
        line.push_str(self.code);
        line.push('"');
        if let Some(c) = self.corr {
            line.push_str(",\"corr\":");
            line.push_str(&c.to_string());
        }
        line.push_str(",\"detail\":\"");
        json_escape_into(&self.detail, &mut line);
        line.push_str("\"}");
        line
    }
}

/// Escape `s` for inclusion inside a JSON string literal.
fn json_escape_into(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Default ring capacity: enough for the interesting tail of a year-long
/// run without letting a pathological run grow without bound.
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Default spill chunk size, in records per JSONL chunk file.
pub const DEFAULT_CHUNK_RECORDS: usize = 65_536;

/// Name of the spill-directory manifest written by [`SpillSink::flush`].
pub const SPILL_MANIFEST: &str = "manifest.json";

/// Where recorded events go. The trace owns exactly one sink; the sink
/// decides what is retained in memory, what is persisted, and what is
/// dropped. Sinks are `Send` so traced worlds can run on the paired
/// before/after threads.
pub trait TraceSink: std::fmt::Debug + Send {
    /// Consume one event. Events arrive in strictly increasing `seq`
    /// order.
    fn record(&mut self, ev: TraceEvent);

    /// Events still available in memory, oldest → newest. Spill sinks
    /// retain a bounded tail; the full stream lives on disk.
    fn retained(&self) -> Vec<&TraceEvent>;

    /// Events durably lost: evicted from a ring with no disk copy, or
    /// failed to reach disk. A spill sink that is keeping up reports 0.
    fn dropped(&self) -> u64;

    /// Per-subsystem breakdown of [`TraceSink::dropped`], in
    /// [`Subsystem::ALL`] order.
    fn dropped_by_subsystem(&self) -> [u64; Subsystem::ALL.len()];

    /// Retroactively attach a correlation id to the most recently
    /// recorded event. Used when an event is emitted just before the
    /// incident it belongs to is opened (e.g. the fault injector's
    /// `inject` line).
    fn set_last_corr(&mut self, corr: u64);

    /// Flush buffered output to durable storage (no-op for rings).
    fn flush(&mut self) -> Result<(), String>;

    /// Stable sink name for exports: `"ring"` or `"spill"`.
    fn kind(&self) -> &'static str;
}

/// The in-memory ring sink: a shared bounded ring, plus optional
/// dedicated rings for individual subsystems so a chatty subsystem
/// (workload, LSF) cannot evict the sparse one you are triaging.
#[derive(Debug)]
pub struct RingSink {
    shared: CircularQueue<TraceEvent>,
    per: Vec<(Subsystem, CircularQueue<TraceEvent>)>,
    dropped_by: [u64; Subsystem::ALL.len()],
}

impl RingSink {
    /// A ring sink with one shared ring of `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        RingSink {
            shared: CircularQueue::new(capacity),
            per: Vec::new(),
            dropped_by: [0; Subsystem::ALL.len()],
        }
    }

    /// Give `subsystem` its own dedicated ring of `capacity` events;
    /// its events no longer compete with the shared ring.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_subsystem_capacity(mut self, subsystem: Subsystem, capacity: usize) -> Self {
        if let Some(slot) = self.per.iter_mut().find(|(s, _)| *s == subsystem) {
            slot.1 = CircularQueue::new(capacity);
        } else {
            self.per.push((subsystem, CircularQueue::new(capacity)));
        }
        self
    }

    fn ring_for(&mut self, subsystem: Subsystem) -> &mut CircularQueue<TraceEvent> {
        match self.per.iter_mut().find(|(s, _)| *s == subsystem) {
            Some((_, ring)) => ring,
            None => &mut self.shared,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        let sub = ev.subsystem;
        if let Some(evicted) = self.ring_for(sub).push(ev) {
            self.dropped_by[evicted.subsystem.index()] += 1;
        }
    }

    fn retained(&self) -> Vec<&TraceEvent> {
        if self.per.is_empty() {
            return self.shared.iter().collect();
        }
        let mut all: Vec<&TraceEvent> = self.shared.iter().collect();
        for (_, ring) in &self.per {
            all.extend(ring.iter());
        }
        all.sort_by_key(|e| e.seq);
        all
    }

    fn dropped(&self) -> u64 {
        self.dropped_by.iter().sum()
    }

    fn dropped_by_subsystem(&self) -> [u64; Subsystem::ALL.len()] {
        self.dropped_by
    }

    fn set_last_corr(&mut self, corr: u64) {
        // The most recently recorded event is the back entry with the
        // globally highest seq across all rings.
        let mut best: Option<(Option<usize>, u64)> = self.shared.back().map(|e| (None, e.seq));
        for (i, (_, ring)) in self.per.iter().enumerate() {
            if let Some(e) = ring.back() {
                if best.is_none_or(|(_, s)| e.seq > s) {
                    best = Some((Some(i), e.seq));
                }
            }
        }
        let back = match best {
            Some((Some(i), _)) => self.per[i].1.back_mut(),
            Some((None, _)) => self.shared.back_mut(),
            None => None,
        };
        if let Some(e) = back {
            e.corr = Some(corr);
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        Ok(())
    }

    fn kind(&self) -> &'static str {
        "ring"
    }
}

/// Configuration for the spill-to-disk sink.
#[derive(Debug, Clone)]
pub struct SpillConfig {
    /// Directory receiving `chunk-NNNNN.jsonl` files and the manifest.
    /// Created on first write.
    pub dir: PathBuf,
    /// Records per chunk file before rotating to the next chunk.
    pub chunk_records: usize,
    /// Capacity of the in-memory tail kept for in-process consumers.
    pub tail_capacity: usize,
}

impl SpillConfig {
    /// Spill into `dir` with default chunking and tail retention.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SpillConfig {
            dir: dir.into(),
            chunk_records: DEFAULT_CHUNK_RECORDS,
            tail_capacity: DEFAULT_TRACE_CAPACITY,
        }
    }
}

/// The flight recorder: every event is appended to chunked JSONL files
/// under [`SpillConfig::dir`], so nothing is lost no matter how long
/// the run; a bounded tail ring keeps recent events for in-process
/// consumers. [`SpillSink::flush`] writes a `manifest.json` naming
/// every chunk and its record count so a validator can detect
/// truncation.
///
/// Writing is deliberately one event behind: the newest event is held
/// pending so a correlation id assigned immediately after emission
/// (see [`TraceSink::set_last_corr`]) still reaches the disk record.
#[derive(Debug)]
pub struct SpillSink {
    cfg: SpillConfig,
    tail: CircularQueue<TraceEvent>,
    pending: Option<TraceEvent>,
    writer: Option<std::io::BufWriter<std::fs::File>>,
    records_in_chunk: u64,
    chunks_done: Vec<(String, u64)>,
    written_total: u64,
    io_errors: u64,
    io_errors_by: [u64; Subsystem::ALL.len()],
    last_error: Option<String>,
}

impl SpillSink {
    /// A spill sink writing under `cfg.dir`. The directory is created
    /// lazily on the first record.
    ///
    /// # Panics
    /// Panics if `cfg.chunk_records == 0` or `cfg.tail_capacity == 0`.
    pub fn new(cfg: SpillConfig) -> Self {
        assert!(cfg.chunk_records > 0, "spill chunk size must be positive");
        let tail = CircularQueue::new(cfg.tail_capacity);
        SpillSink {
            cfg,
            tail,
            pending: None,
            writer: None,
            records_in_chunk: 0,
            chunks_done: Vec::new(),
            written_total: 0,
            io_errors: 0,
            io_errors_by: [0; Subsystem::ALL.len()],
            last_error: None,
        }
    }

    /// Records written to disk so far (the newest event may still be
    /// pending in memory until the next record or flush).
    pub fn written_total(&self) -> u64 {
        self.written_total
    }

    /// The most recent IO error, if any write has failed.
    pub fn last_error(&self) -> Option<&str> {
        self.last_error.as_deref()
    }

    fn chunk_name(index: usize) -> String {
        format!("chunk-{index:05}.jsonl")
    }

    fn note_error(&mut self, sub: Subsystem, err: String) {
        self.io_errors += 1;
        self.io_errors_by[sub.index()] += 1;
        self.last_error = Some(err);
    }

    fn write_out(&mut self, ev: &TraceEvent) {
        if self.writer.is_none() {
            if let Err(e) = std::fs::create_dir_all(&self.cfg.dir) {
                self.note_error(
                    ev.subsystem,
                    format!("create {}: {e}", self.cfg.dir.display()),
                );
                return;
            }
            let path = self.cfg.dir.join(Self::chunk_name(self.chunks_done.len()));
            match std::fs::File::create(&path) {
                Ok(f) => self.writer = Some(std::io::BufWriter::new(f)),
                Err(e) => {
                    self.note_error(ev.subsystem, format!("create {}: {e}", path.display()));
                    return;
                }
            }
        }
        let line = ev.render_jsonl();
        let ok = match self.writer.as_mut() {
            Some(w) => writeln!(w, "{line}").map_err(|e| e.to_string()),
            None => Err("spill writer unavailable".to_string()),
        };
        match ok {
            Ok(()) => {
                self.records_in_chunk += 1;
                self.written_total += 1;
                if self.records_in_chunk >= self.cfg.chunk_records as u64 {
                    self.rotate_chunk();
                }
            }
            Err(e) => self.note_error(ev.subsystem, e),
        }
    }

    fn rotate_chunk(&mut self) {
        if let Some(mut w) = self.writer.take() {
            if let Err(e) = w.flush() {
                self.last_error = Some(e.to_string());
                self.io_errors += 1;
            }
        }
        self.chunks_done.push((
            Self::chunk_name(self.chunks_done.len()),
            self.records_in_chunk,
        ));
        self.records_in_chunk = 0;
    }

    fn write_manifest(&mut self) -> Result<(), String> {
        let mut chunks: Vec<(String, u64)> = self.chunks_done.clone();
        if self.records_in_chunk > 0 {
            chunks.push((Self::chunk_name(chunks.len()), self.records_in_chunk));
        }
        let mut body = String::with_capacity(256);
        body.push_str("{\n  \"report\": \"trace_spill\",\n");
        body.push_str(&format!(
            "  \"chunk_records\": {},\n  \"total\": {},\n  \"io_errors\": {},\n",
            self.cfg.chunk_records, self.written_total, self.io_errors
        ));
        body.push_str("  \"chunks\": [");
        for (i, (name, records)) in chunks.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "\n    {{\"file\": \"{name}\", \"records\": {records}}}"
            ));
        }
        if !chunks.is_empty() {
            body.push_str("\n  ");
        }
        body.push_str("]\n}\n");
        std::fs::create_dir_all(&self.cfg.dir)
            .map_err(|e| format!("create {}: {e}", self.cfg.dir.display()))?;
        let path = self.cfg.dir.join(SPILL_MANIFEST);
        std::fs::write(&path, body).map_err(|e| format!("write {}: {e}", path.display()))
    }
}

impl TraceSink for SpillSink {
    fn record(&mut self, ev: TraceEvent) {
        if let Some(prev) = self.pending.take() {
            self.write_out(&prev);
        }
        self.tail.push(ev.clone());
        self.pending = Some(ev);
    }

    fn retained(&self) -> Vec<&TraceEvent> {
        self.tail.iter().collect()
    }

    fn dropped(&self) -> u64 {
        // Tail evictions are not losses — the disk copy has the event.
        self.io_errors
    }

    fn dropped_by_subsystem(&self) -> [u64; Subsystem::ALL.len()] {
        self.io_errors_by
    }

    fn set_last_corr(&mut self, corr: u64) {
        if let Some(ev) = self.pending.as_mut() {
            ev.corr = Some(corr);
        }
        if let Some(ev) = self.tail.back_mut() {
            ev.corr = Some(corr);
        }
    }

    fn flush(&mut self) -> Result<(), String> {
        if let Some(prev) = self.pending.take() {
            self.write_out(&prev);
        }
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.flush() {
                let msg = e.to_string();
                self.io_errors += 1;
                self.last_error = Some(msg.clone());
                return Err(msg);
            }
        }
        self.write_manifest()
    }

    fn kind(&self) -> &'static str {
        "spill"
    }
}

impl Drop for SpillSink {
    fn drop(&mut self) {
        // Best-effort: don't lose the pending event or the manifest if
        // the owner forgot the final flush.
        let _ = self.flush();
    }
}

/// One record read back from a spill chunk: the parsed form of
/// [`TraceEvent::render_jsonl`]. `code` is owned — the writing
/// process's static string table is gone by read time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpillRecord {
    /// Sequence number as written.
    pub seq: u64,
    /// Simulated time of the event.
    pub at: SimTime,
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Machine-stable event code.
    pub code: String,
    /// Correlation id, when the record carried one.
    pub corr: Option<u64>,
    /// Free-form detail, unescaped.
    pub detail: String,
}

/// Positional reader over one spill JSONL line. The writer emits a
/// fixed key order (`seq`, `at`, `subsystem`, `code`, optional `corr`,
/// `detail`), so the reader can be a cursor rather than a JSON parser.
struct LineCursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> LineCursor<'a> {
    fn tag(&mut self, lit: &str) -> Result<(), String> {
        let end = self.pos + lit.len();
        if self.bytes.get(self.pos..end) == Some(lit.as_bytes()) {
            self.pos = end;
            Ok(())
        } else {
            Err(format!("expected {lit:?} at byte {}", self.pos))
        }
    }

    fn peek(&self, lit: &str) -> bool {
        self.bytes
            .get(self.pos..self.pos + lit.len())
            .is_some_and(|s| s == lit.as_bytes())
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected a number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    /// A quoted value with no escapes (subsystem tags, event codes);
    /// consumes the closing quote.
    fn plain_string(&mut self) -> Result<String, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'"' => {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| format!("bad UTF-8 at byte {start}"))?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                b'\\' => return Err(format!("unexpected escape at byte {}", self.pos)),
                _ => self.pos += 1,
            }
        }
        Err(format!("unterminated string at byte {start}"))
    }

    /// A quoted value with JSON escapes (the detail field); consumes
    /// the closing quote.
    fn escaped_string(&mut self) -> Result<String, String> {
        let mut out: Vec<u8> = Vec::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".to_string());
            };
            self.pos += 1;
            match b {
                b'"' => {
                    return String::from_utf8(out).map_err(|_| "bad UTF-8 in string".to_string())
                }
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("dangling escape".to_string());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            let ch = char::from_u32(hex)
                                .ok_or_else(|| format!("bad \\u codepoint {hex:#x}"))?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(ch.encode_utf8(&mut buf).as_bytes());
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => out.push(b),
            }
        }
    }
}

impl SpillRecord {
    /// Parse one spill-chunk JSONL line (the exact shape
    /// [`TraceEvent::render_jsonl`] writes). Trailing garbage is an
    /// error — a concatenation of two records must not half-parse.
    pub fn parse(line: &str) -> Result<SpillRecord, String> {
        let mut c = LineCursor {
            bytes: line.as_bytes(),
            pos: 0,
        };
        c.tag("{\"seq\":")?;
        let seq = c.number()?;
        c.tag(",\"at\":")?;
        let at = SimTime::from_secs(c.number()?);
        c.tag(",\"subsystem\":\"")?;
        let sub_tag = c.plain_string()?;
        let subsystem = Subsystem::from_tag(&sub_tag)
            .ok_or_else(|| format!("unknown subsystem tag {sub_tag:?}"))?;
        c.tag(",\"code\":\"")?;
        let code = c.plain_string()?;
        let corr = if c.peek(",\"corr\":") {
            c.tag(",\"corr\":")?;
            Some(c.number()?)
        } else {
            None
        };
        c.tag(",\"detail\":\"")?;
        let detail = c.escaped_string()?;
        c.tag("}")?;
        if c.pos != line.len() {
            return Err(format!("trailing bytes after record at byte {}", c.pos));
        }
        Ok(SpillRecord {
            seq,
            at,
            subsystem,
            code,
            corr,
            detail,
        })
    }
}

/// Read every complete record from a spill directory's chunk files, in
/// chunk order. Returns the records plus a warning for anything
/// incomplete: a truncated final record (no trailing newline — a killed
/// run or a full disk) or a line that does not parse. The reader is
/// deliberately permissive — triage over a crashed run's flight
/// recording must surface everything that did reach disk — while the
/// warnings let a strict validator still fail the artifact.
pub fn read_spill_chunks(dir: &std::path::Path) -> Result<(Vec<SpillRecord>, Vec<String>), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .flatten()
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("chunk-") && n.ends_with(".jsonl"))
        })
        .collect();
    files.sort();
    let mut records = Vec::new();
    let mut warnings = Vec::new();
    for path in files {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let mut lines: Vec<&str> = text.lines().collect();
        if !text.is_empty() && !text.ends_with('\n') {
            lines.pop();
            warnings.push(format!(
                "{}: truncated final record ignored",
                path.display()
            ));
        }
        for (lineno, line) in lines.iter().enumerate() {
            match SpillRecord::parse(line) {
                Ok(r) => records.push(r),
                Err(e) => warnings.push(format!("{}:{}: {e}", path.display(), lineno + 1)),
            }
        }
    }
    Ok((records, warnings))
}

/// Everything configurable about a trace, bundled for CLI plumbing.
#[derive(Debug, Clone)]
pub struct TraceOptions {
    /// Shared in-memory capacity: ring size for [`RingSink`], tail size
    /// for [`SpillSink`].
    pub capacity: usize,
    /// Dedicated per-subsystem ring capacities (ring sink only).
    pub per_subsystem: Vec<(Subsystem, usize)>,
    /// When set, use a [`SpillSink`] writing under this configuration.
    pub spill: Option<SpillConfig>,
    /// When set, record only these subsystems; everything else is
    /// counted as filtered and never reaches the sink.
    pub only: Option<Vec<Subsystem>>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            capacity: DEFAULT_TRACE_CAPACITY,
            per_subsystem: Vec::new(),
            spill: None,
            only: None,
        }
    }
}

/// A run-wide structured event log.
///
/// Construct with [`Trace::disabled`] (the default for production
/// simulations — every `emit` is a single branch), [`Trace::enabled`],
/// or [`Trace::with_options`] for spill / capacity / filter control.
#[derive(Debug)]
pub struct Trace {
    enabled: bool,
    sink: Box<dyn TraceSink>,
    next_seq: u64,
    counts: [u64; Subsystem::ALL.len()],
    filter: [bool; Subsystem::ALL.len()],
    filtered: u64,
}

impl Default for Trace {
    fn default() -> Self {
        Trace::disabled()
    }
}

impl Trace {
    /// A disabled trace: `emit` returns immediately, nothing is retained.
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            // Capacity 1: the ring is never pushed to while disabled.
            sink: Box::new(RingSink::new(1)),
            next_seq: 0,
            counts: [0; Subsystem::ALL.len()],
            filter: [true; Subsystem::ALL.len()],
            filtered: 0,
        }
    }

    /// An enabled trace retaining the last [`DEFAULT_TRACE_CAPACITY`]
    /// events.
    pub fn enabled() -> Self {
        Trace::with_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// An enabled trace retaining the last `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn with_capacity(capacity: usize) -> Self {
        Trace::with_options(TraceOptions {
            capacity,
            ..TraceOptions::default()
        })
    }

    /// An enabled trace configured by `opts`: ring or spill sink,
    /// per-subsystem capacities, subsystem filter.
    ///
    /// # Panics
    /// Panics if any configured capacity or chunk size is zero.
    pub fn with_options(opts: TraceOptions) -> Self {
        let sink: Box<dyn TraceSink> = match opts.spill {
            Some(mut spill) => {
                spill.tail_capacity = opts.capacity;
                Box::new(SpillSink::new(spill))
            }
            None => {
                let mut ring = RingSink::new(opts.capacity);
                for (sub, cap) in opts.per_subsystem {
                    ring = ring.with_subsystem_capacity(sub, cap);
                }
                Box::new(ring)
            }
        };
        let mut filter = [opts.only.is_none(); Subsystem::ALL.len()];
        if let Some(only) = opts.only {
            for sub in only {
                filter[sub.index()] = true;
            }
        }
        Trace {
            enabled: true,
            sink,
            next_seq: 0,
            counts: [0; Subsystem::ALL.len()],
            filter,
            filtered: 0,
        }
    }

    /// Is the trace recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event. `detail` is only evaluated when the trace is
    /// enabled — pass the formatting closure, not a formatted string, at
    /// hot call sites.
    #[inline]
    pub fn emit(
        &mut self,
        at: SimTime,
        subsystem: Subsystem,
        code: &'static str,
        detail: impl FnOnce() -> String,
    ) {
        self.emit_corr(at, subsystem, code, None, detail);
    }

    /// Record one incident-correlated event. Identical to [`Trace::emit`]
    /// except the event carries `corr` (an incident id) for timeline
    /// reassembly.
    #[inline]
    pub fn emit_corr(
        &mut self,
        at: SimTime,
        subsystem: Subsystem,
        code: &'static str,
        corr: Option<u64>,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        // Closed-world check: an enabled trace refuses categories the
        // registry does not declare. Sits after the `enabled` early
        // return so disabled traces stay one-branch-and-out.
        if let Err(why) = validate_category(subsystem, code) {
            panic!("trace: {why}");
        }
        if !self.filter[subsystem.index()] {
            self.filtered += 1;
            return;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.counts[subsystem.index()] += 1;
        self.sink.record(TraceEvent {
            seq,
            at,
            subsystem,
            code,
            corr,
            detail: detail(),
        });
    }

    /// Retroactively attach a correlation id to the most recently
    /// emitted event. Used when the incident id only exists *after* the
    /// event was emitted (the fault injector's `inject` line precedes
    /// the ledger open).
    pub fn correlate_last(&mut self, corr: u64) {
        if self.enabled {
            self.sink.set_last_corr(corr);
        }
    }

    /// Lifetime event count for one subsystem (evicted events included).
    pub fn count(&self, subsystem: Subsystem) -> u64 {
        self.counts[subsystem.index()]
    }

    /// Lifetime event count across all subsystems.
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// How many events the sink has durably lost (ring evictions with
    /// no disk copy; failed spill writes). Kept under the historical
    /// name — `dropped` is an alias.
    pub fn evicted(&self) -> u64 {
        self.sink.dropped()
    }

    /// How many events the sink has durably lost.
    pub fn dropped(&self) -> u64 {
        self.sink.dropped()
    }

    /// Per-subsystem breakdown of dropped events as `(tag, count)`
    /// pairs, in [`Subsystem::ALL`] order.
    pub fn dropped_by_subsystem(&self) -> Vec<(&'static str, u64)> {
        let by = self.sink.dropped_by_subsystem();
        Subsystem::ALL
            .iter()
            .map(|&s| (s.tag(), by[s.index()]))
            .collect()
    }

    /// Events suppressed by the subsystem filter (never counted, never
    /// sequenced, never recorded).
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Stable name of the active sink: `"ring"` or `"spill"`.
    pub fn sink_kind(&self) -> &'static str {
        self.sink.kind()
    }

    /// Flush the sink to durable storage. No-op for ring sinks; writes
    /// pending records and the chunk manifest for spill sinks.
    pub fn flush(&mut self) -> Result<(), String> {
        self.sink.flush()
    }

    /// Retained events, oldest → newest.
    pub fn events(&self) -> Vec<&TraceEvent> {
        self.sink.retained()
    }

    /// Retained events rendered as pipe-delimited lines, oldest → newest.
    pub fn render_lines(&self) -> Vec<String> {
        self.sink.retained().iter().map(|e| e.render()).collect()
    }

    /// Per-subsystem lifetime counters as `(tag, count)` pairs, in
    /// [`Subsystem::ALL`] order.
    pub fn counters(&self) -> Vec<(&'static str, u64)> {
        Subsystem::ALL
            .iter()
            .map(|&s| (s.tag(), self.counts[s.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("intelliqos-trace-{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn disabled_trace_never_evaluates_detail() {
        let mut t = Trace::disabled();
        let mut evaluated = false;
        t.emit(SimTime::ZERO, Subsystem::Fault, "inject", || {
            evaluated = true;
            "x".into()
        });
        assert!(!evaluated);
        assert_eq!(t.total(), 0);
        assert_eq!(t.count(Subsystem::Fault), 0);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_and_counts() {
        let mut t = Trace::enabled();
        t.emit(SimTime::from_secs(5), Subsystem::Fault, "inject", || {
            "db000|MidJobDbCrash".into()
        });
        t.emit(SimTime::from_secs(9), Subsystem::Agent, "diagnose", || {
            "db000".into()
        });
        assert_eq!(t.total(), 2);
        assert_eq!(t.count(Subsystem::Fault), 1);
        assert_eq!(t.count(Subsystem::Agent), 1);
        assert_eq!(t.count(Subsystem::Lsf), 0);
        let lines = t.render_lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "0|5|fault|inject|db000\\pMidJobDbCrash");
        assert_eq!(lines[1], "1|9|agent|diagnose|db000");
    }

    #[test]
    fn ring_evicts_but_counters_survive() {
        let mut t = Trace::with_capacity(4);
        for i in 0..10u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Workload, "submit", || {
                String::new()
            });
        }
        assert_eq!(t.total(), 10);
        assert_eq!(t.count(Subsystem::Workload), 10);
        assert_eq!(t.evicted(), 6);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        let by = t.dropped_by_subsystem();
        assert!(by.contains(&("work", 6)));
    }

    #[test]
    fn render_escapes_structural_characters() {
        let e = TraceEvent {
            seq: 3,
            at: SimTime::from_secs(60),
            subsystem: Subsystem::Admin,
            code: "dgspl",
            corr: None,
            detail: "a|b\\c\nd\re".into(),
        };
        assert_eq!(e.render(), "3|60|admin|dgspl|a\\pb\\\\c\\nd\\re");
        // Exactly five pipe-separated columns survive.
        assert_eq!(e.render().split('|').count(), 5);
    }

    #[test]
    fn corr_never_changes_the_rendered_line() {
        let mut plain = TraceEvent {
            seq: 0,
            at: SimTime::from_secs(5),
            subsystem: Subsystem::Fault,
            code: "inject",
            corr: None,
            detail: "db000".into(),
        };
        let rendered = plain.render();
        plain.corr = Some(42);
        assert_eq!(plain.render(), rendered);
        // ... but the spill record carries it.
        assert!(plain.render_jsonl().contains("\"corr\":42"));
    }

    #[test]
    fn jsonl_escapes_quotes_and_controls() {
        let e = TraceEvent {
            seq: 1,
            at: SimTime::from_secs(2),
            subsystem: Subsystem::Agent,
            code: "diagnose",
            corr: Some(7),
            detail: "say \"hi\"\nback\\slash".into(),
        };
        assert_eq!(
            e.render_jsonl(),
            "{\"seq\":1,\"at\":2,\"subsystem\":\"agent\",\"code\":\"diagnose\",\
             \"corr\":7,\"detail\":\"say \\\"hi\\\"\\nback\\\\slash\"}"
        );
    }

    #[test]
    fn counters_listing_covers_all_subsystems() {
        let t = Trace::enabled();
        let tags: Vec<&str> = t.counters().into_iter().map(|(tag, _)| tag).collect();
        assert_eq!(
            tags,
            vec!["fault", "agent", "admin", "lsf", "manual", "work", "kern", "slo"]
        );
    }

    #[test]
    fn subsystem_tags_round_trip() {
        for sub in Subsystem::ALL {
            assert_eq!(Subsystem::from_tag(sub.tag()), Some(sub));
        }
        assert_eq!(Subsystem::from_tag("nope"), None);
    }

    #[test]
    fn per_subsystem_ring_protects_sparse_stream() {
        let mut t = Trace::with_options(TraceOptions {
            capacity: 4,
            per_subsystem: vec![(Subsystem::Fault, 8)],
            ..TraceOptions::default()
        });
        t.emit(SimTime::ZERO, Subsystem::Fault, "inject", || "f0".into());
        for i in 0..20u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Workload, "submit", || {
                String::new()
            });
        }
        // The flood evicted workload events but the fault line survives.
        assert_eq!(t.evicted(), 16);
        let events = t.events();
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].subsystem, Subsystem::Fault);
        // Merged view stays seq-sorted.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        let by = t.dropped_by_subsystem();
        assert!(by.contains(&("work", 16)));
        assert!(by.contains(&("fault", 0)));
    }

    #[test]
    fn subsystem_filter_suppresses_without_sequencing() {
        let mut t = Trace::with_options(TraceOptions {
            only: Some(vec![Subsystem::Fault, Subsystem::Agent]),
            ..TraceOptions::default()
        });
        t.emit(SimTime::ZERO, Subsystem::Workload, "submit", || "w".into());
        t.emit(SimTime::ZERO, Subsystem::Fault, "inject", || "f".into());
        t.emit(SimTime::ZERO, Subsystem::Lsf, "dispatch", || "l".into());
        t.emit(SimTime::ZERO, Subsystem::Agent, "diagnose", || "a".into());
        assert_eq!(t.total(), 2);
        assert_eq!(t.filtered(), 2);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]); // no gaps: filtered events never sequence
        assert_eq!(t.count(Subsystem::Workload), 0);
    }

    #[test]
    fn correlate_last_patches_ring_event() {
        let mut t = Trace::enabled();
        t.emit(SimTime::ZERO, Subsystem::Fault, "inject", || "f".into());
        t.correlate_last(9);
        assert_eq!(t.events()[0].corr, Some(9));
    }

    #[test]
    fn spill_writes_every_event_and_rotates_chunks() {
        let dir = test_dir("rotate");
        let mut t = Trace::with_options(TraceOptions {
            capacity: 4, // tiny tail: tail eviction must not lose records
            spill: Some(SpillConfig {
                dir: dir.clone(),
                chunk_records: 10,
                tail_capacity: 0, // overwritten by capacity
            }),
            ..TraceOptions::default()
        });
        for i in 0..25u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Workload, "submit", || {
                format!("job{i}")
            });
        }
        t.correlate_last(3);
        t.flush().unwrap();
        assert_eq!(t.sink_kind(), "spill");
        assert_eq!(t.dropped(), 0);
        // Chunks: 10 + 10 + 5.
        let c0 = std::fs::read_to_string(dir.join("chunk-00000.jsonl")).unwrap();
        let c1 = std::fs::read_to_string(dir.join("chunk-00001.jsonl")).unwrap();
        let c2 = std::fs::read_to_string(dir.join("chunk-00002.jsonl")).unwrap();
        assert_eq!(c0.lines().count(), 10);
        assert_eq!(c1.lines().count(), 10);
        assert_eq!(c2.lines().count(), 5);
        // The last record carries the retro-correlation.
        assert!(c2.lines().last().unwrap().contains("\"corr\":3"));
        // Manifest names all three chunks and the full total.
        let manifest = std::fs::read_to_string(dir.join(SPILL_MANIFEST)).unwrap();
        assert!(manifest.contains("\"total\": 25"));
        assert!(manifest.contains("chunk-00002.jsonl"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_tail_serves_in_process_consumers() {
        let dir = test_dir("tail");
        let mut t = Trace::with_options(TraceOptions {
            capacity: 3,
            spill: Some(SpillConfig::new(dir.clone())),
            ..TraceOptions::default()
        });
        for i in 0..8u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Agent, "diagnose", || {
                String::new()
            });
        }
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![5, 6, 7]);
        assert_eq!(t.dropped(), 0); // tail eviction is not loss
        t.flush().unwrap();
        let chunk = std::fs::read_to_string(dir.join("chunk-00000.jsonl")).unwrap();
        assert_eq!(chunk.lines().count(), 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn spill_record_round_trips_render_jsonl() {
        let cases = [
            TraceEvent {
                seq: 0,
                at: SimTime::from_secs(5),
                subsystem: Subsystem::Fault,
                code: "inject",
                corr: None,
                detail: "db000|MidJobDbCrash".into(),
            },
            TraceEvent {
                seq: 17,
                at: SimTime::from_secs(86_400),
                subsystem: Subsystem::Agent,
                code: "diagnose",
                corr: Some(7),
                detail: "say \"hi\"\nback\\slash\ttab\u{1}ctl".into(),
            },
            TraceEvent {
                seq: 3,
                at: SimTime::ZERO,
                subsystem: Subsystem::Slo,
                code: "burn_alert",
                corr: Some(0),
                detail: String::new(),
            },
        ];
        for ev in cases {
            let line = ev.render_jsonl();
            let rec = SpillRecord::parse(&line).unwrap();
            assert_eq!(rec.seq, ev.seq);
            assert_eq!(rec.at, ev.at);
            assert_eq!(rec.subsystem, ev.subsystem);
            assert_eq!(rec.code, ev.code);
            assert_eq!(rec.corr, ev.corr);
            assert_eq!(rec.detail, ev.detail);
        }
    }

    #[test]
    fn spill_record_rejects_malformed_lines() {
        assert!(SpillRecord::parse("").is_err());
        assert!(SpillRecord::parse("{\"seq\":1").is_err());
        assert!(SpillRecord::parse("not json at all").is_err());
        // Unknown subsystem tag.
        assert!(SpillRecord::parse(
            "{\"seq\":1,\"at\":2,\"subsystem\":\"nope\",\"code\":\"x\",\"detail\":\"d\"}"
        )
        .is_err());
        // Trailing garbage after a well-formed record.
        assert!(SpillRecord::parse(
            "{\"seq\":1,\"at\":2,\"subsystem\":\"agent\",\"code\":\"x\",\"detail\":\"d\"}extra"
        )
        .is_err());
        // A record sliced mid-detail (the truncated-final-line shape).
        assert!(SpillRecord::parse(
            "{\"seq\":1,\"at\":2,\"subsystem\":\"agent\",\"code\":\"x\",\"detail\":\"d"
        )
        .is_err());
    }

    #[test]
    fn read_spill_chunks_recovers_all_records_in_order() {
        let dir = test_dir("readback");
        let mut t = Trace::with_options(TraceOptions {
            capacity: 4,
            spill: Some(SpillConfig {
                dir: dir.clone(),
                chunk_records: 7,
                tail_capacity: 0,
            }),
            ..TraceOptions::default()
        });
        for i in 0..23u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Workload, "submit", || {
                format!("job{i}|with\npipe and newline")
            });
        }
        t.correlate_last(5);
        t.flush().unwrap();
        let (records, warnings) = read_spill_chunks(&dir).unwrap();
        assert!(
            warnings.is_empty(),
            "clean spill must read clean: {warnings:?}"
        );
        assert_eq!(records.len(), 23);
        let seqs: Vec<u64> = records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, (0..23).collect::<Vec<u64>>());
        assert_eq!(records[22].corr, Some(5));
        assert_eq!(records[0].detail, "job0|with\npipe and newline");
        assert_eq!(records[0].subsystem, Subsystem::Workload);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn read_spill_chunks_skips_truncated_final_record_with_warning() {
        let dir = test_dir("truncated");
        let mut t = Trace::with_options(TraceOptions {
            capacity: 4,
            spill: Some(SpillConfig {
                dir: dir.clone(),
                chunk_records: 100,
                tail_capacity: 0,
            }),
            ..TraceOptions::default()
        });
        for i in 0..6u64 {
            t.emit(SimTime::from_secs(i), Subsystem::Agent, "diagnose", || {
                format!("pass{i}")
            });
        }
        t.flush().unwrap();
        // Simulate a killed run: chop the final record mid-line.
        let chunk = dir.join("chunk-00000.jsonl");
        let text = std::fs::read_to_string(&chunk).unwrap();
        let cut = text.len() - 10;
        std::fs::write(&chunk, &text[..cut]).unwrap();
        let (records, warnings) = read_spill_chunks(&dir).unwrap();
        assert_eq!(records.len(), 5, "complete records all survive");
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("truncated final record"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_pairs_are_unique_and_documented() {
        for (i, a) in TRACE_REGISTRY.iter().enumerate() {
            assert!(!a.code.is_empty(), "empty code at row {i}");
            assert!(
                !a.doc.is_empty(),
                "({}, {:?}) undocumented",
                a.subsystem.tag(),
                a.code
            );
            for b in &TRACE_REGISTRY[i + 1..] {
                assert!(
                    !(a.subsystem == b.subsystem && a.code == b.code),
                    "duplicate registry row ({}, {:?})",
                    a.subsystem.tag(),
                    a.code
                );
            }
        }
    }

    #[test]
    fn validate_category_explains_each_failure_mode() {
        assert_eq!(validate_category(Subsystem::Fault, "db-crash"), Ok(()));
        // Wrong subsystem: the code exists, but not there.
        let err = validate_category(Subsystem::Lsf, "db-crash").unwrap_err();
        assert!(err.contains("registered under `fault`, not `lsf`"), "{err}");
        // Near miss: suggest the nearest registered code.
        let err = validate_category(Subsystem::Fault, "db-carsh").unwrap_err();
        assert!(err.contains("did you mean \"db-crash\"?"), "{err}");
        // Plain unknown: point at the registry.
        let err = validate_category(Subsystem::Fault, "quux-flux-zot").unwrap_err();
        assert!(err.contains("TRACE_REGISTRY"), "{err}");
    }

    #[test]
    fn nearest_code_suggestion_is_deterministic() {
        assert_eq!(edit_distance("db-crash", "db-crash"), 0);
        assert_eq!(edit_distance("db-carsh", "db-crash"), 2);
        assert_eq!(edit_distance("", "abc"), 3);
        let (near, d) = nearest_registered_code("db-carsh").unwrap();
        assert_eq!((near, d), ("db-crash", 2));
    }

    #[test]
    #[should_panic(expected = "unregistered trace category")]
    fn enabled_trace_panics_on_unregistered_category() {
        let mut t = Trace::enabled();
        t.emit(
            SimTime::ZERO,
            Subsystem::Fault,
            "definitely-not-a-code",
            String::new,
        );
    }

    #[test]
    fn disabled_trace_skips_category_validation() {
        // The zero-cost contract: a disabled trace returns before the
        // registry check, so call sites compiled out of a run are never
        // validated at runtime (qoslint checks them statically instead).
        let mut t = Trace::disabled();
        t.emit(
            SimTime::ZERO,
            Subsystem::Fault,
            "definitely-not-a-code",
            String::new,
        );
        assert_eq!(t.total(), 0);
    }
}
