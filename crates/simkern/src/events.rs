//! Deterministic discrete-event queue.
//!
//! The queue is generic over the event payload `E`. Events scheduled for
//! the same instant pop in FIFO scheduling order (a monotone sequence
//! number breaks ties), so a run is a pure function of the schedule calls
//! — there is no iteration-order nondeterminism anywhere in the kernel.
//!
//! Cancellation is supported through [`EventToken`]s: cancelling is
//! O(log n) — the sequence number is dropped from the ordered live set
//! and the heap entry becomes a tombstone, silently skipped on pop and
//! bulk-purged once tombstones outnumber live entries. This is how the
//! cluster model retracts, e.g., a pending "job completes" event when
//! the database hosting the job crashes first. The live set is a
//! `BTreeSet` (not a hash set) so that every traversal of pending state
//! — debug dumps included — is deterministic across runs and hosts.

use std::cmp::Ordering;
use std::collections::binary_heap::BinaryHeap;
use std::collections::BTreeSet;

use crate::time::{SimDuration, SimTime};

/// Handle identifying one scheduled event, usable for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time (then lowest
        // sequence number) pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use intelliqos_simkern::{EventQueue, SimTime, SimDuration};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_secs(10), "b");
/// q.schedule(SimTime::from_secs(5), "a");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!((t.as_secs(), e), (5, "a"));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events still pending (scheduled, not yet
    /// popped or cancelled). Heap entries whose seq is absent are
    /// tombstones awaiting the lazy purge.
    live: BTreeSet<u64>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Empty queue with the clock at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            live: BTreeSet::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation clock: the timestamp of the last popped event
    /// (or the epoch before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (uncancelled) events still pending.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the simulated past — that would silently
    /// reorder causality.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.live.insert(seq);
        self.heap.push(Entry { at, seq, payload });
        EventToken(seq)
    }

    /// Schedule `payload` after a relative delay from the current clock.
    pub fn schedule_after(&mut self, delay: SimDuration, payload: E) -> EventToken {
        self.schedule(self.now + delay, payload)
    }

    /// Cancel a previously scheduled event in O(1). Returns `false` if
    /// the event already fired, was already cancelled, or never existed.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        if !self.live.remove(&token.0) {
            return false;
        }
        self.maybe_purge();
        true
    }

    /// Rebuild the heap without tombstones once they outnumber the live
    /// entries — amortised O(1) per cancel, and the heap never holds more
    /// than 2× the live events.
    fn maybe_purge(&mut self) {
        if self.heap.len() < 64 || self.heap.len() - self.live.len() <= self.heap.len() / 2 {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        let live = &self.live;
        self.heap = entries
            .into_iter()
            .filter(|e| live.contains(&e.seq))
            .collect();
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skip_dead();
        self.heap.peek().map(|e| e.at)
    }

    /// Pop the next live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.skip_dead();
        let entry = self.heap.pop()?;
        self.live.remove(&entry.seq);
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Pop the next event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Drop tombstoned entries sitting at the top of the heap.
    fn skip_dead(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Advance the clock without popping (used to close out a run at a
    /// horizon even if events remain).
    ///
    /// # Panics
    /// Panics if `to` is before the current clock.
    pub fn advance_clock(&mut self, to: SimTime) {
        assert!(to >= self.now, "clock cannot move backwards");
        self.now = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(30), 3);
        q.schedule(SimTime::from_secs(10), 1);
        q.schedule(SimTime::from_secs(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_tie_break_at_same_instant() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_secs(42), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(7));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), ());
        q.pop();
        q.schedule(SimTime::from_secs(5), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().1, "b");
        assert!(q.is_empty());
    }

    #[test]
    fn double_cancel_and_cancel_after_fire_return_false() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        assert!(q.cancel(a));
        assert!(!q.cancel(a));
        let b = q.schedule(SimTime::from_secs(2), "b");
        q.pop();
        assert!(!q.cancel(b));
        // A token that never existed.
        assert!(!q.cancel(EventToken(999)));
    }

    #[test]
    fn schedule_after_uses_current_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(100), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(5), "second");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(105));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(10), "in");
        q.schedule(SimTime::from_secs(50), "out");
        assert_eq!(q.pop_until(SimTime::from_secs(20)).unwrap().1, "in");
        assert!(q.pop_until(SimTime::from_secs(20)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn mass_cancellation_purges_tombstones() {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..1024u64)
            .map(|i| q.schedule(SimTime::from_secs(i), i))
            .collect();
        for tok in &tokens[..1000] {
            assert!(q.cancel(*tok));
            // Purge invariant: tombstones never exceed half the heap
            // (checked only above the small-heap purge threshold).
            if q.heap.len() >= 64 {
                assert!(q.heap.len() - q.live.len() <= q.heap.len() / 2);
            }
        }
        assert_eq!(q.len(), 24);
        assert!(q.heap.len() <= 2 * q.len().max(64));
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(popped, (1000..1024).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
    }
}
