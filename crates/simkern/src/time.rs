//! Simulation time.
//!
//! The kernel measures time in whole **seconds** since the simulation
//! epoch. One second is fine-grained enough for everything the paper
//! measures (agent cadences are minutes, I/O sampling windows are 30 s)
//! while keeping arithmetic exact — no floating-point drift over a
//! simulated year.
//!
//! The epoch is defined to be **Monday 00:00**. That convention lets the
//! operations model ask calendar questions ("is it the weekend?", "is it
//! overnight?") that drive the paper's human-detection latencies
//! (≈1 h daytime, ≈25 h weekends, ≈10 h overnight).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds in one minute.
pub const MINUTE: u64 = 60;
/// Seconds in one hour.
pub const HOUR: u64 = 3600;
/// Seconds in one day.
pub const DAY: u64 = 86_400;
/// Seconds in one (7-day) week.
pub const WEEK: u64 = 7 * DAY;
/// Seconds in one simulated year (365 days).
pub const YEAR: u64 = 365 * DAY;

/// An instant in simulated time: whole seconds since the epoch
/// (Monday 00:00 of week zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time in whole seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0, Monday 00:00).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s)
    }

    /// Construct from whole minutes since the epoch.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * MINUTE)
    }

    /// Construct from whole hours since the epoch.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * HOUR)
    }

    /// Construct from whole days since the epoch.
    pub const fn from_days(d: u64) -> Self {
        SimTime(d * DAY)
    }

    /// Seconds since the epoch.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional hours since the epoch (for reporting).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// Day index since the epoch (day 0 is a Monday).
    pub const fn day_index(self) -> u64 {
        self.0 / DAY
    }

    /// Day of week, 0 = Monday … 6 = Sunday.
    pub const fn day_of_week(self) -> u8 {
        ((self.0 / DAY) % 7) as u8
    }

    /// Hour of day, 0–23.
    pub const fn hour_of_day(self) -> u8 {
        ((self.0 % DAY) / HOUR) as u8
    }

    /// Second within the current day.
    pub const fn second_of_day(self) -> u64 {
        self.0 % DAY
    }

    /// True on Saturday or Sunday.
    pub const fn is_weekend(self) -> bool {
        self.day_of_week() >= 5
    }

    /// True during business hours (Mon–Fri, 08:00–20:00). This is when
    /// operators actually watch consoles in the paper's account.
    pub const fn is_business_hours(self) -> bool {
        let h = self.hour_of_day();
        !self.is_weekend() && h >= 8 && h < 20
    }

    /// True overnight on a weekday (20:00–08:00, Mon–Fri). The paper's
    /// overnight batch window, where detection took ≈10 h.
    pub const fn is_weekday_overnight(self) -> bool {
        !self.is_weekend() && !self.is_business_hours()
    }

    /// Saturating subtraction producing a duration.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * MINUTE)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * HOUR)
    }

    /// Construct from whole days.
    pub const fn from_days(d: u64) -> Self {
        SimDuration(d * DAY)
    }

    /// Round a fractional number of seconds to the nearest whole-second
    /// duration (used when sampling repair-time distributions).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration(s.max(0.0).round() as u64)
    }

    /// Whole seconds.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// Fractional minutes.
    pub fn as_mins_f64(self) -> f64 {
        self.0 as f64 / MINUTE as f64
    }

    /// Fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / HOUR as f64
    }

    /// True if zero-length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scale by an integer factor.
    pub const fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0 * k)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, earlier: SimTime) -> SimDuration {
        self.since(earlier)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0 + other.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, other: SimDuration) {
        self.0 += other.0;
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    /// Renders as `d<day> hh:mm:ss` with a weekday letter, e.g.
    /// `d012(Sa) 14:05:30`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const DAYS: [&str; 7] = ["Mo", "Tu", "We", "Th", "Fr", "Sa", "Su"];
        let sod = self.second_of_day();
        write!(
            f,
            "d{:03}({}) {:02}:{:02}:{:02}",
            self.day_index(),
            DAYS[self.day_of_week() as usize],
            sod / HOUR,
            (sod % HOUR) / MINUTE,
            sod % MINUTE
        )
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= DAY {
            write!(f, "{:.1}d", s as f64 / DAY as f64)
        } else if s >= HOUR {
            write!(f, "{:.1}h", s as f64 / HOUR as f64)
        } else if s >= MINUTE {
            write!(f, "{:.1}m", s as f64 / MINUTE as f64)
        } else {
            write!(f, "{}s", s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_monday_midnight() {
        let t = SimTime::ZERO;
        assert_eq!(t.day_of_week(), 0);
        assert_eq!(t.hour_of_day(), 0);
        assert!(!t.is_weekend());
        assert!(!t.is_business_hours()); // midnight is overnight
        assert!(t.is_weekday_overnight());
    }

    #[test]
    fn weekend_detection() {
        // Day 5 = Saturday, day 6 = Sunday.
        assert!(SimTime::from_days(5).is_weekend());
        assert!(SimTime::from_days(6).is_weekend());
        assert!(!SimTime::from_days(7).is_weekend()); // next Monday
        assert!((SimTime::from_days(5) + SimDuration::from_hours(12)).is_weekend());
    }

    #[test]
    fn business_hours_window() {
        let mon_9am = SimTime::from_hours(9);
        assert!(mon_9am.is_business_hours());
        let mon_7am = SimTime::from_hours(7);
        assert!(!mon_7am.is_business_hours());
        assert!(mon_7am.is_weekday_overnight());
        let mon_8pm = SimTime::from_hours(20);
        assert!(!mon_8pm.is_business_hours());
        let sat_noon = SimTime::from_days(5) + SimDuration::from_hours(12);
        assert!(!sat_noon.is_business_hours());
        assert!(!sat_noon.is_weekday_overnight()); // weekend, not weekday overnight
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_mins(90);
        let later = t + SimDuration::from_mins(45);
        assert_eq!((later - t).as_mins_f64(), 45.0);
        assert_eq!(later.since(t), SimDuration::from_mins(45));
        // saturating behaviour in the reversed order
        assert_eq!(t.since(later), SimDuration::ZERO);
    }

    #[test]
    fn display_formats() {
        let t = SimTime::from_days(12) + SimDuration::from_secs(14 * HOUR + 5 * MINUTE + 30);
        assert_eq!(format!("{t}"), "d012(Sa) 14:05:30");
        assert_eq!(format!("{}", SimDuration::from_secs(45)), "45s");
        assert_eq!(format!("{}", SimDuration::from_mins(5)), "5.0m");
        assert_eq!(format!("{}", SimDuration::from_hours(30)), "1.2d"); // 1.25 rounds to even
    }

    #[test]
    fn hour_of_day_wraps() {
        let t = SimTime::from_hours(49); // day 2, 01:00
        assert_eq!(t.day_index(), 2);
        assert_eq!(t.hour_of_day(), 1);
        assert_eq!(t.day_of_week(), 2); // Wednesday
    }

    #[test]
    fn duration_sum_and_scale() {
        let total: SimDuration = [
            SimDuration::from_mins(1),
            SimDuration::from_mins(2),
            SimDuration::from_mins(3),
        ]
        .into_iter()
        .sum();
        assert_eq!(total, SimDuration::from_mins(6));
        assert_eq!(
            SimDuration::from_mins(6).times(10),
            SimDuration::from_hours(1)
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(1.4).as_secs(), 1);
        assert_eq!(SimDuration::from_secs_f64(1.6).as_secs(), 2);
        assert_eq!(SimDuration::from_secs_f64(-5.0).as_secs(), 0);
    }
}
