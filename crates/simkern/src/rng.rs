//! Deterministic, stream-split random numbers.
//!
//! Every stochastic subsystem (fault arrivals, workload, repair times,
//! cron jitter, …) draws from its **own named stream** derived from the
//! scenario seed. This gives paired before/after comparisons: enabling
//! the intelliagent layer consumes randomness only from its own streams,
//! so the injected fault sequence in the "after" year is identical to the
//! "before" year — exactly the property a controlled experiment needs.
//!
//! The generator is a self-contained xoshiro256++ (public-domain
//! algorithm by Blackman & Vigna) seeded through SplitMix64, so the
//! crate has **zero external dependencies** and the streams are stable
//! across platforms and toolchain versions. The handful of
//! distributions the models need (exponential, log-normal, Pareto,
//! Poisson) are implemented here as well.

use crate::time::SimDuration;

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core: 256 bits of state, period 2^256 − 1.
#[derive(Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// FNV-1a 64-bit hash, used to fold stream names into seeds. Stable
/// across platforms and Rust versions (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A deterministic random stream.
///
/// ```
/// use intelliqos_simkern::SimRng;
/// let mut a = SimRng::stream(42, "faults");
/// let mut b = SimRng::stream(42, "faults");
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed+name ⇒ same stream
/// ```
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Derive the stream `name` from the scenario `seed`.
    pub fn stream(seed: u64, name: &str) -> Self {
        let mixed = fnv1a(name.as_bytes()) ^ seed.rotate_left(17);
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(mixed),
        }
    }

    /// Fork a child stream, e.g. one per server, without coupling the
    /// parent's future draws to how many children were forked.
    pub fn fork(&self, name: &str, index: u64) -> Self {
        // Children are derived from the parent's *identity* (not its
        // state), via a fresh hash of name+index.
        let mixed = fnv1a(name.as_bytes())
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(index.rotate_left(31));
        SimRng {
            inner: Xoshiro256pp::seed_from_u64(mixed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi]` inclusive (Lemire's unbiased
    /// multiply-shift rejection method).
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi >= lo);
        let range = hi.wrapping_sub(lo).wrapping_add(1);
        if range == 0 {
            // Full 64-bit range.
            return self.inner.next_u64();
        }
        let mut m = (self.inner.next_u64() as u128) * (range as u128);
        let mut low = m as u64;
        if low < range {
            let threshold = range.wrapping_neg() % range;
            while low < threshold {
                m = (self.inner.next_u64() as u128) * (range as u128);
                low = m as u64;
            }
        }
        lo + (m >> 64) as u64
    }

    /// Uniform index in `[0, n)`. `n` must be nonzero.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() over an empty range");
        self.uniform_u64(0, n as u64 - 1) as usize
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Exponential variate with the given mean (inter-arrival sampling).
    pub fn exponential(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        // Inverse CDF; (1 - unit()) avoids ln(0).
        -mean * (1.0 - self.unit()).ln()
    }

    /// Exponential inter-arrival delay with the given mean duration.
    pub fn exp_delay(&mut self, mean: SimDuration) -> SimDuration {
        SimDuration::from_secs_f64(self.exponential(mean.as_secs() as f64).max(1.0))
    }

    /// Standard normal variate (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.unit(); // (0,1]
        let u2: f64 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal variate with mean `mu` and standard deviation `sigma`.
    pub fn normal(&mut self, mu: f64, sigma: f64) -> f64 {
        mu + sigma * self.standard_normal()
    }

    /// Log-normal variate parameterised by the *median* and a shape
    /// `sigma` (σ of the underlying normal). Used for repair times,
    /// which are right-skewed in practice.
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        median * (sigma * self.standard_normal()).exp()
    }

    /// Pareto variate with scale `xm` and shape `alpha` (heavy-tailed
    /// batch-job runtimes).
    pub fn pareto(&mut self, xm: f64, alpha: f64) -> f64 {
        debug_assert!(xm > 0.0 && alpha > 0.0);
        xm / (1.0 - self.unit()).powf(1.0 / alpha)
    }

    /// Poisson variate (Knuth's method; fine for the small means used by
    /// the workload generator).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        debug_assert!(lambda >= 0.0);
        if lambda == 0.0 {
            return 0;
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.unit();
            if p <= l {
                return k;
            }
            k += 1;
            // Defensive bound: lambda in this codebase is ≤ a few hundred.
            if k > 100_000 {
                return k;
            }
        }
    }

    /// Pick one element of a slice uniformly. Panics on an empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// Pick an index according to the given non-negative weights.
    /// Returns `None` if the weights are empty or all zero.
    pub fn choose_weighted(&mut self, weights: &[f64]) -> Option<usize> {
        let total: f64 = weights.iter().copied().filter(|w| *w > 0.0).sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = self.unit() * total;
        for (i, &w) in weights.iter().enumerate() {
            if w <= 0.0 {
                continue;
            }
            if x < w {
                return Some(i);
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive weight.
        weights.iter().rposition(|&w| w > 0.0)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_reproducible_and_independent() {
        let mut a1 = SimRng::stream(7, "alpha");
        let mut a2 = SimRng::stream(7, "alpha");
        let mut b = SimRng::stream(7, "beta");
        let xs: Vec<u64> = (0..8).map(|_| a1.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| a2.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::stream(1, "s");
        let mut b = SimRng::stream(2, "s");
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn forked_children_are_stable() {
        let parent = SimRng::stream(3, "servers");
        let mut c1 = parent.fork("server", 12);
        let mut c2 = parent.fork("server", 12);
        let mut c3 = parent.fork("server", 13);
        assert_eq!(c1.next_u64(), c2.next_u64());
        assert_ne!(c1.next_u64(), c3.next_u64());
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = SimRng::stream(11, "exp");
        let n = 20_000;
        let mean = 300.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let est = sum / n as f64;
        assert!((est - mean).abs() < mean * 0.05, "est = {est}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::stream(5, "p");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_frequency_matches_p() {
        let mut r = SimRng::stream(5, "freq");
        let hits = (0..50_000).filter(|_| r.chance(0.25)).count();
        let f = hits as f64 / 50_000.0;
        assert!((f - 0.25).abs() < 0.02, "f = {f}");
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::stream(9, "norm");
        let n = 30_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean = {mean}");
        assert!((var - 4.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut r = SimRng::stream(13, "ln");
        let mut samples: Vec<f64> = (0..20_001)
            .map(|_| r.lognormal_median(7200.0, 0.5))
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = samples[10_000];
        assert!((med - 7200.0).abs() < 7200.0 * 0.05, "median = {med}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::stream(17, "par");
        for _ in 0..1000 {
            assert!(r.pareto(60.0, 1.5) >= 60.0);
        }
    }

    #[test]
    fn poisson_mean() {
        let mut r = SimRng::stream(19, "poi");
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| r.poisson(4.0)).sum();
        let est = sum as f64 / n as f64;
        assert!((est - 4.0).abs() < 0.1, "est = {est}");
    }

    #[test]
    fn weighted_choice_distribution() {
        let mut r = SimRng::stream(23, "w");
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[r.choose_weighted(&weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio = {ratio}");
    }

    #[test]
    fn weighted_choice_degenerate() {
        let mut r = SimRng::stream(29, "w0");
        assert_eq!(r.choose_weighted(&[]), None);
        assert_eq!(r.choose_weighted(&[0.0, 0.0]), None);
        assert_eq!(r.choose_weighted(&[0.0, 2.0]), Some(1));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::stream(31, "sh");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>()); // astronomically unlikely
    }

    #[test]
    fn exp_delay_is_at_least_one_second() {
        let mut r = SimRng::stream(37, "d");
        for _ in 0..100 {
            assert!(r.exp_delay(SimDuration::from_secs(2)).as_secs() >= 1);
        }
    }
}
