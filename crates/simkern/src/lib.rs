//! # intelliqos-simkern
//!
//! Discrete-event simulation kernel underpinning the `intelliqos`
//! reproduction of Corsava & Getov, *"Improving Quality of Service in
//! Application Clusters"* (IPDPS 2003).
//!
//! The kernel is deliberately small and fully deterministic:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-second simulated time with a
//!   Monday-epoch calendar (weekends and overnight windows drive the
//!   paper's human-operations latencies).
//! * [`EventQueue`] — a future-event list with FIFO tie-breaking and
//!   token-based cancellation.
//! * [`SimRng`] — named, splittable random streams so that the fault
//!   sequence of a scenario is invariant under enabling/disabling the
//!   agent layer (paired before/after experiments).
//! * [`OnlineStats`] / [`Histogram`] — O(1)-memory measurement folding.
//! * [`CircularQueue`] — the paper's configurable-length circular
//!   measurement files.
//! * [`TimeSeries`] — timestamp-ordered measurements with the
//!   timestamp-join the performance intelliagents perform.
//! * [`Trace`] — zero-cost-when-disabled structured event log with
//!   circular retention and per-subsystem lifetime counters.
//! * [`MetricsRegistry`] / [`Profiler`] — counters, gauges,
//!   log-bucketed histograms, and wall-clock span profiling, also
//!   zero-cost when disabled; every run can be self-measuring.
//!
//! Nothing here knows about clusters, agents, or services; those live in
//! the higher crates.

#![warn(missing_docs)]

mod events;
pub mod lifecycle;
pub mod metrics;
mod ring;
mod rng;
mod series;
mod stats;
pub mod time;
pub mod trace;

pub use events::{EventQueue, EventToken};
pub use lifecycle::{LifecycleState, LIFECYCLE_EDGES};
pub use metrics::{HistSummary, LogHistogram, MetricsRegistry, Profiler, SpanTimer};
pub use ring::CircularQueue;
pub use rng::SimRng;
pub use series::TimeSeries;
pub use stats::{Histogram, OnlineStats};
pub use time::{SimDuration, SimTime, DAY, HOUR, MINUTE, WEEK, YEAR};
pub use trace::{
    CategorySpec, RingSink, SpillConfig, SpillSink, Subsystem, Trace, TraceEvent, TraceOptions,
    TraceSink, TRACE_REGISTRY,
};
