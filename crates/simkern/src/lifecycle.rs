//! The incident-lifecycle automaton, declared once as data.
//!
//! Every incident moves through `injected → detected → diagnosed →
//! attempt* → (repaired | escalated)`. Before this module the state
//! machine existed only as prose and as ad-hoc field checks scattered
//! through `core::downtime`; now the states, the legal transitions, and
//! the mapping from `DowntimeLedger` method names to states are one
//! table that three consumers interpret:
//!
//! * `core::downtime::Incident::lifecycle_violation` walks an incident
//!   record along the automaton and reports the first step the record
//!   cannot justify;
//! * `qoslint`'s `lifecycle-order` rule checks that ledger transition
//!   *call sites* appear in an order the automaton can realise;
//! * tests assert properties (reachability, required states) directly
//!   against the declared edges.
//!
//! Keeping the automaton here (rather than in `core`) lets the lint
//! crate depend on it without a dependency cycle.

/// One state of the incident lifecycle.
///
/// Declaration order is the canonical spine order: every legal path
/// visits states in non-decreasing declaration order except for the
/// `Attempting ↔ Escalated` oscillation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LifecycleState {
    /// The fault exists in the world (incident opened at onset).
    Injected,
    /// Monitoring or a human first knew about it.
    Detected,
    /// The cause was pinned down (rule fired, engineer engaged).
    Diagnosed,
    /// A repair attempt is being made (agent, admin, or human).
    Attempting,
    /// Humans were paged; the incident left the autonomic loop.
    Escalated,
    /// Service restored; the terminal state.
    Repaired,
}

use LifecycleState::*;

/// The legal transitions. `Attempting → Attempting` is the retry loop;
/// `Attempting ↔ Escalated` models a failed automatic attempt handing
/// off to humans (and humans making further attempts).
pub const LIFECYCLE_EDGES: &[(LifecycleState, LifecycleState)] = &[
    (Injected, Detected),
    (Detected, Diagnosed),
    (Diagnosed, Attempting),
    (Attempting, Attempting),
    (Attempting, Escalated),
    (Attempting, Repaired),
    (Escalated, Attempting),
    (Escalated, Repaired),
];

impl LifecycleState {
    /// Every state, in canonical spine order.
    pub const ALL: [LifecycleState; 6] = [
        Injected, Detected, Diagnosed, Attempting, Escalated, Repaired,
    ];

    /// Lower-case name for diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Injected => "injected",
            Detected => "detected",
            Diagnosed => "diagnosed",
            Attempting => "attempting",
            Escalated => "escalated",
            Repaired => "repaired",
        }
    }

    /// Dense index into `ALL` for table lookups.
    fn index(self) -> usize {
        match self {
            Injected => 0,
            Detected => 1,
            Diagnosed => 2,
            Attempting => 3,
            Escalated => 4,
            Repaired => 5,
        }
    }

    /// The state a `DowntimeLedger` transition method drives an
    /// incident into, or `None` for non-transition methods. This is the
    /// contract the static call-site check keys on, so the names here
    /// must track the ledger's public API.
    pub fn for_transition(method: &str) -> Option<LifecycleState> {
        match method {
            "open" | "open_scoped" => Some(Injected),
            "detect" => Some(Detected),
            "diagnose" => Some(Diagnosed),
            "attempt" => Some(Attempting),
            "escalate" => Some(Escalated),
            "restore" => Some(Repaired),
            _ => None,
        }
    }

    /// Whether this state ends the lifecycle.
    pub fn is_terminal(self) -> bool {
        matches!(self, Repaired)
    }
}

/// Whether `from → to` is a single declared edge.
pub fn steps_to(from: LifecycleState, to: LifecycleState) -> bool {
    LIFECYCLE_EDGES.contains(&(from, to))
}

/// Reflexive-transitive reachability over the declared edges: can an
/// incident in `from` ever (after zero or more transitions) be in `to`?
pub fn reachable(from: LifecycleState, to: LifecycleState) -> bool {
    reachable_avoiding(from, to, None)
}

/// Reachability when `avoid` (if any) is removed from the automaton.
/// `reachable_avoiding(Injected, Repaired, Some(s)) == false` means
/// every complete lifecycle passes through `s`.
pub fn reachable_avoiding(
    from: LifecycleState,
    to: LifecycleState,
    avoid: Option<LifecycleState>,
) -> bool {
    if Some(from) == avoid || Some(to) == avoid {
        return false;
    }
    let mut seen = [false; 6];
    let mut stack = vec![from];
    seen[from.index()] = true;
    while let Some(s) = stack.pop() {
        if s == to {
            return true;
        }
        for &(a, b) in LIFECYCLE_EDGES {
            if a == s && Some(b) != avoid && !seen[b.index()] {
                seen[b.index()] = true;
                stack.push(b);
            }
        }
    }
    false
}

/// Whether the automaton can visit `s` more than once, i.e. `s` lies on
/// a cycle. The one-shot states (everything except the
/// `Attempting`/`Escalated` oscillation) form the lifecycle's monotone
/// spine: their observation times must be non-decreasing in spine
/// order, while revisitable states interleave freely (an agent can
/// attempt before the diagnosis is final).
pub fn revisitable(s: LifecycleState) -> bool {
    LIFECYCLE_EDGES
        .iter()
        .any(|&(a, b)| a == s && reachable(b, s))
}

/// The states every complete lifecycle (injection to terminal) must
/// pass through, in spine order — derived from the edges, not listed by
/// hand, so the record checks in `core` stay true to the declaration.
pub fn required_for_terminal() -> Vec<LifecycleState> {
    LifecycleState::ALL
        .into_iter()
        .filter(|&s| s != Injected && !s.is_terminal())
        .filter(|&s| !reachable_avoiding(Injected, Repaired, Some(s)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_is_reachable_in_order_and_not_backwards() {
        assert!(reachable(Injected, Repaired));
        assert!(reachable(Detected, Escalated));
        assert!(reachable(Diagnosed, Repaired));
        assert!(reachable(Escalated, Attempting));
        assert!(!reachable(Repaired, Detected));
        assert!(!reachable(Diagnosed, Detected));
        assert!(!reachable(Escalated, Diagnosed));
        // Reflexive by definition.
        for s in LifecycleState::ALL {
            assert!(reachable(s, s), "{} not self-reachable", s.name());
        }
    }

    #[test]
    fn detection_diagnosis_and_attempt_are_mandatory_waypoints() {
        assert_eq!(
            required_for_terminal(),
            vec![Detected, Diagnosed, Attempting]
        );
        // Escalation is optional: the agent path skips it.
        assert!(reachable_avoiding(Injected, Repaired, Some(Escalated)));
    }

    #[test]
    fn ledger_method_names_map_onto_states() {
        assert_eq!(LifecycleState::for_transition("open"), Some(Injected));
        assert_eq!(
            LifecycleState::for_transition("open_scoped"),
            Some(Injected)
        );
        assert_eq!(LifecycleState::for_transition("detect"), Some(Detected));
        assert_eq!(LifecycleState::for_transition("diagnose"), Some(Diagnosed));
        assert_eq!(LifecycleState::for_transition("attempt"), Some(Attempting));
        assert_eq!(LifecycleState::for_transition("escalate"), Some(Escalated));
        assert_eq!(LifecycleState::for_transition("restore"), Some(Repaired));
        assert_eq!(LifecycleState::for_transition("totals"), None);
    }

    #[test]
    fn only_the_attempt_escalation_loop_is_revisitable() {
        let looped: Vec<LifecycleState> = LifecycleState::ALL
            .into_iter()
            .filter(|&s| revisitable(s))
            .collect();
        assert_eq!(looped, vec![Attempting, Escalated]);
    }

    #[test]
    fn only_repair_terminates() {
        for s in LifecycleState::ALL {
            assert_eq!(s.is_terminal(), s == Repaired);
        }
        // Terminal means terminal: no outgoing edges.
        assert!(!LIFECYCLE_EDGES.iter().any(|&(a, _)| a == Repaired));
    }
}
