//! Bounded circular queue.
//!
//! The paper stores every persistent measurement file "as a circular
//! queue, the length of which was configurable" (§3.5). This is the
//! in-memory equivalent: a fixed-capacity ring that overwrites the
//! oldest entry when full.

use std::collections::VecDeque;

/// Fixed-capacity FIFO that evicts the oldest element on overflow.
#[derive(Debug, Clone)]
pub struct CircularQueue<T> {
    buf: VecDeque<T>,
    cap: usize,
    evicted: u64,
}

impl<T> CircularQueue<T> {
    /// A queue holding at most `cap` elements.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "circular queue capacity must be positive");
        CircularQueue {
            buf: VecDeque::with_capacity(cap),
            cap,
            evicted: 0,
        }
    }

    /// Append, evicting the oldest element if at capacity. Returns the
    /// evicted element, if any.
    pub fn push(&mut self, item: T) -> Option<T> {
        let evicted = if self.buf.len() == self.cap {
            self.evicted += 1;
            self.buf.pop_front()
        } else {
            None
        };
        self.buf.push_back(item);
        evicted
    }

    /// Current number of retained elements.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// How many elements have been overwritten over the queue's lifetime.
    pub fn evicted_count(&self) -> u64 {
        self.evicted
    }

    /// Oldest retained element.
    pub fn front(&self) -> Option<&T> {
        self.buf.front()
    }

    /// Newest retained element.
    pub fn back(&self) -> Option<&T> {
        self.buf.back()
    }

    /// Mutable access to the newest retained element.
    pub fn back_mut(&mut self) -> Option<&mut T> {
        self.buf.back_mut()
    }

    /// Iterate oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.buf.iter()
    }

    /// Drop all retained elements (capacity unchanged).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Grow or shrink the capacity. Shrinking evicts the oldest entries.
    ///
    /// # Panics
    /// Panics if `cap == 0`.
    pub fn set_capacity(&mut self, cap: usize) {
        assert!(cap > 0, "circular queue capacity must be positive");
        while self.buf.len() > cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.cap = cap;
    }
}

impl<T> Extend<T> for CircularQueue<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps() {
        let mut q = CircularQueue::new(3);
        assert_eq!(q.push(1), None);
        assert_eq!(q.push(2), None);
        assert_eq!(q.push(3), None);
        assert_eq!(q.push(4), Some(1));
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(q.len(), 3);
        assert_eq!(q.evicted_count(), 1);
    }

    #[test]
    fn front_back() {
        let mut q = CircularQueue::new(2);
        assert!(q.front().is_none());
        q.push("a");
        q.push("b");
        q.push("c");
        assert_eq!(q.front(), Some(&"b"));
        assert_eq!(q.back(), Some(&"c"));
    }

    #[test]
    fn shrink_capacity_evicts_oldest() {
        let mut q = CircularQueue::new(5);
        q.extend(1..=5);
        q.set_capacity(2);
        assert_eq!(q.iter().copied().collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(q.capacity(), 2);
        assert_eq!(q.evicted_count(), 3);
        // Growing back does not resurrect anything.
        q.set_capacity(10);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn clear_keeps_capacity() {
        let mut q = CircularQueue::new(4);
        q.extend(0..4);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = CircularQueue::<u8>::new(0);
    }
}
