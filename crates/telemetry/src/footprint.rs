//! Monitoring-overhead footprint model (intelliagent side).
//!
//! Figures 3 and 4 of the paper compare the CPU and memory consumed on a
//! monitored server by intelliagents versus BMC Patrol. Intelliagents
//! "are not memory resident" (§3.3): they wake from cron, run for a few
//! seconds, and exit — so their *average* CPU is the duty cycle times
//! their while-running usage, and their memory appears only as the small
//! transient footprint of a shell process (the paper measures ≈1.6 MB,
//! flat). The resident-monitor counterpart lives in
//! `intelliqos-baseline`.

use intelliqos_simkern::{SimDuration, SimRng};

/// Duty-cycle footprint of the non-resident agent suite on one server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgentFootprint {
    /// Cron wake period (the paper's X, typically 5 minutes).
    pub wake_period: SimDuration,
    /// How long one wake-up's work takes.
    pub run_duration: SimDuration,
    /// CPU % consumed while actually running (a shell pipeline).
    pub cpu_while_running_pct: f64,
    /// Transient resident set while running, MB.
    pub mem_while_running_mb: f64,
}

impl Default for AgentFootprint {
    /// Calibrated to reproduce the paper's measurements: ≈0.045 % mean
    /// CPU and 1.6 MB memory (Figures 3–4).
    fn default() -> Self {
        AgentFootprint {
            wake_period: SimDuration::from_mins(5),
            run_duration: SimDuration::from_secs(9),
            cpu_while_running_pct: 1.5,
            mem_while_running_mb: 1.6,
        }
    }
}

impl AgentFootprint {
    /// Mean CPU % over a long window: duty cycle × while-running usage.
    pub fn mean_cpu_pct(&self) -> f64 {
        let duty = self.run_duration.as_secs() as f64 / self.wake_period.as_secs().max(1) as f64;
        duty * self.cpu_while_running_pct
    }

    /// One sampled CPU-utilisation measurement over a half-hour
    /// averaging window, with small measurement noise — the numbers a
    /// `sar` sample would show (Figure 3's ≈0.042–0.047 band).
    pub fn sample_cpu_pct(&self, rng: &mut SimRng) -> f64 {
        (self.mean_cpu_pct() * (1.0 + rng.normal(0.0, 0.04))).max(0.0)
    }

    /// Sampled memory consumption, MB. Non-resident ⇒ the only memory a
    /// sampler ever attributes to the suite is the transient footprint,
    /// which is flat (Figure 4's constant 1.6 MB).
    pub fn sample_mem_mb(&self, _rng: &mut SimRng) -> f64 {
        self.mem_while_running_mb
    }

    /// Footprint when the suite is configured at a different cadence
    /// (the ABL-FREQ ablation): same work per wake-up, different duty
    /// cycle.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.wake_period = period;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_band() {
        let f = AgentFootprint::default();
        let mean = f.mean_cpu_pct();
        assert!((0.04..=0.05).contains(&mean), "mean = {mean}");
        assert_eq!(f.mem_while_running_mb, 1.6);
    }

    #[test]
    fn samples_stay_in_band() {
        let f = AgentFootprint::default();
        let mut rng = SimRng::stream(1, "fp");
        for _ in 0..100 {
            let s = f.sample_cpu_pct(&mut rng);
            assert!((0.035..=0.055).contains(&s), "sample = {s}");
            assert_eq!(f.sample_mem_mb(&mut rng), 1.6);
        }
    }

    #[test]
    fn faster_cadence_costs_more_cpu() {
        let base = AgentFootprint::default();
        let fast = base.with_period(SimDuration::from_mins(1));
        let slow = base.with_period(SimDuration::from_mins(30));
        assert!(fast.mean_cpu_pct() > base.mean_cpu_pct());
        assert!(slow.mean_cpu_pct() < base.mean_cpu_pct());
        assert!((fast.mean_cpu_pct() / base.mean_cpu_pct() - 5.0).abs() < 1e-9);
    }
}
