//! Measurement groups and metric extraction.
//!
//! §3.5: "We divided our measurements into 5 main groups: 1) Operating
//! system, 2) Network, 3) Disks, 4) Application processes and 5) User
//! processes. Measurements were kept in a special logs directory and
//! were classified first by server name and then by measurement group."

use std::collections::BTreeMap;
use std::fmt;

use intelliqos_simkern::SimRng;

use intelliqos_cluster::os::OsObservables;
use intelliqos_cluster::server::Server;

/// The paper's five measurement groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MetricGroup {
    /// Operating system (memory, CPU, run queue …).
    OperatingSystem,
    /// Network (interface stats, latency, name service …).
    Network,
    /// Disks (service times, throughput, filesystem usage).
    Disks,
    /// Application processes (service daemons).
    AppProcesses,
    /// User processes (analyst jobs, interactive work).
    UserProcesses,
}

impl MetricGroup {
    /// All groups.
    pub const ALL: [MetricGroup; 5] = [
        MetricGroup::OperatingSystem,
        MetricGroup::Network,
        MetricGroup::Disks,
        MetricGroup::AppProcesses,
        MetricGroup::UserProcesses,
    ];

    /// Directory name under `/logs/perf/<hostname>/`.
    pub fn dir_name(self) -> &'static str {
        match self {
            MetricGroup::OperatingSystem => "os",
            MetricGroup::Network => "network",
            MetricGroup::Disks => "disks",
            MetricGroup::AppProcesses => "appprocs",
            MetricGroup::UserProcesses => "userprocs",
        }
    }
}

impl fmt::Display for MetricGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.dir_name())
    }
}

/// A named metric snapshot: `(metric name, value)` pairs in BTreeMap
/// order for determinism.
pub type MetricSnapshot = BTreeMap<String, f64>;

/// Extract the OS-group metrics from one observation (§3.6 list 1).
pub fn os_metrics(obs: &OsObservables) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    m.insert("scan_rate".into(), obs.scan_rate);
    m.insert("page_outs".into(), obs.page_outs);
    m.insert("page_faults".into(), obs.page_faults);
    m.insert("free_mem_mb".into(), obs.free_mem_mb);
    m.insert("run_queue".into(), obs.run_queue);
    m.insert("cpu_idle_pct".into(), obs.cpu_idle_pct);
    m.insert("cpu_util_pct".into(), obs.cpu_util_pct);
    m.insert("blocked_procs".into(), obs.blocked_procs);
    m
}

/// Extract the disk-group metrics (§3.6: asvc_t/wsvc_t read and write
/// response times, 30-second sampling).
pub fn disk_metrics(obs: &OsObservables, server: &Server) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    m.insert("asvc_t_ms".into(), obs.asvc_t_ms);
    m.insert("wsvc_t_ms".into(), obs.wsvc_t_ms);
    m.insert("disk_throughput_mbps".into(), obs.disk_throughput_mbps);
    for mount in ["/", "/apps", "/logs"] {
        if let Some(frac) = server.fs.usage_fraction(mount) {
            let key = if mount == "/" {
                "fs_usage_root".to_string()
            } else {
                format!("fs_usage_{}", mount.trim_start_matches('/'))
            };
            m.insert(key, frac);
        }
    }
    m
}

/// Extract application-process metrics: per expected daemon command
/// name, live counts plus aggregate CPU/memory demand — "per command
/// name and arguments" (§3.5).
pub fn app_process_metrics(server: &Server, daemon_names: &[&str]) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    m.insert("zombie_count".into(), server.procs.zombie_count() as f64);
    for name in daemon_names {
        let count = server.procs.live_count(name);
        m.insert(format!("proc_{name}_count"), count as f64);
        let (cpu, mem): (f64, f64) = server
            .procs
            .by_name(name)
            .map(|p| (p.cpu_demand, p.mem_mb))
            .fold((0.0, 0.0), |(c, r), (dc, dr)| (c + dc, r + dr));
        m.insert(format!("proc_{name}_cpu"), cpu);
        m.insert(format!("proc_{name}_mem_mb"), mem);
    }
    m
}

/// Extract user-process metrics: "processes per user name" (§3.5).
pub fn user_process_metrics(server: &Server, users: &[&str]) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    for user in users {
        let mut count = 0.0;
        let mut cpu = 0.0;
        for p in server.procs.by_user(user) {
            count += 1.0;
            cpu += p.cpu_demand;
        }
        m.insert(format!("user_{user}_procs"), count);
        m.insert(format!("user_{user}_cpu"), cpu);
    }
    m.insert("users_logged_in".into(), server.users_logged_in as f64);
    m
}

/// Network-group metrics for one host: interface utilisation comes from
/// the fabric (supplied by the caller), name-service response time is
/// simulated here.
pub fn network_metrics(
    iface_util_frac: f64,
    rtt_ms: f64,
    nameserver_ok: bool,
    rng: &mut SimRng,
) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    m.insert("iface_util_frac".into(), iface_util_frac);
    m.insert("rtt_ms".into(), rtt_ms);
    m.insert(
        "nameserver_resp_ms".into(),
        if nameserver_ok {
            (2.0 * (1.0 + rng.normal(0.0, 0.2))).max(0.5)
        } else {
            5_000.0 // resolver timeout
        },
    );
    m
}

/// Microstate accounting summary per process name: fraction of
/// accounted time actually on-CPU (§3.5: "to determine accurately the
/// behaviour of each process, we used microstate measurements").
pub fn microstate_metrics(server: &Server) -> MetricSnapshot {
    let mut m = MetricSnapshot::new();
    let mut by_name: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for p in server.procs.iter() {
        let e = by_name.entry(p.name.as_str()).or_insert((0, 0));
        e.0 += p.micro.user_ns + p.micro.system_ns;
        e.1 += p.micro.total_ns();
    }
    for (name, (on_cpu, total)) in by_name {
        if total > 0 {
            m.insert(
                format!("micro_{name}_oncpu_frac"),
                on_cpu as f64 / total as f64,
            );
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_cluster::os::LoadVector;
    use intelliqos_simkern::{SimDuration, SimTime};

    fn server() -> Server {
        Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        )
    }

    fn observe(s: &Server) -> OsObservables {
        let mut rng = SimRng::stream(0, "m");
        OsObservables::observe(&s.effective_spec(), &LoadVector::default(), &mut rng)
    }

    #[test]
    fn os_metrics_cover_section_3_6() {
        let s = server();
        let m = os_metrics(&observe(&s));
        for key in [
            "scan_rate",
            "page_outs",
            "page_faults",
            "free_mem_mb",
            "run_queue",
            "cpu_idle_pct",
            "blocked_procs",
        ] {
            assert!(m.contains_key(key), "missing {key}");
        }
    }

    #[test]
    fn disk_metrics_include_fs_usage() {
        let mut s = server();
        s.fs.append("/logs/x", "y".repeat(1023), SimTime::ZERO)
            .unwrap();
        let m = disk_metrics(&observe(&s), &s);
        assert!(m.contains_key("asvc_t_ms"));
        assert!(m.contains_key("wsvc_t_ms"));
        assert!(m["fs_usage_logs"] > 0.0);
        assert!(m.contains_key("fs_usage_root"));
    }

    #[test]
    fn app_process_metrics_count_daemons() {
        let mut s = server();
        s.procs
            .spawn("ora_pmon", "", "dba", 0.05, 64.0, 0.0, SimTime::ZERO);
        s.procs
            .spawn("ora_dbw", "", "dba", 0.2, 256.0, 0.1, SimTime::ZERO);
        s.procs
            .spawn("ora_dbw", "", "dba", 0.2, 256.0, 0.1, SimTime::ZERO);
        let m = app_process_metrics(&s, &["ora_pmon", "ora_dbw", "ghost"]);
        assert_eq!(m["proc_ora_pmon_count"], 1.0);
        assert_eq!(m["proc_ora_dbw_count"], 2.0);
        assert_eq!(m["proc_ghost_count"], 0.0);
        assert!((m["proc_ora_dbw_mem_mb"] - 512.0).abs() < 1e-9);
        assert_eq!(m["zombie_count"], 0.0);
    }

    #[test]
    fn user_process_metrics_group_by_user() {
        let mut s = server();
        s.procs.spawn(
            "lsf_job",
            "datamine",
            "analyst01",
            4.0,
            3072.0,
            0.4,
            SimTime::ZERO,
        );
        s.procs.spawn(
            "lsf_job",
            "report",
            "analyst01",
            1.0,
            512.0,
            0.1,
            SimTime::ZERO,
        );
        s.users_logged_in = 5;
        let m = user_process_metrics(&s, &["analyst01", "analyst02"]);
        assert_eq!(m["user_analyst01_procs"], 2.0);
        assert_eq!(m["user_analyst02_procs"], 0.0);
        assert!((m["user_analyst01_cpu"] - 5.0).abs() < 1e-9);
        assert_eq!(m["users_logged_in"], 5.0);
    }

    #[test]
    fn network_metrics_reflect_nameserver_health() {
        let mut rng = SimRng::stream(1, "net");
        let ok = network_metrics(0.2, 0.5, true, &mut rng);
        let bad = network_metrics(0.2, 0.5, false, &mut rng);
        assert!(ok["nameserver_resp_ms"] < 10.0);
        assert_eq!(bad["nameserver_resp_ms"], 5000.0);
    }

    #[test]
    fn microstate_metrics_aggregate_by_name() {
        let mut s = server();
        let pid = s
            .procs
            .spawn("fe_calc", "", "fin", 0.3, 128.0, 0.0, SimTime::ZERO);
        s.procs
            .get_mut(pid)
            .unwrap()
            .account(SimDuration::from_secs(10), 0.5);
        let m = microstate_metrics(&s);
        let frac = m["micro_fe_calc_oncpu_frac"];
        assert!((frac - 0.5).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn group_dir_names_stable() {
        assert_eq!(MetricGroup::OperatingSystem.dir_name(), "os");
        assert_eq!(MetricGroup::UserProcesses.dir_name(), "userprocs");
        assert_eq!(MetricGroup::ALL.len(), 5);
    }
}
