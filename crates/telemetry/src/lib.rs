//! # intelliqos-telemetry
//!
//! Performance measurement for the `intelliqos` reproduction of Corsava
//! & Getov (IPDPS 2003): the paper's five measurement groups, metric
//! extraction from the simulated substrate, circular-queue ASCII logs,
//! timestamp-joined time series, threshold baselines with breach
//! notifications, microstate accounting summaries, daily summary
//! reports, and the non-resident agent footprint model behind
//! Figures 3–4.

#![warn(missing_docs)]

pub mod collector;
pub mod footprint;
pub mod metrics;
pub mod report;

pub use collector::{Breach, PerfCollector};
pub use footprint::AgentFootprint;
pub use metrics::{
    app_process_metrics, disk_metrics, microstate_metrics, network_metrics, os_metrics,
    user_process_metrics, MetricGroup, MetricSnapshot,
};
pub use report::{daily_report, summarize_series, MetricSummary};
