//! Summary reports.
//!
//! §4: the agents "recorded all measurements and emailed summary
//! reports to nominated administrators on a daily basis, on demand and
//! whenever a job failed." A report is plain ASCII — per-metric
//! mean/min/max/last over a window, plus the breach log — so operators
//! can read it in a 2003 mail client.

use intelliqos_simkern::{SimTime, TimeSeries};

use crate::collector::{Breach, PerfCollector};

/// One row of the per-metric summary table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSummary {
    /// Metric name.
    pub metric: String,
    /// Samples in the window.
    pub samples: u64,
    /// Mean value.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Last value in the window.
    pub last: f64,
}

/// Summarise one series over `[from, to)`.
pub fn summarize_series(
    metric: &str,
    series: &TimeSeries,
    from: SimTime,
    to: SimTime,
) -> Option<MetricSummary> {
    let stats = series.window_stats(from, to);
    if stats.count() == 0 {
        return None;
    }
    let last = series
        .points()
        .iter()
        .rev()
        .find(|&&(t, _)| t >= from && t < to)
        .map(|&(_, v)| v)?;
    Some(MetricSummary {
        metric: metric.to_string(),
        samples: stats.count(),
        mean: stats.mean(),
        min: stats.min().unwrap_or(0.0),
        max: stats.max().unwrap_or(0.0),
        last,
    })
}

/// Render the daily summary email for one collector.
pub fn daily_report(collector: &PerfCollector, from: SimTime, to: SimTime) -> Vec<String> {
    let mut lines = Vec::new();
    lines.push(format!(
        "PERFORMANCE SUMMARY host={} group={} window={}..{}",
        collector.hostname, collector.group, from, to
    ));
    lines.push("metric samples mean min max last".to_string());
    for name in collector.metric_names() {
        if let Some(series) = collector.series(name) {
            if let Some(s) = summarize_series(name, series, from, to) {
                lines.push(format!(
                    "{} {} {:.3} {:.3} {:.3} {:.3}",
                    s.metric, s.samples, s.mean, s.min, s.max, s.last
                ));
            }
        }
    }
    let window_breaches: Vec<&Breach> = collector
        .breaches()
        .iter()
        .filter(|b| b.at >= from && b.at < to)
        .collect();
    lines.push(format!("breaches={}", window_breaches.len()));
    for b in window_breaches {
        lines.push(format!(
            "BREACH at={} var={} value={:.3}",
            b.at, b.violation.var, b.violation.value
        ));
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricGroup;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_cluster::server::Server;
    use intelliqos_ontology::constraint::{Bounds, ConstraintStore};
    use intelliqos_simkern::SimDuration;

    fn collector_with_data() -> (PerfCollector, Server) {
        let mut thresholds = ConstraintStore::new();
        thresholds.set("run_queue", Bounds::at_most(4.0));
        let mut c = PerfCollector::new("db000", MetricGroup::OperatingSystem, thresholds, 1000);
        let mut s = Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        );
        for i in 0..24u64 {
            let mut snap = std::collections::BTreeMap::new();
            snap.insert("run_queue".to_string(), if i == 20 { 8.0 } else { 1.0 });
            snap.insert("cpu_idle_pct".to_string(), 80.0 + i as f64 * 0.1);
            c.ingest(&snap, &mut s, SimTime::ZERO + SimDuration::from_hours(i));
        }
        (c, s)
    }

    #[test]
    fn summarize_series_window() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(SimTime::from_mins(i), i as f64);
        }
        let s = summarize_series("m", &ts, SimTime::from_mins(2), SimTime::from_mins(6)).unwrap();
        assert_eq!(s.samples, 4);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.last, 5.0);
        assert!((s.mean - 3.5).abs() < 1e-12);
        assert!(
            summarize_series("m", &ts, SimTime::from_hours(5), SimTime::from_hours(6)).is_none()
        );
    }

    #[test]
    fn daily_report_contains_metrics_and_breaches() {
        let (c, _) = collector_with_data();
        let report = daily_report(&c, SimTime::ZERO, SimTime::from_days(1));
        assert!(report[0].contains("host=db000"));
        assert!(report.iter().any(|l| l.starts_with("run_queue 24 ")));
        assert!(report.iter().any(|l| l.starts_with("cpu_idle_pct ")));
        assert!(report.iter().any(|l| l == "breaches=1"));
        assert!(report
            .iter()
            .any(|l| l.contains("var=run_queue value=8.000")));
    }

    #[test]
    fn report_windows_are_disjoint() {
        let (c, _) = collector_with_data();
        // Second "day" has no data (we only generated 24 hourly points).
        let report = daily_report(&c, SimTime::from_days(1), SimTime::from_days(2));
        assert!(report.iter().any(|l| l == "breaches=0"));
        assert!(!report.iter().any(|l| l.starts_with("run_queue ")));
    }
}
