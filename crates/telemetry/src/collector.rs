//! The performance-collection pipeline.
//!
//! A [`PerfCollector`] is the state a performance intelliagent carries
//! for one server: per-metric time series (timestamp-ordered, §3.5),
//! circular-queue log files written into the server's `/logs/perf/…`
//! tree, threshold baselines, and the breach notifications it raised.
//!
//! "All techniques were non-intrusive as they did not load the system
//! they were monitoring" — collection itself costs nothing in the
//! simulation's load model; the *footprint* of the monitoring process is
//! modelled separately for Figures 3–4.

use std::collections::BTreeMap;

use intelliqos_simkern::{CircularQueue, SimTime, TimeSeries};

use intelliqos_cluster::server::Server;

use intelliqos_ontology::constraint::{ConstraintStore, Violation};

use crate::metrics::{MetricGroup, MetricSnapshot};

/// A threshold-breach notification (§3.5: "Every time a threshold was
/// exceeded they notified us via email or SMS").
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// When it was detected.
    pub at: SimTime,
    /// Hostname.
    pub hostname: String,
    /// Measurement group.
    pub group: MetricGroup,
    /// The violation itself.
    pub violation: Violation,
}

/// Per-server, per-group collection state.
#[derive(Debug, Clone)]
pub struct PerfCollector {
    /// Hostname this collector watches.
    pub hostname: String,
    /// Which measurement group it owns ("for each monitored resource
    /// type or workgroup, a dedicated performance intelliagent").
    pub group: MetricGroup,
    /// Baseline thresholds.
    pub thresholds: ConstraintStore,
    /// Circular log length (lines) — "managed as a circular queue, the
    /// length of which was configurable".
    pub log_capacity: usize,
    series: BTreeMap<String, TimeSeries>,
    log: CircularQueue<String>,
    breaches: Vec<Breach>,
}

impl PerfCollector {
    /// New collector.
    pub fn new(
        hostname: impl Into<String>,
        group: MetricGroup,
        thresholds: ConstraintStore,
        log_capacity: usize,
    ) -> Self {
        PerfCollector {
            hostname: hostname.into(),
            group,
            thresholds,
            log_capacity,
            series: BTreeMap::new(),
            log: CircularQueue::new(log_capacity.max(1)),
            breaches: Vec::new(),
        }
    }

    /// Path of this collector's log file on the server.
    pub fn log_path(&self) -> String {
        format!("/logs/perf/{}/{}", self.hostname, self.group.dir_name())
    }

    /// Ingest one snapshot: extend the series, write the circular log
    /// file onto the server's filesystem, check thresholds. Returns the
    /// breaches raised by this sample.
    pub fn ingest(
        &mut self,
        snapshot: &MetricSnapshot,
        server: &mut Server,
        now: SimTime,
    ) -> Vec<Breach> {
        // Series, timestamp-ordered.
        for (name, &value) in snapshot {
            self.series
                .entry(name.clone())
                .or_default()
                .push(now, value);
        }
        // One ASCII log line per sample: "ts k=v k=v …" — the flat
        // format the paper's operators could grep.
        let mut line = format!("t={}", now.as_secs());
        for (name, value) in snapshot {
            line.push_str(&format!(" {name}={value:.3}"));
        }
        self.log.push(line);
        // Rewrite the circular file (oldest → newest window).
        let lines: Vec<String> = self.log.iter().cloned().collect();
        // A full /logs filesystem makes this write fail — that is a real
        // fault the resource agent must notice; the collector itself
        // soldiers on with its in-memory window.
        let _ = server.fs.write(self.log_path(), lines, now);
        // Threshold checks.
        let violations = self.thresholds.check(snapshot);
        let breaches: Vec<Breach> = violations
            .into_iter()
            .map(|violation| Breach {
                at: now,
                hostname: self.hostname.clone(),
                group: self.group,
                violation,
            })
            .collect();
        self.breaches.extend(breaches.iter().cloned());
        breaches
    }

    /// Time series for a metric.
    pub fn series(&self, metric: &str) -> Option<&TimeSeries> {
        self.series.get(metric)
    }

    /// Names of all collected metrics.
    pub fn metric_names(&self) -> Vec<&str> {
        self.series.keys().map(|s| s.as_str()).collect()
    }

    /// All breaches raised so far.
    pub fn breaches(&self) -> &[Breach] {
        &self.breaches
    }

    /// The retained log window (oldest → newest).
    pub fn log_lines(&self) -> Vec<&str> {
        self.log.iter().map(|s| s.as_str()).collect()
    }

    /// Associate two metrics by timestamp (§3.5: "Different types of
    /// measurements were associated together by matching their
    /// timestamps"), applying `f` to each matched pair.
    pub fn correlate<F>(&self, a: &str, b: &str, f: F) -> Option<TimeSeries>
    where
        F: FnMut(SimTime, f64, f64) -> f64,
    {
        Some(self.series.get(a)?.join_with(self.series.get(b)?, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_ontology::constraint::Bounds;

    fn server() -> Server {
        Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        )
    }

    fn snapshot(pairs: &[(&str, f64)]) -> MetricSnapshot {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn collector(cap: usize) -> PerfCollector {
        let mut thresholds = ConstraintStore::new();
        thresholds.set("run_queue", Bounds::at_most(4.0));
        PerfCollector::new("db000", MetricGroup::OperatingSystem, thresholds, cap)
    }

    #[test]
    fn ingest_builds_series_and_log_file() {
        let mut c = collector(100);
        let mut s = server();
        for i in 0..5 {
            c.ingest(
                &snapshot(&[("run_queue", i as f64), ("cpu_idle_pct", 90.0)]),
                &mut s,
                SimTime::from_mins(i * 10),
            );
        }
        assert_eq!(c.series("run_queue").unwrap().len(), 5);
        assert_eq!(c.metric_names(), vec!["cpu_idle_pct", "run_queue"]);
        // The on-disk circular file exists and has 5 lines.
        let f = s.fs.read("/logs/perf/db000/os").unwrap();
        assert_eq!(f.lines.len(), 5);
        assert!(f.lines[0].starts_with("t=0 "));
    }

    #[test]
    fn circular_log_rotates() {
        let mut c = collector(3);
        let mut s = server();
        for i in 0..10u64 {
            c.ingest(
                &snapshot(&[("run_queue", 0.0)]),
                &mut s,
                SimTime::from_mins(i),
            );
        }
        let lines = c.log_lines();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("t=420")); // minute 7
        let f = s.fs.read("/logs/perf/db000/os").unwrap();
        assert_eq!(f.lines.len(), 3);
    }

    #[test]
    fn breaches_fire_on_threshold() {
        let mut c = collector(10);
        let mut s = server();
        let quiet = c.ingest(&snapshot(&[("run_queue", 1.0)]), &mut s, SimTime::ZERO);
        assert!(quiet.is_empty());
        let noisy = c.ingest(
            &snapshot(&[("run_queue", 9.0)]),
            &mut s,
            SimTime::from_mins(10),
        );
        assert_eq!(noisy.len(), 1);
        assert_eq!(noisy[0].violation.var, "run_queue");
        assert_eq!(noisy[0].hostname, "db000");
        assert_eq!(c.breaches().len(), 1);
    }

    #[test]
    fn full_logs_filesystem_does_not_kill_collection() {
        let mut c = collector(10);
        let mut s = server();
        // Re-mount /logs tiny and fill it completely.
        s.fs.add_mount("/logs", 4096);
        let big = "x".repeat(1024);
        while s
            .fs
            .append("/logs/filler", big.clone(), SimTime::ZERO)
            .is_ok()
        {}
        let breaches = c.ingest(&snapshot(&[("run_queue", 9.0)]), &mut s, SimTime::ZERO);
        // Breach detection still works from memory even though the
        // on-disk write failed.
        assert_eq!(breaches.len(), 1);
        assert_eq!(c.log_lines().len(), 1);
    }

    #[test]
    fn correlate_joins_by_timestamp() {
        let mut c = collector(10);
        let mut s = server();
        c.ingest(&snapshot(&[("a", 2.0), ("b", 3.0)]), &mut s, SimTime::ZERO);
        c.ingest(
            &snapshot(&[("a", 4.0), ("b", 5.0)]),
            &mut s,
            SimTime::from_mins(1),
        );
        let prod = c.correlate("a", "b", |_, x, y| x * y).unwrap();
        assert_eq!(prod.points()[0].1, 6.0);
        assert_eq!(prod.points()[1].1, 20.0);
        assert!(c.correlate("a", "ghost", |_, x, _| x).is_none());
    }
}
