//! The world-construction ontology gate: seeded violations must be
//! refused with the right rule id, shipped presets must pass clean.

use intelliqos_core::{ManagementMode, ScenarioConfig, World};
use intelliqos_services::spec::{DbEngine, ServiceSpec};

fn small(seed: u64) -> ScenarioConfig {
    ScenarioConfig::small(seed, ManagementMode::Intelliagents)
}

/// Rule ids present in a `try_build` rejection.
fn rejection_rules(cfg: ScenarioConfig) -> Vec<String> {
    let Err(err) = World::try_build(cfg) else {
        panic!("invalid ontology must be rejected")
    };
    assert!(!err.diags.is_empty());
    err.diags.iter().map(|d| d.rule.to_string()).collect()
}

#[test]
fn shipped_presets_construct_clean() {
    for mode in [ManagementMode::ManualOps, ManagementMode::Intelliagents] {
        let world = World::try_build(ScenarioConfig::small(7, mode))
            .expect("shipped preset must construct");
        assert!(world.ontology_diagnostics().is_empty());
    }
}

#[test]
fn seeded_dependency_cycle_is_rejected() {
    let mut cfg = small(7);
    // Two daemons on separate hosts (no port clash: 0 = no listener)
    // that depend on each other — an unbootable startup order.
    let mut a = ServiceSpec::name_server("cyc-a");
    a.port = 0;
    a.depends_on = vec!["cyc-b".into()];
    let mut b = ServiceSpec::name_server("cyc-b");
    b.port = 0;
    b.depends_on = vec!["cyc-a".into()];
    cfg.extra_services = vec![("db000".into(), a), ("db001".into(), b)];

    let Err(err) = World::try_build(cfg) else {
        panic!("cycle must be rejected")
    };
    let cycle = err
        .diags
        .iter()
        .find(|d| d.rule == "startup-cycle")
        .expect("startup-cycle diagnostic");
    // The concrete cycle is printed, not just asserted to exist.
    assert!(
        cycle.message.contains("cyc-a") && cycle.message.contains("cyc-b"),
        "cycle path should be spelled out: {}",
        cycle.message
    );
}

#[test]
fn seeded_duplicate_port_is_rejected() {
    let mut cfg = small(7);
    // A second database on db000 claims the same listener port (1521)
    // as the tier's own trades-db-000.
    cfg.extra_services = vec![(
        "db000".into(),
        ServiceSpec::database("rogue-db", DbEngine::Oracle),
    )];
    assert!(rejection_rules(cfg).contains(&"duplicate-port".to_string()));
}

#[test]
fn seeded_dangling_dependency_is_rejected() {
    let mut cfg = small(7);
    let mut ghost = ServiceSpec::name_server("ghost-client");
    ghost.port = 0;
    ghost.depends_on = vec!["no-such-service".into()];
    cfg.extra_services = vec![("tx001".into(), ghost)];
    assert!(rejection_rules(cfg).contains(&"dangling-dependency".to_string()));
}

#[test]
#[should_panic(expected = "duplicate-port")]
fn build_panics_fail_fast_naming_the_rule() {
    let mut cfg = small(7);
    cfg.extra_services = vec![(
        "db000".into(),
        ServiceSpec::database("rogue-db", DbEngine::Oracle),
    )];
    let _ = World::build(cfg);
}
