//! Run profile report: the machine-readable evidence a profiled world
//! run carries.
//!
//! [`World::enable_profile`](crate::world::World::enable_profile) turns
//! on the [`MetricsRegistry`] / [`Profiler`] pair that
//! `World::run_to_end` feeds; this module folds those raw counters and
//! span histograms into the shape the bench binaries and
//! `scripts/triage.sh` publish next to every figure:
//!
//! * throughput — events processed and events/second of wall clock,
//! * per-event-kind dispatch counts and latency percentiles,
//! * wall-clock **time share per subsystem** (fault, workload, agent,
//!   admin, manual), computed from the dispatch spans of the twelve
//!   [`WorldEvent`](crate::world::WorldEvent) kinds,
//! * the top-k hottest inner spans (per-agent-category sweeps, DGSPL
//!   generation, LSF dispatch) — the list the next scaling PR will be
//!   judged against.

use crate::downtime::json_str;
use crate::world::{World, WorldEvent};
use intelliqos_simkern::HistSummary;

/// How many of the hottest inner spans the report keeps.
pub const TOP_K: usize = 8;

/// Dispatch profile of one event kind.
#[derive(Debug, Clone, PartialEq)]
pub struct KindProfile {
    /// Event-kind label (one of [`WorldEvent::KINDS`]).
    pub kind: &'static str,
    /// How many events of this kind were dispatched.
    pub count: u64,
    /// Wall-clock nanoseconds per dispatch, summarised.
    pub ns: HistSummary,
}

/// Accumulated wall-clock share of one subsystem's event handlers.
#[derive(Debug, Clone, PartialEq)]
pub struct SubsystemShare {
    /// Subsystem label (`fault`, `workload`, `agent`, `admin`, `manual`).
    pub subsystem: &'static str,
    /// Total nanoseconds spent dispatching this subsystem's events.
    pub ns: u64,
    /// Fraction of all accounted dispatch time (0 when nothing ran).
    pub share: f64,
}

/// One hot inner span (sweep category, DGSPL generation, LSF dispatch).
#[derive(Debug, Clone, PartialEq)]
pub struct HotSpan {
    /// Span name, e.g. `sweep.service`.
    pub span: String,
    /// Wall-clock nanoseconds summarised over all firings.
    pub ns: HistSummary,
}

/// The full self-measurement evidence of one world run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Whether the run was actually profiled (`enable_profile`).
    pub enabled: bool,
    /// Wall-clock nanoseconds of the whole event loop (`run.total`).
    pub wall_ns: u64,
    /// Events popped and dispatched within the horizon.
    pub events_processed: u64,
    /// Dispatch throughput: events per wall-clock second.
    pub events_per_sec: f64,
    /// Per-event-kind dispatch profile, hottest (by total ns) first.
    pub kinds: Vec<KindProfile>,
    /// Wall-clock share per subsystem, largest first.
    pub subsystems: Vec<SubsystemShare>,
    /// Top-[`TOP_K`] hottest inner spans by total ns, largest first.
    pub hottest: Vec<HotSpan>,
    /// All semantic counters (faults injected, jobs dispatched, …).
    pub counters: Vec<(&'static str, u64)>,
    /// All gauges (DGSPL entries, horizon seconds, …).
    pub gauges: Vec<(&'static str, f64)>,
}

/// Which subsystem a dispatched event kind is accounted to.
pub fn kind_subsystem(kind: &str) -> &'static str {
    match kind {
        "submit-arrival" | "job-done" => "workload",
        "inject-fault" | "crash-sweep" | "reboot-done" => "fault",
        "agent-sweep" | "e2e-sweep" | "perf-sweep" | "service-ready" => "agent",
        "admin-sweep" | "dgspl-regen" => "admin",
        "manual-restore" => "manual",
        _ => "other",
    }
}

impl ProfileReport {
    /// Fold a (typically finished) world's registry + profiler into the
    /// report. Cheap; callable on an unprofiled world (everything zero,
    /// `enabled: false`).
    pub fn from_world(world: &World) -> Self {
        let metrics = &world.metrics;
        let profiler = &world.profiler;
        let wall_ns = profiler.total_ns("run.total");
        let events_processed = metrics.counter("events.processed");
        let events_per_sec = if wall_ns > 0 {
            events_processed as f64 / (wall_ns as f64 / 1e9)
        } else {
            0.0
        };

        let mut kinds: Vec<KindProfile> = WorldEvent::KINDS
            .iter()
            .filter_map(|&kind| {
                let count = metrics.counter(kind);
                if count == 0 {
                    return None;
                }
                let ns = profiler.span(kind).map(|h| h.summary()).unwrap_or_default();
                Some(KindProfile { kind, count, ns })
            })
            .collect();
        kinds.sort_by(|a, b| b.ns.sum.cmp(&a.ns.sum).then(a.kind.cmp(b.kind)));

        let mut by_subsystem: Vec<(&'static str, u64)> = Vec::new();
        for k in &kinds {
            let sub = kind_subsystem(k.kind);
            match by_subsystem.iter_mut().find(|(s, _)| *s == sub) {
                Some((_, ns)) => *ns += k.ns.sum,
                None => by_subsystem.push((sub, k.ns.sum)),
            }
        }
        let accounted: u64 = by_subsystem.iter().map(|(_, ns)| ns).sum();
        let mut subsystems: Vec<SubsystemShare> = by_subsystem
            .into_iter()
            .map(|(subsystem, ns)| SubsystemShare {
                subsystem,
                ns,
                share: if accounted > 0 {
                    ns as f64 / accounted as f64
                } else {
                    0.0
                },
            })
            .collect();
        subsystems.sort_by(|a, b| b.ns.cmp(&a.ns).then(a.subsystem.cmp(b.subsystem)));

        // Inner spans: everything the profiler holds that is not a
        // top-level dispatch span or the run marker.
        let mut hottest: Vec<HotSpan> = profiler
            .spans()
            .filter(|(name, _)| *name != "run.total" && !WorldEvent::KINDS.contains(name))
            .map(|(name, h)| HotSpan {
                span: name.to_string(),
                ns: h.summary(),
            })
            .collect();
        hottest.sort_by(|a, b| b.ns.sum.cmp(&a.ns.sum).then(a.span.cmp(&b.span)));
        hottest.truncate(TOP_K);

        ProfileReport {
            enabled: metrics.is_enabled(),
            wall_ns,
            events_processed,
            events_per_sec,
            kinds,
            subsystems,
            hottest,
            counters: metrics.counters().collect(),
            gauges: metrics.gauges().collect(),
        }
    }

    /// Human-readable table for terminals (`triage`'s profile section).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.enabled {
            out.push_str("profile: disabled (run with --profile)\n");
            return out;
        }
        out.push_str(&format!(
            "profile: {} events in {:.3} s wall  ({:.0} events/s)\n",
            self.events_processed,
            self.wall_ns as f64 / 1e9,
            self.events_per_sec
        ));
        out.push_str("  time share per subsystem:\n");
        for s in &self.subsystems {
            out.push_str(&format!(
                "    {:<10} {:>6.1}%  {:>12} ns\n",
                s.subsystem,
                s.share * 100.0,
                s.ns
            ));
        }
        out.push_str("  event kinds (hottest first):\n");
        for k in &self.kinds {
            out.push_str(&format!(
                "    {:<16} n={:<8} total={:>12} ns  p50={} p99={} max={}\n",
                k.kind, k.count, k.ns.sum, k.ns.p50, k.ns.p99, k.ns.max
            ));
        }
        out.push_str("  hottest inner spans:\n");
        for h in &self.hottest {
            out.push_str(&format!(
                "    {:<20} n={:<8} total={:>12} ns  p50={} p99={} max={}\n",
                h.span, h.ns.count, h.ns.sum, h.ns.p50, h.ns.p99, h.ns.max
            ));
        }
        out
    }

    /// JSON rendering, embedded by [`crate::export::run_export_json`]
    /// and written as evidence by the bench binaries.
    pub fn to_json(&self) -> String {
        fn hist(ns: &HistSummary) -> String {
            format!(
                "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"max_ns\": {}}}",
                ns.count, ns.sum, ns.p50, ns.p90, ns.p99, ns.max
            )
        }
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"enabled\": {},\n", self.enabled));
        out.push_str(&format!("  \"wall_ns\": {},\n", self.wall_ns));
        out.push_str(&format!(
            "  \"events_processed\": {},\n",
            self.events_processed
        ));
        out.push_str(&format!(
            "  \"events_per_sec\": {},\n",
            json_f64(self.events_per_sec)
        ));
        out.push_str("  \"subsystems\": [");
        for (i, s) in self.subsystems.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"subsystem\": {}, \"ns\": {}, \"share\": {}}}",
                json_str(s.subsystem),
                s.ns,
                json_f64(s.share)
            ));
        }
        out.push_str("],\n  \"kinds\": [");
        for (i, k) in self.kinds.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"kind\": {}, \"count\": {}, \"ns\": {}}}",
                json_str(k.kind),
                k.count,
                hist(&k.ns)
            ));
        }
        out.push_str("],\n  \"hottest\": [");
        for (i, h) in self.hottest.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"span\": {}, \"ns\": {}}}",
                json_str(&h.span),
                hist(&h.ns)
            ));
        }
        out.push_str("],\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), v));
        }
        out.push_str("},\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_f64(*v)));
        }
        out.push_str("}\n}");
        out
    }
}

/// Finite-float JSON rendering (NaN/inf have no JSON literal; clamp to
/// 0 so the document stays parseable whatever the gauges held).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; keep it a JSON
        // number either way (integers are valid JSON numbers).
        s
    } else {
        "0".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{ManagementMode, ScenarioConfig};
    use intelliqos_simkern::SimDuration;

    fn run(profiled: bool) -> World {
        let mut cfg = ScenarioConfig::small(7, ManagementMode::Intelliagents);
        cfg.horizon = SimDuration::from_days(3);
        let mut world = World::build(cfg);
        if profiled {
            world = world.enable_profile();
        }
        world.run_to_end();
        world
    }

    #[test]
    fn unprofiled_run_reports_disabled_and_empty() {
        let world = run(false);
        let p = ProfileReport::from_world(&world);
        assert!(!p.enabled);
        assert_eq!(p.wall_ns, 0);
        assert_eq!(p.events_processed, 0);
        assert!(p.kinds.is_empty());
        assert!(p.subsystems.is_empty());
        assert!(p.hottest.is_empty());
    }

    #[test]
    fn profiled_run_accounts_every_dispatched_event() {
        let world = run(true);
        let p = ProfileReport::from_world(&world);
        assert!(p.enabled);
        assert!(p.wall_ns > 0);
        assert!(p.events_per_sec > 0.0);
        // Every dispatched event is in exactly one kind row.
        let by_kind: u64 = p.kinds.iter().map(|k| k.count).sum();
        assert_eq!(by_kind, p.events_processed);
        // Span counts agree with the counters.
        for k in &p.kinds {
            assert_eq!(k.ns.count, k.count, "{}", k.kind);
        }
        // Shares sum to ~1 over the accounted subsystems.
        let total: f64 = p.subsystems.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
        // The agent sweeps leave inner spans behind.
        assert!(p.hottest.iter().any(|h| h.span.starts_with("sweep.")));
    }

    #[test]
    fn kind_subsystem_covers_all_kinds() {
        for kind in WorldEvent::KINDS {
            assert_ne!(kind_subsystem(kind), "other", "{kind} unmapped");
        }
    }

    #[test]
    fn table_and_json_render() {
        let world = run(true);
        let p = ProfileReport::from_world(&world);
        let table = p.render_table();
        assert!(table.contains("time share per subsystem"));
        assert!(table.contains("agent"));
        let json = p.to_json();
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"subsystem\": \"agent\""));
        let parsed = crate::jsonv::parse(&json).expect("profile JSON parses");
        assert_eq!(
            parsed.get("events_processed").and_then(|v| v.as_u64()),
            Some(p.events_processed)
        );
    }
}
