//! The flag-file protocol.
//!
//! §3.3: "Whenever a local intelliagent runs, it produces a flag in the
//! dedicated `/logs/intelliagents/intelliagent_name` directory on the
//! local server disk to show the status of the run. A number of flags
//! are produced with appropriate naming conventions that show what
//! happened and exactly where the agent found a fault. Absence of these
//! flags means that we either have an internal intelliagent problem or
//! that they did not run at all."
//!
//! Flag paths encode `agent / run_<t>.<outcome>[.<detail>]`. Admin
//! servers watch flag freshness; agents clean their own old flags
//! (self-maintenance).

use intelliqos_cluster::fs::SimFs;
use intelliqos_simkern::SimTime;

/// Root directory for all agent flags.
pub const FLAG_ROOT: &str = "/logs/intelliagents";

/// Install location of the agent suite, fixed by convention ("always in
/// the same physical location `/apps/intelliagents`").
pub const AGENT_INSTALL_PATH: &str = "/apps/intelliagents";

/// Outcome encoded in a flag name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlagOutcome {
    /// Run completed, nothing wrong.
    Ok,
    /// A fault was detected (detail names where).
    FaultDetected,
    /// A fault was detected and repaired.
    Repaired,
    /// A fault was detected but could not be healed; humans paged.
    Escalated,
    /// The agent itself hit an internal error.
    AgentError,
}

impl FlagOutcome {
    /// Suffix used in the flag filename.
    pub fn suffix(self) -> &'static str {
        match self {
            FlagOutcome::Ok => "ok",
            FlagOutcome::FaultDetected => "fault",
            FlagOutcome::Repaired => "repaired",
            FlagOutcome::Escalated => "escalated",
            FlagOutcome::AgentError => "agenterror",
        }
    }

    /// Parse a suffix back.
    pub fn from_suffix(s: &str) -> Option<FlagOutcome> {
        Some(match s {
            "ok" => FlagOutcome::Ok,
            "fault" => FlagOutcome::FaultDetected,
            "repaired" => FlagOutcome::Repaired,
            "escalated" => FlagOutcome::Escalated,
            "agenterror" => FlagOutcome::AgentError,
            _ => return None,
        })
    }
}

/// A parsed flag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Flag {
    /// Agent name, e.g. `intelliagent_service`.
    pub agent: String,
    /// Run timestamp (seconds since epoch).
    pub run_at_secs: u64,
    /// Outcome.
    pub outcome: FlagOutcome,
    /// Optional detail ("exactly where the agent found a fault").
    pub detail: Option<String>,
}

/// Directory of one agent's flags.
pub fn agent_dir(agent: &str) -> String {
    format!("{FLAG_ROOT}/{agent}")
}

/// Write a flag for a run. Detail is sanitised into the filename
/// (dots/slashes replaced) so parsing stays unambiguous.
pub fn write_flag(
    fs: &mut SimFs,
    agent: &str,
    outcome: FlagOutcome,
    detail: Option<&str>,
    now: SimTime,
) -> Result<(), intelliqos_cluster::fs::FsError> {
    let mut name = format!("run_{}.{}", now.as_secs(), outcome.suffix());
    if let Some(d) = detail {
        let clean: String = d
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        name.push('.');
        name.push_str(&clean);
    }
    let path = format!("{}/{}", agent_dir(agent), name);
    fs.write(path, vec![format!("at={}", now.as_secs())], now)
}

/// Parse one flag path (under [`FLAG_ROOT`]).
pub fn parse_flag_path(path: &str) -> Option<Flag> {
    let rest = path.strip_prefix(FLAG_ROOT)?.strip_prefix('/')?;
    let (agent, file) = rest.split_once('/')?;
    let file = file.strip_prefix("run_")?;
    let mut parts = file.splitn(3, '.');
    let run_at_secs: u64 = parts.next()?.parse().ok()?;
    let outcome = FlagOutcome::from_suffix(parts.next()?)?;
    let detail = parts.next().map(|s| s.to_string());
    Some(Flag {
        agent: agent.to_string(),
        run_at_secs,
        outcome,
        detail,
    })
}

/// All flags of one agent on a filesystem, oldest first.
pub fn read_flags(fs: &SimFs, agent: &str) -> Vec<Flag> {
    let mut flags: Vec<Flag> = fs
        .list(&agent_dir(agent))
        .into_iter()
        .filter_map(parse_flag_path)
        .collect();
    flags.sort_by_key(|f| f.run_at_secs);
    flags
}

/// Timestamp of the most recent flag of one agent, if any. Admin
/// servers compare this against `now - (X+5 min)`.
pub fn last_run_secs(fs: &SimFs, agent: &str) -> Option<u64> {
    read_flags(fs, agent).last().map(|f| f.run_at_secs)
}

/// Self-maintenance: remove all previous flags of an agent ("it removes
/// flags from previous runs"). Returns how many were removed.
pub fn clear_flags(fs: &mut SimFs, agent: &str) -> usize {
    fs.remove_dir(&agent_dir(agent))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> SimFs {
        SimFs::with_standard_layout()
    }

    #[test]
    fn write_and_parse_roundtrip() {
        let mut fs = fs();
        write_flag(
            &mut fs,
            "intelliagent_service",
            FlagOutcome::Repaired,
            Some("trades-db-07 restart"),
            SimTime::from_mins(5),
        )
        .unwrap();
        let flags = read_flags(&fs, "intelliagent_service");
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].outcome, FlagOutcome::Repaired);
        assert_eq!(flags[0].run_at_secs, 300);
        assert_eq!(flags[0].detail.as_deref(), Some("trades-db-07_restart"));
    }

    #[test]
    fn flags_sort_by_run_time() {
        let mut fs = fs();
        for t in [30u64, 10, 20] {
            write_flag(
                &mut fs,
                "intelliagent_cpu",
                FlagOutcome::Ok,
                None,
                SimTime::from_mins(t),
            )
            .unwrap();
        }
        let flags = read_flags(&fs, "intelliagent_cpu");
        let times: Vec<u64> = flags.iter().map(|f| f.run_at_secs).collect();
        assert_eq!(times, vec![600, 1200, 1800]);
        assert_eq!(last_run_secs(&fs, "intelliagent_cpu"), Some(1800));
    }

    #[test]
    fn absence_of_flags_is_detectable() {
        let fs = fs();
        assert_eq!(last_run_secs(&fs, "intelliagent_net"), None);
        assert!(read_flags(&fs, "intelliagent_net").is_empty());
    }

    #[test]
    fn clear_flags_is_self_maintenance() {
        let mut fs = fs();
        for t in 0..5u64 {
            write_flag(&mut fs, "a", FlagOutcome::Ok, None, SimTime::from_mins(t)).unwrap();
        }
        assert_eq!(clear_flags(&mut fs, "a"), 5);
        assert!(read_flags(&fs, "a").is_empty());
    }

    #[test]
    fn agents_have_separate_directories() {
        let mut fs = fs();
        write_flag(&mut fs, "a", FlagOutcome::Ok, None, SimTime::ZERO).unwrap();
        write_flag(&mut fs, "b", FlagOutcome::AgentError, None, SimTime::ZERO).unwrap();
        assert_eq!(read_flags(&fs, "a").len(), 1);
        assert_eq!(read_flags(&fs, "b").len(), 1);
        assert_eq!(read_flags(&fs, "b")[0].outcome, FlagOutcome::AgentError);
    }

    #[test]
    fn bad_paths_do_not_parse() {
        assert!(parse_flag_path("/logs/other/run_1.ok").is_none());
        assert!(parse_flag_path("/logs/intelliagents/a/notarun").is_none());
        assert!(parse_flag_path("/logs/intelliagents/a/run_x.ok").is_none());
        assert!(parse_flag_path("/logs/intelliagents/a/run_1.bogus").is_none());
    }

    #[test]
    fn outcome_suffix_roundtrip() {
        for o in [
            FlagOutcome::Ok,
            FlagOutcome::FaultDetected,
            FlagOutcome::Repaired,
            FlagOutcome::Escalated,
            FlagOutcome::AgentError,
        ] {
            assert_eq!(FlagOutcome::from_suffix(o.suffix()), Some(o));
        }
    }
}
