//! The intelliagent framework: six categories × five parts.
//!
//! §3.3: "Each intelliagent has 5 major parts: a) Monitoring,
//! b) Diagnosing, c) Self-Healing/Action/Repair, d) Communication/
//! Logging, e) Self-maintenance … Each of the five intelliagent parts
//! can get activated or deactivated." Categories: hardware, operating
//! system/network, resource, application/service, status, performance.
//!
//! Every run follows the same shape: **monitor** (gather observables),
//! **diagnose** (causal rules over the facts), **heal** (execute the
//! prescribed repair actions), **communicate** (flags + notifications),
//! **self-maintain** (clean old flags). A disabled part short-circuits
//! its stage — the ABL-PARTS ablation flips these switches.

use intelliqos_simkern::{SimRng, SimTime};

use intelliqos_cluster::hardware::{ComponentHealth, HardwareComponent};
use intelliqos_cluster::server::Server;

use intelliqos_ontology::rules::{Diagnosis, FactBase, FactValue, RepairAction};

use intelliqos_services::instance::{ServiceId, ServiceStatus};
use intelliqos_services::probe::{probe, ProbeResult};
use intelliqos_services::registry::ServiceRegistry;

use crate::flags::{clear_flags, write_flag, FlagOutcome};
use crate::notify::{Channel, NotificationBus, Severity};
use crate::rulesets;

/// The six agent categories of §3.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AgentKind {
    /// Hardware components (CPU, memory, boards …).
    Hardware,
    /// Operating system and network aspects.
    OsNetwork,
    /// Resources: disks, virtual memory, network cards.
    Resource,
    /// Applications/services, local and global.
    Service,
    /// Status profiles (DLSP generation).
    Status,
    /// Performance and availability collection.
    Performance,
}

impl AgentKind {
    /// All categories.
    pub const ALL: [AgentKind; 6] = [
        AgentKind::Hardware,
        AgentKind::OsNetwork,
        AgentKind::Resource,
        AgentKind::Service,
        AgentKind::Status,
        AgentKind::Performance,
    ];

    /// The agent's name (flag directory, process name).
    pub fn name(self) -> &'static str {
        match self {
            AgentKind::Hardware => "intelliagent_hardware",
            AgentKind::OsNetwork => "intelliagent_osnet",
            AgentKind::Resource => "intelliagent_resource",
            AgentKind::Service => "intelliagent_service",
            AgentKind::Status => "intelliagent_status",
            AgentKind::Performance => "intelliagent_perf",
        }
    }
}

/// Which of the five parts are active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentParts {
    /// a) Monitoring.
    pub monitoring: bool,
    /// b) Diagnosing.
    pub diagnosing: bool,
    /// c) Self-healing/action/repair.
    pub healing: bool,
    /// d) Communication/logging.
    pub communication: bool,
    /// e) Self-maintenance.
    pub self_maintenance: bool,
}

impl Default for AgentParts {
    fn default() -> Self {
        AgentParts {
            monitoring: true,
            diagnosing: true,
            healing: true,
            communication: true,
            self_maintenance: true,
        }
    }
}

impl AgentParts {
    /// All parts on.
    pub fn all() -> Self {
        AgentParts::default()
    }

    /// Monitoring/communication only — detect and tell, never touch
    /// (what a notify-only deployment looks like).
    pub fn detect_only() -> Self {
        AgentParts {
            healing: false,
            ..AgentParts::default()
        }
    }
}

/// What one service-agent pass concluded about one service.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceFinding {
    /// Which service.
    pub service: ServiceId,
    /// Service name.
    pub name: String,
    /// Raw probe outcome.
    pub probe: ProbeResult,
    /// The diagnosis, if any rule fired.
    pub diagnosis: Option<Diagnosis>,
    /// Repair initiated: when `Some(t)`, the service start/bounce was
    /// kicked off and will reach `Running` at `t` (the world schedules a
    /// `ServiceReady` event there).
    pub repair_completes: Option<SimTime>,
    /// Humans were paged about it.
    pub escalated: bool,
}

/// Outcome of one agent wake-up on one server.
#[derive(Debug, Clone, Default)]
pub struct AgentRunReport {
    /// Services probed healthy this run (no finding records are kept
    /// for them — this is the overwhelmingly common case and the run
    /// happens millions of times per simulated year).
    pub ok_services: u32,
    /// Per-service findings for services that probed unhealthy.
    pub findings: Vec<ServiceFinding>,
    /// Local repairs executed immediately (kill/rotate/offline/ntp…).
    pub local_repairs: Vec<RepairAction>,
    /// Faults detected but escalated to humans.
    pub escalations: Vec<String>,
}

impl AgentRunReport {
    /// Did this run detect anything at all?
    pub fn found_anything(&self) -> bool {
        !self.local_repairs.is_empty()
            || !self.escalations.is_empty()
            || self.findings.iter().any(|f| f.diagnosis.is_some())
    }
}

/// Substitute the service name into rule action placeholders.
fn bind_action(action: &RepairAction, svc_name: &str, extra: &str) -> RepairAction {
    let bind = |s: &str| -> String {
        s.replace("$svc", svc_name)
            .replace("$proc", extra)
            .replace("$mount", extra)
    };
    match action {
        RepairAction::RestartService(s) => RepairAction::RestartService(bind(s)),
        RepairAction::BounceService(s) => RepairAction::BounceService(bind(s)),
        RepairAction::RestoreService(s) => RepairAction::RestoreService(bind(s)),
        RepairAction::KillProcess(s) => RepairAction::KillProcess(bind(s)),
        RepairAction::RotateLogs(s) => RepairAction::RotateLogs(bind(s)),
        RepairAction::Remount(s) => RepairAction::Remount(bind(s)),
        RepairAction::OfflineComponent(s) => RepairAction::OfflineComponent(bind(s)),
        RepairAction::NotifyHumans(s) => RepairAction::NotifyHumans(bind(s)),
        other => other.clone(),
    }
}

/// The **service intelliagent**: probe every service hosted on this
/// server, diagnose failures through the causal rules, and heal —
/// restart crashed services, bounce hung ones, restore corrupted ones.
/// §3.4: "Their aim is to ensure that local services run at all times
/// and if not restart them."
#[allow(clippy::too_many_arguments)]
pub fn run_service_agent(
    server: &mut Server,
    registry: &mut ServiceRegistry,
    parts: AgentParts,
    bus: &mut NotificationBus,
    rng: &mut SimRng,
    now: SimTime,
) -> AgentRunReport {
    let mut report = AgentRunReport::default();
    if !parts.monitoring {
        return report;
    }
    if parts.self_maintenance {
        clear_flags(&mut server.fs, AgentKind::Service.name());
    }
    let rules = rulesets::service_rules_cached();
    let ids = registry.ids_on_server(server.id);
    let mut worst: Option<FlagOutcome> = None;
    for id in ids {
        let probe_result = {
            // qoslint::allow(no-panic, id came from this registry's own listing one event ago)
            let svc = registry.get(id).expect("listed id exists");
            probe(svc, server, rng)
        };
        let probe_text = match probe_result {
            ProbeResult::Ok { .. } => {
                report.ok_services += 1;
                continue;
            }
            ProbeResult::Timeout => "timeout",
            ProbeResult::ConnectionRefused => "refused",
            ProbeResult::QueryError => "query-error",
        };
        let (name, status, mount_missing) = {
            // qoslint::allow(no-panic, id came from this registry's own listing one event ago)
            let svc = registry.get(id).expect("listed id exists");
            let missing_mount = svc
                .spec
                .required_mounts
                .iter()
                .find(|m| !server.fs.is_mounted(m))
                .cloned();
            (svc.spec.name.clone(), svc.status, missing_mount)
        };
        let mut finding = ServiceFinding {
            service: id,
            name: name.clone(),
            probe: probe_result,
            diagnosis: None,
            repair_completes: None,
            escalated: false,
        };
        if parts.diagnosing {
            let mut facts = FactBase::new();
            facts.assert_fact("probe", probe_text);
            let missing = {
                // qoslint::allow(no-panic, id came from this registry's own listing one event ago)
                let svc = registry.get(id).expect("listed id exists");
                svc.process_mismatches(server).len() as f64
            };
            facts.assert_fact("procs_missing", missing);
            facts.assert_fact("starting", matches!(status, ServiceStatus::Starting { .. }));
            if let Some(m) = &mount_missing {
                facts.assert_fact("mount_missing", true);
                facts.assert_fact("mount", FactValue::Text(m.clone()));
            }
            facts.assert_fact("cpu_util", server.cpu_utilization());
            if let Some(diag) = rules.diagnose(&mut facts) {
                if parts.healing {
                    for action in &diag.actions {
                        let bound =
                            bind_action(action, &name, mount_missing.as_deref().unwrap_or(""));
                        match &bound {
                            RepairAction::Remount(m) => {
                                server.fs.set_mounted(m, true);
                            }
                            RepairAction::RestartService(_) => {
                                // qoslint::allow(no-panic, repair actions only name ids the diagnosis pass just resolved)
                                let svc = registry.get_mut(id).expect("id exists");
                                // A hung instance must be stopped first.
                                if svc.status == ServiceStatus::Hung {
                                    svc.stop(server);
                                }
                                if let Ok(ready) = svc.start(server, now) {
                                    finding.repair_completes = Some(ready);
                                }
                            }
                            RepairAction::BounceService(_) => {
                                // qoslint::allow(no-panic, repair actions only name ids the diagnosis pass just resolved)
                                let svc = registry.get_mut(id).expect("id exists");
                                svc.stop(server);
                                if let Ok(ready) = svc.start(server, now) {
                                    finding.repair_completes = Some(ready);
                                }
                            }
                            RepairAction::RestoreService(_) => {
                                // qoslint::allow(no-panic, repair actions only name ids the diagnosis pass just resolved)
                                let svc = registry.get_mut(id).expect("id exists");
                                svc.restore();
                                if let Ok(ready) = svc.start(server, now) {
                                    // Restores take an extra backout window
                                    // beyond the plain startup sequence.
                                    let ready =
                                        ready + intelliqos_simkern::SimDuration::from_mins(20);
                                    finding.repair_completes = Some(ready);
                                }
                            }
                            RepairAction::NotifyHumans(why) => {
                                finding.escalated = true;
                                if parts.communication {
                                    bus.page(
                                        now,
                                        server.hostname.clone(),
                                        format!("{name}: {why}"),
                                        format!("diagnosis: {}", diag.cause),
                                    );
                                }
                                report.escalations.push(format!("{name}: {why}"));
                            }
                            _ => {}
                        }
                    }
                } else if parts.communication {
                    // Detect-only deployments still tell humans.
                    finding.escalated = true;
                    bus.page(
                        now,
                        server.hostname.clone(),
                        format!("{name}: {}", diag.cause),
                        "healing disabled; manual action required",
                    );
                    report.escalations.push(name.clone());
                }
                finding.diagnosis = Some(diag);
            }
        }
        let outcome = if finding.repair_completes.is_some() {
            FlagOutcome::Repaired
        } else if finding.escalated {
            FlagOutcome::Escalated
        } else if finding.diagnosis.is_some() {
            FlagOutcome::FaultDetected
        } else {
            FlagOutcome::Ok
        };
        worst = Some(match worst {
            None => outcome,
            Some(_) if outcome != FlagOutcome::Ok => outcome,
            Some(prev) => prev,
        });
        report.findings.push(finding);
    }
    if parts.communication {
        let flag = worst.unwrap_or(FlagOutcome::Ok);
        let detail = report
            .findings
            .iter()
            .find(|f| f.diagnosis.is_some())
            .map(|f| f.name.clone());
        let _ = write_flag(
            &mut server.fs,
            AgentKind::Service.name(),
            flag,
            detail.as_deref(),
            now,
        );
    }
    report
}

/// The **OS/network + resource intelliagents** (run together each
/// wake-up): kill runaway processes, evict memory hogs, rotate full
/// logs, reap zombies, fix NTP. Returns the local repairs executed.
pub fn run_os_resource_agents(
    server: &mut Server,
    expected_procs: &[String],
    parts: AgentParts,
    bus: &mut NotificationBus,
    now: SimTime,
) -> AgentRunReport {
    let mut report = AgentRunReport::default();
    if !parts.monitoring {
        return report;
    }
    if parts.self_maintenance {
        clear_flags(&mut server.fs, AgentKind::OsNetwork.name());
        clear_flags(&mut server.fs, AgentKind::Resource.name());
    }
    let capacity = server.effective_spec().compute_power();
    let ram_mb = server.effective_spec().ram_gb as f64 * 1024.0;
    // Fast path: a quiet server needs no fact base, no rules, just the
    // OK flags. This is the common case ~99.9 % of wake-ups.
    let quiet = server.ntp_synced
        && server.procs.zombie_count() <= 10
        && server.fs.usage_fraction("/logs").unwrap_or(0.0) <= 0.9
        && !server.procs.iter().any(|p| {
            p.name != "lsf_job"
                && !expected_procs.iter().any(|e| e == &p.name)
                && (p.cpu_demand / capacity.max(1e-9) > 0.3 || p.mem_mb / ram_mb.max(1e-9) > 0.3)
        });
    if quiet {
        if parts.communication {
            let _ = write_flag(
                &mut server.fs,
                AgentKind::OsNetwork.name(),
                FlagOutcome::Ok,
                None,
                now,
            );
            let _ = write_flag(
                &mut server.fs,
                AgentKind::Resource.name(),
                FlagOutcome::Ok,
                None,
                now,
            );
        }
        return report;
    }
    // Monitoring: find suspect processes — big consumers whose command
    // name is neither an SLKT daemon nor a batch job.
    let is_expected =
        |name: &str| -> bool { name == "lsf_job" || expected_procs.iter().any(|p| p == name) };
    let mut runaway: Option<(String, f64)> = None;
    let mut leaky: Option<(String, f64)> = None;
    for p in server.procs.iter() {
        if is_expected(&p.name) {
            continue;
        }
        let cpu_frac = p.cpu_demand / capacity.max(1e-9);
        let mem_frac = p.mem_mb / ram_mb.max(1e-9);
        if cpu_frac > runaway.as_ref().map(|r| r.1).unwrap_or(0.0) {
            runaway = Some((p.name.clone(), cpu_frac));
        }
        if mem_frac > leaky.as_ref().map(|l| l.1).unwrap_or(0.0) {
            leaky = Some((p.name.clone(), mem_frac));
        }
    }
    let mut facts = FactBase::new();
    if let Some((name, frac)) = &runaway {
        facts.assert_fact("runaway_proc", FactValue::Text(name.clone()));
        facts.assert_fact("runaway_cpu_frac", *frac);
    }
    if let Some((name, frac)) = &leaky {
        facts.assert_fact("leaky_proc", FactValue::Text(name.clone()));
        facts.assert_fact("leaky_mem_frac", *frac);
    }
    facts.assert_fact(
        "fs_usage_logs",
        server.fs.usage_fraction("/logs").unwrap_or(0.0),
    );
    facts.assert_fact("zombie_count", server.procs.zombie_count() as f64);
    facts.assert_fact("ntp_synced", server.ntp_synced);

    if !parts.diagnosing {
        return report;
    }
    let mut diagnoses = rulesets::os_net_rules_cached().infer(&mut facts);
    diagnoses.extend(rulesets::resource_rules_cached().infer(&mut facts));
    for diag in &diagnoses {
        for action in &diag.actions {
            let extra = match action {
                RepairAction::KillProcess(_) => {
                    if diag.rule_id == "os-runaway" {
                        runaway.as_ref().map(|r| r.0.clone()).unwrap_or_default()
                    } else {
                        leaky.as_ref().map(|l| l.0.clone()).unwrap_or_default()
                    }
                }
                _ => String::new(),
            };
            let bound = bind_action(action, "", &extra);
            if !parts.healing {
                if parts.communication {
                    bus.page(
                        now,
                        server.hostname.clone(),
                        diag.cause.clone(),
                        "healing disabled",
                    );
                    report.escalations.push(diag.cause.clone());
                }
                continue;
            }
            match &bound {
                RepairAction::KillProcess(name) if name == "zombies" => {
                    let zombies: Vec<_> = server
                        .procs
                        .iter()
                        .filter(|p| p.state == intelliqos_cluster::process::ProcState::Zombie)
                        .map(|p| p.pid)
                        .collect();
                    for pid in zombies {
                        server.procs.kill(pid);
                    }
                    report.local_repairs.push(bound.clone());
                }
                RepairAction::KillProcess(name) if !name.is_empty() => {
                    let pids: Vec<_> = server.procs.by_name(name).map(|p| p.pid).collect();
                    for pid in pids {
                        server.procs.kill(pid);
                    }
                    report.local_repairs.push(bound.clone());
                }
                RepairAction::RotateLogs(_) => {
                    // Remove application debris under /logs, preserving the
                    // agent flag tree and the perf archives.
                    let victims: Vec<String> = server
                        .fs
                        .list("/logs")
                        .into_iter()
                        .filter(|p| {
                            !p.starts_with("/logs/intelliagents") && !p.starts_with("/logs/perf")
                        })
                        .map(|s| s.to_string())
                        .collect();
                    for v in victims {
                        let _ = server.fs.remove(&v);
                    }
                    report.local_repairs.push(bound.clone());
                }
                RepairAction::FixNtp => {
                    server.ntp_synced = true;
                    report.local_repairs.push(bound.clone());
                }
                RepairAction::NotifyHumans(why) => {
                    if parts.communication {
                        bus.page(
                            now,
                            server.hostname.clone(),
                            why.clone(),
                            diag.cause.clone(),
                        );
                    }
                    report.escalations.push(why.clone());
                }
                _ => {}
            }
        }
    }
    if parts.communication {
        let outcome = if !report.local_repairs.is_empty() {
            FlagOutcome::Repaired
        } else if !report.escalations.is_empty() {
            FlagOutcome::Escalated
        } else {
            FlagOutcome::Ok
        };
        let _ = write_flag(
            &mut server.fs,
            AgentKind::OsNetwork.name(),
            outcome,
            None,
            now,
        );
        let _ = write_flag(
            &mut server.fs,
            AgentKind::Resource.name(),
            outcome,
            None,
            now,
        );
    }
    report
}

/// The **hardware intelliagent**: scrape component health (stand-in for
/// parsing console/syslog error counters), offline what can be offlined,
/// page engineers for the rest.
pub fn run_hardware_agent(
    server: &mut Server,
    parts: AgentParts,
    bus: &mut NotificationBus,
    now: SimTime,
) -> AgentRunReport {
    let mut report = AgentRunReport::default();
    if !parts.monitoring {
        return report;
    }
    if parts.self_maintenance {
        clear_flags(&mut server.fs, AgentKind::Hardware.name());
    }
    // Fast path: all components healthy (the overwhelmingly common
    // wake-up) — write the OK flag and go back to sleep.
    let all_healthy = HardwareComponent::ALL
        .iter()
        .all(|&c| server.degraded_count(c) == 0 && server.failed_count(c) == 0);
    if all_healthy {
        if parts.communication {
            let _ = write_flag(
                &mut server.fs,
                AgentKind::Hardware.name(),
                FlagOutcome::Ok,
                None,
                now,
            );
        }
        return report;
    }
    let mut facts = FactBase::new();
    for class in HardwareComponent::ALL {
        facts.assert_fact(
            format!("degraded_{class}"),
            server.degraded_count(class) as f64,
        );
        facts.assert_fact(format!("failed_{class}"), server.failed_count(class) as f64);
    }
    if !parts.diagnosing {
        return report;
    }
    let diagnoses = rulesets::hardware_rules_cached().infer(&mut facts);
    for diag in &diagnoses {
        for action in &diag.actions {
            match action {
                RepairAction::OfflineComponent(class_name) if parts.healing => {
                    let class = HardwareComponent::ALL
                        .into_iter()
                        .find(|c| c.to_string() == *class_name);
                    if let Some(class) = class {
                        // Proactively offline every degraded instance.
                        let degraded: Vec<usize> = server
                            .components(class)
                            .iter()
                            .enumerate()
                            .filter(|(_, h)| **h == ComponentHealth::Degraded)
                            .map(|(i, _)| i)
                            .collect();
                        for i in degraded {
                            server.set_component_health(class, i, ComponentHealth::Failed);
                        }
                        report.local_repairs.push(action.clone());
                    }
                }
                RepairAction::NotifyHumans(why) => {
                    if parts.communication {
                        bus.send(
                            now,
                            Channel::Email,
                            Severity::Warning,
                            server.hostname.clone(),
                            why.clone(),
                            diag.cause.clone(),
                        );
                    }
                    report.escalations.push(why.clone());
                }
                _ => {}
            }
        }
    }
    if parts.communication {
        let outcome = if !report.local_repairs.is_empty() {
            FlagOutcome::Repaired
        } else if !report.escalations.is_empty() {
            FlagOutcome::Escalated
        } else {
            FlagOutcome::Ok
        };
        let _ = write_flag(
            &mut server.fs,
            AgentKind::Hardware.name(),
            outcome,
            None,
            now,
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::{ServerId, Site};
    use intelliqos_services::spec::{DbEngine, ServiceSpec};

    fn setup() -> (Server, ServiceRegistry, ServiceId, NotificationBus, SimRng) {
        let mut server = Server::new(
            ServerId(0),
            "db000",
            HardwareSpec::new(ServerModel::SunE4500, 8, 8, 6),
            Site::new("London", "LDN"),
        );
        let mut reg = ServiceRegistry::new();
        let id = reg.deploy(
            ServiceSpec::database("trades-db", DbEngine::Oracle),
            ServerId(0),
        );
        reg.start(id, &mut server, SimTime::ZERO).unwrap();
        reg.complete_pending_starts(SimTime::from_secs(1600));
        (
            server,
            reg,
            id,
            NotificationBus::new(),
            SimRng::stream(1, "agent"),
        )
    }

    #[test]
    fn healthy_service_yields_ok_flag_and_no_action() {
        let (mut server, mut reg, _, mut bus, mut rng) = setup();
        let report = run_service_agent(
            &mut server,
            &mut reg,
            AgentParts::all(),
            &mut bus,
            &mut rng,
            SimTime::from_mins(10),
        );
        assert!(!report.found_anything());
        assert_eq!(report.ok_services, 1);
        assert!(report.findings.is_empty());
        let flags = crate::flags::read_flags(&server.fs, "intelliagent_service");
        assert_eq!(flags.len(), 1);
        assert_eq!(flags[0].outcome, FlagOutcome::Ok);
    }

    #[test]
    fn crashed_service_gets_restarted() {
        let (mut server, mut reg, id, mut bus, mut rng) = setup();
        reg.get_mut(id).unwrap().crash(&mut server);
        let report = run_service_agent(
            &mut server,
            &mut reg,
            AgentParts::all(),
            &mut bus,
            &mut rng,
            SimTime::from_mins(10),
        );
        let f = &report.findings[0];
        assert_eq!(f.diagnosis.as_ref().unwrap().rule_id, "svc-crashed");
        let ready = f.repair_completes.unwrap();
        assert_eq!(
            ready,
            SimTime::from_mins(10) + SimTime::from_secs(1600).since(SimTime::ZERO)
        );
        assert!(matches!(
            reg.get(id).unwrap().status,
            ServiceStatus::Starting { .. }
        ));
        reg.complete_pending_starts(ready);
        assert!(reg.get(id).unwrap().status.is_serving());
        let flags = crate::flags::read_flags(&server.fs, "intelliagent_service");
        assert_eq!(flags[0].outcome, FlagOutcome::Repaired);
    }

    #[test]
    fn hung_service_gets_bounced() {
        let (mut server, mut reg, id, mut bus, mut rng) = setup();
        reg.get_mut(id).unwrap().hang();
        let report = run_service_agent(
            &mut server,
            &mut reg,
            AgentParts::all(),
            &mut bus,
            &mut rng,
            SimTime::from_mins(10),
        );
        assert_eq!(
            report.findings[0].diagnosis.as_ref().unwrap().rule_id,
            "svc-hung"
        );
        assert!(report.findings[0].repair_completes.is_some());
    }

    #[test]
    fn corrupted_service_gets_restored_with_extra_delay() {
        let (mut server, mut reg, id, mut bus, mut rng) = setup();
        reg.get_mut(id).unwrap().corrupt(&mut server);
        let report = run_service_agent(
            &mut server,
            &mut reg,
            AgentParts::all(),
            &mut bus,
            &mut rng,
            SimTime::from_mins(10),
        );
        let ready = report.findings[0].repair_completes.unwrap();
        // startup (120 s) + restore window (20 min).
        assert_eq!(ready.as_secs(), 600 + 1600 + 1200);
    }

    #[test]
    fn healing_disabled_pages_instead() {
        let (mut server, mut reg, id, mut bus, mut rng) = setup();
        reg.get_mut(id).unwrap().crash(&mut server);
        let report = run_service_agent(
            &mut server,
            &mut reg,
            AgentParts::detect_only(),
            &mut bus,
            &mut rng,
            SimTime::from_mins(10),
        );
        assert!(report.findings[0].repair_completes.is_none());
        assert!(report.findings[0].escalated);
        assert!(bus.count_severity(Severity::Critical) > 0);
        // Service stays crashed.
        assert_eq!(reg.get(id).unwrap().status, ServiceStatus::Crashed);
    }

    #[test]
    fn runaway_process_is_killed() {
        let (mut server, _, _, mut bus, _) = setup();
        let cap = server.effective_spec().compute_power();
        server
            .procs
            .spawn("runaway", "", "app", cap * 1.2, 64.0, 0.0, SimTime::ZERO);
        let expected = vec![
            "ora_pmon".to_string(),
            "ora_dbw".to_string(),
            "ora_lsnr".to_string(),
        ];
        let report = run_os_resource_agents(
            &mut server,
            &expected,
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(report
            .local_repairs
            .iter()
            .any(|a| matches!(a, RepairAction::KillProcess(n) if n == "runaway")));
        assert_eq!(server.procs.live_count("runaway"), 0);
        // SLKT daemons untouched.
        assert_eq!(server.procs.live_count("ora_pmon"), 1);
    }

    #[test]
    fn lsf_jobs_are_never_killed_as_runaways() {
        let (mut server, _, _, mut bus, _) = setup();
        let cap = server.effective_spec().compute_power();
        server.procs.spawn(
            "lsf_job",
            "datamine",
            "analyst01",
            cap * 2.0,
            4096.0,
            0.5,
            SimTime::ZERO,
        );
        let report = run_os_resource_agents(
            &mut server,
            &[],
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(report.local_repairs.is_empty());
        assert_eq!(server.procs.live_count("lsf_job"), 1);
    }

    #[test]
    fn full_logs_get_rotated() {
        let (mut server, _, _, mut bus, _) = setup();
        server.fs.add_mount("/logs", 10_000);
        // Leave the agent trees alone; fill with app debris past the
        // 90 % rotation threshold.
        let mut i = 0;
        while server.fs.usage_fraction("/logs").unwrap() < 0.92 {
            if server
                .fs
                .append(
                    format!("/logs/app_trace_{i}"),
                    "x".repeat(499),
                    SimTime::ZERO,
                )
                .is_err()
            {
                break;
            }
            i += 1;
        }
        assert!(server.fs.usage_fraction("/logs").unwrap() > 0.9);
        let report = run_os_resource_agents(
            &mut server,
            &[],
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(report
            .local_repairs
            .iter()
            .any(|a| matches!(a, RepairAction::RotateLogs(_))));
        assert!(server.fs.usage_fraction("/logs").unwrap() < 0.5);
    }

    #[test]
    fn ntp_gets_fixed() {
        let (mut server, _, _, mut bus, _) = setup();
        server.ntp_synced = false;
        let report = run_os_resource_agents(
            &mut server,
            &[],
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(server.ntp_synced);
        assert!(report.local_repairs.contains(&RepairAction::FixNtp));
    }

    #[test]
    fn hardware_agent_offlines_degraded_cpu() {
        let (mut server, _, _, mut bus, _) = setup();
        server.set_component_health(HardwareComponent::Cpu, 2, ComponentHealth::Degraded);
        let report = run_hardware_agent(
            &mut server,
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(report
            .local_repairs
            .iter()
            .any(|a| matches!(a, RepairAction::OfflineComponent(c) if c == "cpu")));
        assert_eq!(server.degraded_count(HardwareComponent::Cpu), 0);
        assert_eq!(server.failed_count(HardwareComponent::Cpu), 1); // offlined
        assert_eq!(server.effective_spec().cpus, 7);
    }

    #[test]
    fn hardware_agent_escalates_board_problems() {
        let (mut server, _, _, mut bus, _) = setup();
        server.set_component_health(HardwareComponent::Board, 0, ComponentHealth::Degraded);
        let report = run_hardware_agent(
            &mut server,
            AgentParts::all(),
            &mut bus,
            SimTime::from_mins(5),
        );
        assert!(report.local_repairs.is_empty());
        assert!(!report.escalations.is_empty());
        assert!(bus.count_channel(Channel::Email) > 0);
    }

    #[test]
    fn monitoring_disabled_does_nothing() {
        let (mut server, mut reg, id, mut bus, mut rng) = setup();
        reg.get_mut(id).unwrap().crash(&mut server);
        let parts = AgentParts {
            monitoring: false,
            ..AgentParts::all()
        };
        let report = run_service_agent(
            &mut server,
            &mut reg,
            parts,
            &mut bus,
            &mut rng,
            SimTime::ZERO,
        );
        assert!(report.findings.is_empty());
        assert_eq!(reg.get(id).unwrap().status, ServiceStatus::Crashed);
    }

    #[test]
    fn agent_kind_names_are_distinct() {
        let mut names: Vec<&str> = AgentKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }
}
