//! Minimal JSON reader for evidence-file validation.
//!
//! The build environment carries no serde, yet the acceptance bar for
//! the profile/export layer is "the evidence JSON is produced **and
//! parseable**". This is a small recursive-descent parser — objects,
//! arrays, strings (with the escapes [`crate::downtime::json_str`]
//! emits), numbers, booleans, null — used by the round-trip tests and
//! the `evidence_check` bench binary. It is a validator and accessor,
//! not a serde replacement: numbers fold to `f64`, objects keep
//! insertion order in a `Vec`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, held as `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in document order (duplicate keys keep the first).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member by key (`None` on non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element by index.
    pub fn idx(&self, i: usize) -> Option<&JsonValue> {
        match self {
            JsonValue::Arr(items) => items.get(i),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            b as char,
            *pos,
            bytes.get(*pos).map(|&c| c as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_obj(bytes, pos),
        Some(b'[') => parse_arr(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_num(bytes, pos),
        other => Err(format!(
            "unexpected {:?} at byte {}",
            other.map(|&c| c as char),
            *pos
        )),
    }
}

fn parse_lit(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|e| format!("bad number {text:?} at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // No surrogate-pair support: json_str never emits
                        // them (it only escapes controls and ASCII).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => {
                        return Err(format!("bad escape {:?}", other.map(|&c| c as char)));
                    }
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (may be multi-byte).
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            other => {
                return Err(format!(
                    "expected ',' or ']' at byte {} (found {:?})",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

fn parse_obj(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            other => {
                return Err(format!(
                    "expected ',' or '}}' at byte {} (found {:?})",
                    *pos,
                    other.map(|&c| c as char)
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": 1, "b": [true, null, -2.5e1], "c": {"d": "x\ny"}}"#).unwrap();
        assert_eq!(v.get("a").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(
            v.get("b").and_then(|x| x.idx(0)).and_then(|x| x.as_bool()),
            Some(true)
        );
        assert_eq!(v.get("b").and_then(|x| x.idx(1)), Some(&JsonValue::Null));
        assert_eq!(
            v.get("b").and_then(|x| x.idx(2)).and_then(|x| x.as_f64()),
            Some(-25.0)
        );
        assert_eq!(
            v.get("c").and_then(|x| x.get("d")).and_then(|x| x.as_str()),
            Some("x\ny")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_json_str_escapes() {
        let nasty = "tab\there \"quotes\" back\\slash\nnewline";
        let doc = format!("{{\"k\": {}}}", crate::downtime::json_str(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").and_then(|x| x.as_str()), Some(nasty));
    }

    #[test]
    fn u64_accessor_is_exact_only() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
    }
}
