//! Administration servers.
//!
//! §3.1: "Dedicated administration servers that act as external agent
//! coordinators in a high-availability failover configuration and share
//! a common pool of NFS mounted disks, to avoid single points of
//! failure." They:
//!
//! * watch flag creation every X+5 minutes and troubleshoot agents whose
//!   flags stop appearing (§3.3);
//! * collect DLSPs into the shared pool and generate DGSPLs (~every
//!   15 minutes, §4);
//! * drive DGSPL-guided resubmission of failed batch jobs (§4).

use std::collections::BTreeMap;

use intelliqos_simkern::{SimDuration, SimTime};

use intelliqos_cluster::fs::SimFs;
use intelliqos_cluster::ids::ServerId;
use intelliqos_cluster::server::Server;

use intelliqos_ontology::dgspl::Dgspl;
use intelliqos_ontology::dlsp::Dlsp;

use crate::agents::AgentKind;
use crate::flags;

/// The HA pair of administration servers plus their shared NFS pool.
#[derive(Debug, Clone)]
pub struct AdminPair {
    /// Primary coordinator.
    pub primary: ServerId,
    /// Standby coordinator.
    pub standby: ServerId,
    /// The common pool of NFS-mounted disks. DLSPs and DGSPLs persist
    /// here so a failover loses nothing.
    pub shared_pool: SimFs,
    /// Latest profile per hostname (the in-memory index over the pool).
    dlsps: BTreeMap<String, Dlsp>,
    /// The most recently generated global list.
    pub last_dgspl: Option<Dgspl>,
}

impl AdminPair {
    /// New pair with an empty pool.
    pub fn new(primary: ServerId, standby: ServerId) -> Self {
        let mut shared_pool = SimFs::new();
        shared_pool.add_mount("/", 8 * 1024 * 1024 * 1024);
        AdminPair {
            primary,
            standby,
            shared_pool,
            dlsps: BTreeMap::new(),
            last_dgspl: None,
        }
    }

    /// Which admin server is acting right now: the primary if it is up,
    /// else the standby (failover), else none — coordination is lost
    /// while both are down, though local agents keep healing locally.
    pub fn acting(&self, servers: &BTreeMap<ServerId, Server>) -> Option<ServerId> {
        let up = |id: ServerId| servers.get(&id).map(|s| s.is_up()).unwrap_or(false);
        if up(self.primary) {
            Some(self.primary)
        } else if up(self.standby) {
            Some(self.standby)
        } else {
            None
        }
    }

    /// Ingest a DLSP shipped over the agent network: index it and
    /// persist it in the shared pool.
    pub fn ingest_dlsp(&mut self, dlsp: Dlsp, now: SimTime) {
        let _ = self.shared_pool.write(
            format!("/pool/dlsp/{}.dlsp", dlsp.hostname),
            dlsp.to_doc().to_lines(),
            now,
        );
        self.dlsps.insert(dlsp.hostname.clone(), dlsp);
    }

    /// Latest profile for a host.
    pub fn dlsp_of(&self, hostname: &str) -> Option<&Dlsp> {
        self.dlsps.get(hostname)
    }

    /// Number of indexed profiles.
    pub fn dlsp_count(&self) -> usize {
        self.dlsps.len()
    }

    /// Hosts whose latest profile is older than `max_age` at `now` —
    /// either the host is down or its status agent stopped running.
    pub fn stale_hosts(&self, now: SimTime, max_age: SimDuration) -> Vec<&str> {
        self.dlsps
            .values()
            .filter(|d| d.age_secs(now.as_secs()) > max_age.as_secs())
            .map(|d| d.hostname.as_str())
            .collect()
    }

    /// Generate the DGSPL from profiles no older than `max_age`,
    /// persisting it to the shared pool. `power_of(model, cpus)` maps a
    /// model string to total compute power.
    pub fn generate_dgspl<F>(&mut self, now: SimTime, max_age: SimDuration, power_of: F) -> Dgspl
    where
        F: Fn(&str, u32) -> f64,
    {
        let fresh: Vec<Dlsp> = self
            .dlsps
            .values()
            .filter(|d| d.age_secs(now.as_secs()) <= max_age.as_secs())
            .cloned()
            .collect();
        let dgspl = Dgspl::from_dlsps(&fresh, now.as_secs(), power_of);
        let _ = self
            .shared_pool
            .write("/pool/dgspl/current.dgspl", dgspl.to_doc().to_lines(), now);
        self.last_dgspl = Some(dgspl.clone());
        dgspl
    }

    /// Flag monitoring (§3.3): for each monitored server, find agents
    /// whose newest flag is older than `max_age` — "If these flags are
    /// not there, they start troubleshooting intelliagent processes."
    /// Returns `(server, agent name, last flag secs)` tuples; `None`
    /// last-run means the agent never produced a flag at all.
    pub fn missing_flags(
        &self,
        servers: &BTreeMap<ServerId, Server>,
        monitored: &[ServerId],
        now: SimTime,
        max_age: SimDuration,
    ) -> Vec<(ServerId, AgentKind, Option<u64>)> {
        let mut out = Vec::new();
        for &sid in monitored {
            let Some(server) = servers.get(&sid) else {
                continue;
            };
            if !server.is_up() {
                continue; // a dead host is a different problem
            }
            for kind in AgentKind::ALL {
                let last = flags::last_run_secs(&server.fs, kind.name());
                let stale = match last {
                    Some(t) => now.as_secs().saturating_sub(t) > max_age.as_secs(),
                    None => true,
                };
                if stale {
                    out.push((sid, kind, last));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intelliqos_cluster::hardware::{HardwareSpec, ServerModel};
    use intelliqos_cluster::ids::Site;
    use intelliqos_ontology::dlsp::DlspService;

    fn server(id: u32) -> Server {
        Server::new(
            ServerId(id),
            format!("host{id:03}"),
            HardwareSpec::new(ServerModel::SunE450, 4, 4, 4),
            Site::new("London", "LDN"),
        )
    }

    fn dlsp(host: &str, at: u64, status: &str) -> Dlsp {
        Dlsp {
            hostname: host.into(),
            generated_at_secs: at,
            model: "Sun-E4500".into(),
            os: "Solaris".into(),
            cpus: 8,
            ram_gb: 8,
            load_score: 0.2,
            free_mem_mb: 4096.0,
            cpu_idle_pct: 80.0,
            users: 1,
            location: "London".into(),
            site: "LDN".into(),
            services: vec![DlspService {
                name: format!("db-{host}"),
                app_type: "db-oracle".into(),
                version: "8.1.7".into(),
                status: status.into(),
                latency_ms: Some(100.0),
            }],
        }
    }

    #[test]
    fn failover_logic() {
        let mut servers: BTreeMap<ServerId, Server> = BTreeMap::new();
        servers.insert(ServerId(100), server(100));
        servers.insert(ServerId(101), server(101));
        let pair = AdminPair::new(ServerId(100), ServerId(101));
        assert_eq!(pair.acting(&servers), Some(ServerId(100)));
        servers.get_mut(&ServerId(100)).unwrap().crash();
        assert_eq!(pair.acting(&servers), Some(ServerId(101)));
        servers.get_mut(&ServerId(101)).unwrap().crash();
        assert_eq!(pair.acting(&servers), None);
    }

    #[test]
    fn dlsp_ingest_and_shared_pool_persistence() {
        let mut pair = AdminPair::new(ServerId(100), ServerId(101));
        pair.ingest_dlsp(dlsp("db001", 900, "running"), SimTime::from_mins(15));
        pair.ingest_dlsp(dlsp("db001", 1800, "running"), SimTime::from_mins(30));
        assert_eq!(pair.dlsp_count(), 1); // replaced, not accumulated
        assert_eq!(pair.dlsp_of("db001").unwrap().generated_at_secs, 1800);
        // Pool file survives (failover durability).
        assert!(pair.shared_pool.exists("/pool/dlsp/db001.dlsp"));
    }

    #[test]
    fn stale_host_detection() {
        let mut pair = AdminPair::new(ServerId(100), ServerId(101));
        pair.ingest_dlsp(dlsp("fresh", 1800, "running"), SimTime::from_mins(30));
        pair.ingest_dlsp(dlsp("stale", 0, "running"), SimTime::ZERO);
        let stale = pair.stale_hosts(SimTime::from_mins(30), SimDuration::from_mins(10));
        assert_eq!(stale, vec!["stale"]);
    }

    #[test]
    fn dgspl_generation_filters_stale_and_persists() {
        let mut pair = AdminPair::new(ServerId(100), ServerId(101));
        pair.ingest_dlsp(dlsp("fresh", 1700, "running"), SimTime::from_mins(30));
        pair.ingest_dlsp(dlsp("stale", 0, "running"), SimTime::ZERO);
        pair.ingest_dlsp(dlsp("dead-db", 1750, "refused"), SimTime::from_mins(30));
        let dg = pair.generate_dgspl(
            SimTime::from_mins(30),
            SimDuration::from_mins(20),
            |_, c| c as f64,
        );
        // Only the fresh host with a running database appears.
        assert_eq!(dg.entries.len(), 1);
        assert_eq!(dg.entries[0].hostname, "fresh");
        assert!(pair.shared_pool.exists("/pool/dgspl/current.dgspl"));
        assert!(pair.last_dgspl.is_some());
    }

    #[test]
    fn missing_flags_found() {
        let mut servers: BTreeMap<ServerId, Server> = BTreeMap::new();
        servers.insert(ServerId(0), server(0));
        servers.insert(ServerId(1), server(1));
        // Server 0 has a fresh service-agent flag; server 1 has nothing.
        {
            let s = servers.get_mut(&ServerId(0)).unwrap();
            flags::write_flag(
                &mut s.fs,
                AgentKind::Service.name(),
                flags::FlagOutcome::Ok,
                None,
                SimTime::from_mins(28),
            )
            .unwrap();
        }
        let pair = AdminPair::new(ServerId(100), ServerId(101));
        let missing = pair.missing_flags(
            &servers,
            &[ServerId(0), ServerId(1)],
            SimTime::from_mins(30),
            SimDuration::from_mins(10),
        );
        // Server 0: 5 stale agents (all but Service). Server 1: all 6.
        let s0: Vec<_> = missing
            .iter()
            .filter(|(s, _, _)| *s == ServerId(0))
            .collect();
        let s1: Vec<_> = missing
            .iter()
            .filter(|(s, _, _)| *s == ServerId(1))
            .collect();
        assert_eq!(s0.len(), 5);
        assert_eq!(s1.len(), 6);
        assert!(s0.iter().all(|(_, k, _)| *k != AgentKind::Service));
    }

    #[test]
    fn dead_servers_are_skipped_in_flag_checks() {
        let mut servers: BTreeMap<ServerId, Server> = BTreeMap::new();
        servers.insert(ServerId(0), server(0));
        servers.get_mut(&ServerId(0)).unwrap().crash();
        let pair = AdminPair::new(ServerId(100), ServerId(101));
        let missing = pair.missing_flags(
            &servers,
            &[ServerId(0)],
            SimTime::from_mins(30),
            SimDuration::from_mins(10),
        );
        assert!(missing.is_empty());
    }
}
