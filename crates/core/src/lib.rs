//! # intelliqos-core
//!
//! The paper's primary contribution, reproduced: the **intelliagent**
//! self-healing QoS-management layer for Unix application clusters
//! (Corsava & Getov, IPDPS 2003).
//!
//! * [`agents`] — six agent categories × five activatable parts:
//!   monitor → diagnose (causal rules) → self-heal → communicate/log →
//!   self-maintain.
//! * [`flags`] — the flag-file run protocol under
//!   `/logs/intelliagents/<agent>`.
//! * [`status`] — DLSP generation by the status intelliagent.
//! * [`admin`] — the HA administration-server pair: flag monitoring,
//!   DLSP pool, DGSPL generation.
//! * [`resched`] — DGSPL-shortlist job rescheduling ("best choice
//!   always first", SLKT power ordering).
//! * [`rulesets`] — the accumulated troubleshooting procedures as
//!   causal rule sets.
//! * [`notify`] — email/SMS/SystemEdge notification bus.
//! * [`downtime`] — the incident ledger behind Figure 2: every fault's
//!   injected → detected → diagnosed → repaired/escalated lifecycle.
//! * [`divergence`] — paired-run divergence finder guarding the
//!   same-seed before/after invariant.
//! * [`export`] — JSON run export (ledger + trace + profile) for the
//!   triage tooling.
//! * [`profile`] — per-run self-measurement report (subsystem time
//!   share, per-event-kind latency percentiles, hottest sweeps).
//! * [`slo`] — online QoS observatory: per-service availability
//!   budgets, MTTR, and windowed error-budget burn-rate alerts.
//! * [`jsonv`] — minimal JSON reader used to validate evidence files.
//! * [`scenario`] / [`world`] — deterministic whole-datacenter
//!   scenarios with paired before/after (manual vs intelliagent) runs.

#![warn(missing_docs)]

pub mod admin;
pub mod agents;
pub mod divergence;
pub mod downtime;
pub mod export;
pub mod flags;
pub mod jsonv;
pub mod notify;
pub mod ontogen;
pub mod profile;
pub mod resched;
pub mod rulesets;
pub mod scenario;
pub mod slo;
pub mod status;
pub mod world;

pub use admin::AdminPair;
pub use agents::{AgentKind, AgentParts, AgentRunReport, ServiceFinding};
pub use divergence::{first_divergence, Divergence, Stream};
pub use downtime::{Actor, CategoryTotals, DowntimeLedger, Incident, IncidentId};
pub use export::{run_export_json, validate_spill_dir};
pub use flags::{Flag, FlagOutcome};
pub use jsonv::JsonValue;
pub use notify::{Channel, Notification, NotificationBus, Severity};
pub use profile::ProfileReport;
pub use resched::DgsplSelector;
pub use scenario::{ManagementMode, ReschedPolicy, ScenarioConfig, ScenarioReport};
pub use slo::{SloAlert, SloConfig, SloReport, SloTracker};
pub use world::{run_scenario, OntologyError, World, WorldEvent};
